"""Theorem 6.1: the 3SAT → CONS⋉ reduction, including the appendix's φ0."""

import random

import pytest

from repro.sat import Clause, CnfFormula, is_satisfiable, random_3cnf, solve
from repro.semijoin import (
    consistent_semijoin_backtracking,
    consistent_semijoin_sat,
    extract_valuation,
    is_semijoin_consistent_with,
    reduce_3sat,
    valuation_predicate,
)
from repro.semijoin.reduction import BOTTOM


@pytest.fixture()
def phi0():
    """The appendix example: φ0 = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ ¬x3 ∨ x4).

    (The published PDF's glyphs for negation are ambiguous in the plain
    text; the polarity of each literal is recovered from the printed Pφ0
    table itself: ⊥ in the ``t`` column means a negative literal.)
    """
    return CnfFormula.of([1, -2, 3], [-1, -3, 4])


class TestAppendixTables:
    def test_r_phi0_shape(self, phi0):
        reduction = reduce_3sat(phi0)
        r = reduction.relation_r
        assert r.arity == 5  # idR, A1..A4
        assert len(r) == 7  # 2 clause rows + X + 4 variable rows

    def test_r_phi0_rows(self, phi0):
        reduction = reduce_3sat(phi0)
        rows = set(reduction.relation_r.rows)
        base = (1, 2, 3, 4)
        assert ("c1+",) + base in rows
        assert ("c2+",) + base in rows
        assert ("X",) + base in rows
        for i in range(1, 5):
            assert (f"x{i}*",) + base in rows

    def test_p_phi0_shape(self, phi0):
        reduction = reduce_3sat(phi0)
        p = reduction.relation_p
        assert p.arity == 9  # idP, B1t, B1f, ..., B4t, B4f
        assert len(p) == 11  # 6 literal rows + Y + 4 variable rows

    def test_p_phi0_literal_rows(self, phi0):
        """The six literal rows exactly as printed in the appendix."""
        reduction = reduce_3sat(phi0)
        rows = set(reduction.relation_p.rows)
        b = BOTTOM
        # Clause 1 = (x1 ∨ ¬x2 ∨ x3)
        assert ("c1+", 1, b, 2, 2, 3, 3, 4, 4) in rows  # literal x1
        assert ("c1+", 1, 1, b, 2, 3, 3, 4, 4) in rows  # literal ¬x2
        assert ("c1+", 1, 1, 2, 2, 3, b, 4, 4) in rows  # literal x3
        # Clause 2 = (¬x1 ∨ ¬x3 ∨ x4)
        assert ("c2+", b, 1, 2, 2, 3, 3, 4, 4) in rows  # literal ¬x1
        assert ("c2+", 1, 1, 2, 2, b, 3, 4, 4) in rows  # literal ¬x3
        assert ("c2+", 1, 1, 2, 2, 3, 3, 4, b) in rows  # literal x4

    def test_p_phi0_special_rows(self, phi0):
        reduction = reduce_3sat(phi0)
        rows = set(reduction.relation_p.rows)
        b = BOTTOM
        assert ("Y", 1, 1, 2, 2, 3, 3, 4, 4) in rows
        assert ("x1*", b, b, 2, 2, 3, 3, 4, 4) in rows
        assert ("x2*", 1, 1, b, b, 3, 3, 4, 4) in rows
        assert ("x3*", 1, 1, 2, 2, b, b, 4, 4) in rows
        assert ("x4*", 1, 1, 2, 2, 3, 3, b, b) in rows

    def test_sample_polarity(self, phi0):
        reduction = reduce_3sat(phi0)
        assert len(reduction.sample.positives) == 2
        assert len(reduction.sample.negatives) == 5

    def test_phi0_satisfiable_and_reduction_consistent(self, phi0):
        reduction = reduce_3sat(phi0)
        assert is_satisfiable(phi0)
        theta = consistent_semijoin_sat(reduction.instance, reduction.sample)
        assert theta is not None
        valuation = extract_valuation(reduction, theta)
        assert phi0.evaluate(valuation)


class TestReductionEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_sat_iff_consistent(self, seed):
        rng = random.Random(seed)
        formula = random_3cnf(
            rng.randrange(3, 5), rng.randrange(1, 7), rng
        )
        reduction = reduce_3sat(formula)
        satisfiable = is_satisfiable(formula)
        for solver in (
            consistent_semijoin_sat,
            consistent_semijoin_backtracking,
        ):
            theta = solver(reduction.instance, reduction.sample)
            assert (theta is not None) == satisfiable

    @pytest.mark.parametrize("seed", range(10))
    def test_valuation_extraction(self, seed):
        rng = random.Random(100 + seed)
        formula = random_3cnf(4, rng.randrange(1, 8), rng)
        if not is_satisfiable(formula):
            pytest.skip("unsatisfiable draw")
        reduction = reduce_3sat(formula)
        theta = consistent_semijoin_sat(reduction.instance, reduction.sample)
        assert theta is not None
        valuation = extract_valuation(reduction, theta)
        assert formula.evaluate(valuation)

    @pytest.mark.parametrize("seed", range(10))
    def test_model_to_predicate_direction(self, seed):
        """The 'only if' proof direction: a satisfying valuation induces a
        consistent predicate."""
        rng = random.Random(200 + seed)
        formula = random_3cnf(4, rng.randrange(1, 8), rng)
        model = solve(formula)
        if model is None:
            pytest.skip("unsatisfiable draw")
        reduction = reduce_3sat(formula)
        theta = valuation_predicate(reduction, model)
        assert is_semijoin_consistent_with(
            reduction.instance, theta, reduction.sample
        )

    def test_unsatisfiable_formula_is_inconsistent(self):
        # (x1) ∧ (¬x1) — padded to stay within 3SAT width.
        formula = CnfFormula.of([1], [-1])
        reduction = reduce_3sat(formula)
        assert consistent_semijoin_sat(
            reduction.instance, reduction.sample
        ) is None

    def test_gap_variables_handled(self):
        """Variables absent from the formula still get columns and
        negative rows (regression: x2 missing from φ broke extraction)."""
        formula = CnfFormula.of([1, -3, 4], [1, 3, 4])
        reduction = reduce_3sat(formula)
        assert reduction.n_variables == 4
        theta = consistent_semijoin_sat(reduction.instance, reduction.sample)
        assert theta is not None
        valuation = extract_valuation(reduction, theta)
        assert formula.evaluate(valuation)
        model = solve(formula)
        predicate = valuation_predicate(reduction, model)
        assert is_semijoin_consistent_with(
            reduction.instance, predicate, reduction.sample
        )


class TestValidation:
    def test_wide_clause_rejected(self):
        formula = CnfFormula.of([1, 2, 3, 4])
        with pytest.raises(ValueError):
            reduce_3sat(formula)

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            reduce_3sat(CnfFormula([Clause()]))

    def test_variable_free_formula_rejected(self):
        with pytest.raises(ValueError):
            reduce_3sat(CnfFormula())
