"""Semijoin consistency deciders (§6): the three solvers must agree."""

import random

import pytest

from repro.semijoin import (
    SemijoinSample,
    consistent_semijoin_backtracking,
    consistent_semijoin_brute,
    consistent_semijoin_sat,
    is_semijoin_consistent_with,
    semijoin_consistency_cnf,
    witness_signatures,
)

from ..conftest import make_random_instance


class TestSection6Example:
    """§6's example: S'+ = {t1, t2}, S'− = {t3} over Example 2.1."""

    @pytest.fixture()
    def sample(self, example21):
        e = example21
        return SemijoinSample.of(positives=[e.t1, e.t2], negatives=[e.t3])

    def test_theta_prime_is_consistent(self, example21, sample):
        theta = example21.theta(("A1", "B2"))
        assert is_semijoin_consistent_with(
            example21.instance, theta, sample
        )

    def test_all_three_solvers_find_a_predicate(self, example21, sample):
        instance = example21.instance
        for solver in (
            consistent_semijoin_brute,
            consistent_semijoin_backtracking,
            consistent_semijoin_sat,
        ):
            theta = solver(instance, sample)
            assert theta is not None
            assert is_semijoin_consistent_with(instance, theta, sample)

    def test_inconsistent_sample_detected_by_all(self, example21):
        """t2 and t3 agree with P0 on exactly the same witness signatures
        only when...  pick a genuinely impossible sample: a row labeled
        both ways is prevented earlier, so use two rows with comparable
        witness sets."""
        e = example21
        # Any θ keeping t3 (whose best witnesses are weak) also keeps ...
        # Build an impossible sample directly: positive t4 with witness
        # sets vs negative t4-like duplicates is impossible; simplest
        # impossible case: S+ = {t3}, S− = {t3'} where t3' has superset
        # witness signatures.  Here: every witness signature of t1 is ⊆
        # some witness signature of itself — use S+={t1}, S−={t1}?  Not
        # allowed.  Check a concrete unsat case below instead.
        sample = SemijoinSample.of(
            positives=[e.t1, e.t2, e.t3, e.t4], negatives=[]
        )
        # Everything positive is trivially consistent (∅ works).
        for solver in (
            consistent_semijoin_brute,
            consistent_semijoin_backtracking,
            consistent_semijoin_sat,
        ):
            assert solver(e.instance, sample) is not None


class TestWitnessSignatures:
    def test_masks_are_maximal(self, example21):
        e = example21
        for row in e.instance.left:
            masks = witness_signatures(e.instance, row)
            for mask in masks:
                assert not any(
                    other != mask and mask & ~other == 0
                    for other in masks
                )

    def test_empty_right_relation(self):
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A"], [(1,)]),
            Relation.build("P", ["B"]),
        )
        assert witness_signatures(instance, (1,)) == []

    def test_positive_with_no_witness_unsatisfiable(self):
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A"], [(1,)]),
            Relation.build("P", ["B"]),
        )
        sample = SemijoinSample.of(positives=[(1,)])
        assert consistent_semijoin_brute(instance, sample) is None
        assert consistent_semijoin_backtracking(instance, sample) is None
        assert consistent_semijoin_sat(instance, sample) is None


class TestSolverAgreement:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng,
            left_arity=rng.randrange(1, 3),
            right_arity=rng.randrange(1, 4),
            rows=rng.randrange(2, 6),
            values=rng.randrange(2, 4),
        )
        from repro.core import Label

        rows = list(instance.left)
        sample = SemijoinSample()
        for row in rows:
            if rng.random() < 0.7:
                sample.label_row(
                    row, rng.choice([Label.POSITIVE, Label.NEGATIVE])
                )
        brute = consistent_semijoin_brute(instance, sample)
        backtrack = consistent_semijoin_backtracking(instance, sample)
        sat = consistent_semijoin_sat(instance, sample)
        assert (brute is None) == (backtrack is None) == (sat is None)
        for theta in (brute, backtrack, sat):
            if theta is not None:
                assert is_semijoin_consistent_with(instance, theta, sample)

    def test_no_negatives_always_consistent_when_p_nonempty(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=list(e.instance.left))
        assert consistent_semijoin_sat(e.instance, sample) is not None


class TestCnfEncoding:
    def test_variable_map_covers_omega(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=[e.t1], negatives=[e.t3])
        formula, decode = semijoin_consistency_cnf(e.instance, sample)
        assert sorted(decode.values()) == list(range(len(e.instance.omega)))

    def test_positive_without_witness_gets_empty_clause(self):
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A"], [(1,)]),
            Relation.build("P", ["B"]),
        )
        sample = SemijoinSample.of(positives=[(1,)])
        formula, _ = semijoin_consistency_cnf(instance, sample)
        assert any(clause.is_empty for clause in formula)
