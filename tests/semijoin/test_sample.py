"""Semijoin samples: labeled R-rows (§6's adapted example model)."""

import pytest

from repro.core import Label
from repro.core.sample import ConflictingLabelError
from repro.semijoin import SemijoinExample, SemijoinSample


R1 = (0, 1)
R2 = (0, 2)
R3 = (2, 2)


class TestSemijoinExample:
    def test_polarity(self):
        assert SemijoinExample(R1, Label.POSITIVE).is_positive
        assert not SemijoinExample(R1, Label.NEGATIVE).is_positive

    def test_frozen(self):
        example = SemijoinExample(R1, Label.POSITIVE)
        assert example == SemijoinExample(R1, Label.POSITIVE)


class TestSemijoinSample:
    def test_of_constructor(self):
        sample = SemijoinSample.of(positives=[R1, R2], negatives=[R3])
        assert sample.positives == [R1, R2]
        assert sample.negatives == [R3]

    def test_label_of(self):
        sample = SemijoinSample.of(positives=[R1])
        assert sample.label_of(R1) is Label.POSITIVE
        assert sample.label_of(R2) is None

    def test_is_labeled(self):
        sample = SemijoinSample.of(negatives=[R3])
        assert sample.is_labeled(R3)
        assert not sample.is_labeled(R1)

    def test_conflicting_label_rejected(self):
        sample = SemijoinSample.of(positives=[R1])
        with pytest.raises(ConflictingLabelError):
            sample.label_row(R1, Label.NEGATIVE)

    def test_idempotent_relabel(self):
        sample = SemijoinSample.of(positives=[R1])
        sample.label_row(R1, Label.POSITIVE)
        assert len(sample) == 1

    def test_iteration(self):
        sample = SemijoinSample.of(positives=[R1], negatives=[R3])
        examples = list(sample)
        assert SemijoinExample(R1, Label.POSITIVE) in examples
        assert SemijoinExample(R3, Label.NEGATIVE) in examples

    def test_repr(self):
        sample = SemijoinSample.of(positives=[R1])
        assert "S+" in repr(sample)

    def test_empty(self):
        sample = SemijoinSample()
        assert len(sample) == 0
        assert sample.positives == []
