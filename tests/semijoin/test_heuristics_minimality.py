"""Semijoin extensions: SAT-backed inference heuristic and minimality."""

import random

import pytest

from repro.core import Label
from repro.relational import JoinPredicate, semijoin
from repro.semijoin import (
    PerfectSemijoinOracle,
    SemijoinInferenceSession,
    SemijoinSample,
    covering_predicates,
    is_selection_minimal,
    is_semijoin_informative,
    minimal_selection_predicates,
    minimal_selection_unique,
    semijoin_certain_label,
)

from ..conftest import make_random_instance


class TestCertainLabels:
    def test_unconstrained_row_is_informative(self, example21):
        e = example21
        sample = SemijoinSample()
        assert is_semijoin_informative(e.instance, sample, e.t1)

    def test_labeled_row_not_informative(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=[e.t1])
        assert not is_semijoin_informative(e.instance, sample, e.t1)

    def test_forced_positive(self, example21):
        """If t's witness options subsume another row's, labeling can force
        it: with every row positive except one, the remaining row may be
        implied.  Build a crisp case: single-attribute relations."""
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A"], [(1,), (2,)]),
            Relation.build("P", ["B"], [(1,), (2,)]),
        )
        r1, r2 = instance.left.rows
        # With no labels, ∅ keeps everything and {(A,B)} keeps both rows
        # (each has an exact match), so nothing can be excluded: labeling
        # r1 negative is inconsistent → r1 certainly positive.
        assert semijoin_certain_label(
            instance, SemijoinSample(), r1
        ) is Label.POSITIVE

    def test_forced_negative(self):
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A1", "A2"], [(1, 7), (2, 7)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        r1, r2 = instance.left.rows
        # Label r1 negative: the only non-trivial witness constraint left
        # would have to exclude r1 but keep r2... r2's witness signatures
        # are strictly weaker (it matches nothing), so r2 is forced
        # negative as well.
        sample = SemijoinSample.of(negatives=[r1])
        assert semijoin_certain_label(
            instance, sample, r2
        ) is Label.NEGATIVE


class TestHeuristicSessions:
    @pytest.mark.parametrize("strategy", ["ambiguity", "random"])
    def test_recovers_goal_on_example21(self, example21, strategy):
        e = example21
        goal = e.theta(("A1", "B2"))
        session = SemijoinInferenceSession(
            e.instance,
            PerfectSemijoinOracle(e.instance, goal),
            strategy=strategy,
            seed=1,
        )
        result = session.run()
        assert result.matches_goal(e.instance, goal)
        assert result.interactions <= len(e.instance.left)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_and_goals(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=4, values=3
        )
        omega = instance.omega
        goal = JoinPredicate(
            rng.sample(omega, rng.randrange(0, len(omega) + 1))
        )
        session = SemijoinInferenceSession(
            instance,
            PerfectSemijoinOracle(instance, goal),
            strategy="random",
            seed=seed,
        )
        result = session.run()
        assert result.matches_goal(instance, goal)

    def test_interactions_bounded_by_rows(self, example21):
        e = example21
        goal = JoinPredicate.empty()
        session = SemijoinInferenceSession(
            e.instance, PerfectSemijoinOracle(e.instance, goal), seed=0
        )
        result = session.run()
        assert result.interactions <= len(e.instance.left)


class TestMinimality:
    def test_covering_includes_empty_predicate(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=[e.t1])
        covering = covering_predicates(e.instance, sample)
        assert JoinPredicate.empty() in covering

    def test_minimal_selection_contains_positives(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=[e.t1, e.t4])
        for theta in minimal_selection_predicates(e.instance, sample):
            assert {e.t1, e.t4} <= set(semijoin(e.instance, theta))

    def test_empty_predicate_usually_not_minimal(self, example21):
        """∅ keeps every row; any θ keeping the positives and dropping one
        row beats it."""
        e = example21
        sample = SemijoinSample.of(positives=[e.t1])
        assert not is_selection_minimal(
            e.instance, sample, JoinPredicate.empty()
        )

    def test_non_covering_predicate_not_minimal(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=[e.t3])  # t3 matches nothing
        theta = e.theta(("A1", "B1"), ("A2", "B3"))
        assert not is_selection_minimal(e.instance, sample, theta)

    def test_uniqueness_probe_runs(self, example21):
        e = example21
        sample = SemijoinSample.of(positives=[e.t1])
        # Either outcome is acceptable; the probe must be self-consistent.
        unique = minimal_selection_unique(e.instance, sample)
        minimal = minimal_selection_predicates(e.instance, sample)
        results = {
            frozenset(semijoin(e.instance, theta)) for theta in minimal
        }
        assert unique == (len(results) <= 1)

    def test_uniqueness_can_fail(self):
        """§7 asked whether the minimal predicate is unique — here is a
        counterexample for the *result*: two incomparable minimal
        selections."""
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build(
                "R", ["A1", "A2"], [(1, 9), (1, 8), (2, 9)]
            ),
            Relation.build("P", ["B1", "B2"], [(1, 9)]),
        )
        target = instance.left.rows[0]  # matches on both attributes
        sample = SemijoinSample.of(positives=[target])
        minimal = minimal_selection_predicates(instance, sample)
        results = {
            frozenset(semijoin(instance, theta)) for theta in minimal
        }
        # {(A1,B1)} keeps rows 1,2; {(A2,B2)} keeps rows 1,3; both minimal
        # and incomparable... unless the conjunction is selectable.
        conjunction = JoinPredicate.parse("R.A1 = P.B1 AND R.A2 = P.B2")
        assert set(semijoin(instance, conjunction)) == {target}
        # The conjunction keeps only the positive row: unique minimum.
        assert results == {frozenset({target})}
        assert minimal_selection_unique(instance, sample)
