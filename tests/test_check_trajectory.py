"""Unit tests for the checked-in CI bench gate
(``benchmarks/check_trajectory.py``), which replaced the inline CI
heredoc: each suite's tolerances must pass healthy smoke reports and
fail regressed ones, and the CLI must exit non-zero on failure."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_trajectory.py"
)
_spec = importlib.util.spec_from_file_location(
    "check_trajectory", _MODULE_PATH
)
check_trajectory = importlib.util.module_from_spec(_spec)
# dataclasses resolves the defining module through sys.modules, so the
# module must be registered before exec.
sys.modules["check_trajectory"] = check_trajectory
_spec.loader.exec_module(check_trajectory)


def ok_names(gates):
    return [gate.name for gate in gates if gate.ok]


def failed_names(gates):
    return [gate.name for gate in gates if not gate.ok]


class TestCoreSuite:
    def report(self, speedups):
        return {
            "benchmarks": [
                {"name": f"cell{i}", "workload": "w", "speedup": s}
                for i, s in enumerate(speedups)
            ]
        }

    def test_healthy_cells_pass(self):
        gates = check_trajectory.check_core(
            self.report([1.2, 25.0, 0.5]), {}
        )
        assert failed_names(gates) == []

    def test_regressed_cell_fails(self):
        gates = check_trajectory.check_core(
            self.report([1.2, 0.49]), {}
        )
        assert failed_names(gates) == ["speedup:cell1:w"]

    def test_empty_report_fails(self):
        gates = check_trajectory.check_core({"benchmarks": []}, {})
        assert failed_names(gates) == ["has_cells"]


class TestBuildSuite:
    def test_target_comes_from_baseline(self):
        baseline = {
            "acceptance": {"targets": {"streaming_peak_ratio_max": 0.5}}
        }
        good = {"acceptance": {"streaming_peak_ratio": 0.4}}
        bad = {"acceptance": {"streaming_peak_ratio": 0.6}}
        assert failed_names(
            check_trajectory.check_build(good, baseline)
        ) == []
        assert failed_names(
            check_trajectory.check_build(bad, baseline)
        ) == ["streaming_peak_ratio"]

    def test_missing_ratio_fails(self):
        gates = check_trajectory.check_build({"acceptance": {}}, {})
        assert failed_names(gates) == ["streaming_peak_ratio"]


class TestPlanSuite:
    def acceptance(self, **overrides):
        base = {
            "l2s_incremental_ms": 105.0,
            "l2s_from_scratch_ms": 100.0,
            "l2s_gate_tolerance": 1.1,
            "per_session_kernel_seconds": 1.0,
            "batched_kernel_seconds": 0.4,
            "plan_cache_cold_p95_ms": 2.7,
            "plan_cache_warm_p95_ms": 0.06,
            "plan_cache_gate_min": 3.0,
            "plan_cache_misses": 32,
            "plan_cache_local_hits": 16,
            "plan_cache_shared_hits": 0,
            "plan_cache_computes": 16,
        }
        base.update(overrides)
        return {"acceptance": base}

    def test_gate_rederives_from_timings(self):
        """The gate must not trust the report's own boolean."""
        report = self.acceptance(
            l2s_incremental_ms=120.0,
            l2s_gate=True,  # lying — timings exceed tolerance
        )
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == [
            "l2s_incremental_within_tolerance"
        ]

    def test_within_tolerance_passes(self):
        assert failed_names(
            check_trajectory.check_plan(self.acceptance(), {})
        ) == []

    def test_batched_kernel_gate_rederives_from_seconds(self):
        """1.2x is above the full-run gate min the report itself could
        claim, but below the smoke floor — re-derived, so it fails."""
        report = self.acceptance(
            batched_kernel_seconds=0.9,
            batched_kernel_gate=True,
            batched_kernel_gate_min=0.5,
        )
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["batched_kernel_segment"]

    def test_missing_batched_kernel_numbers_fail(self):
        report = self.acceptance()
        del report["acceptance"]["batched_kernel_seconds"]
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["batched_kernel_segment"]

    def test_plan_cache_speedup_below_floor_fails(self):
        """2.5x warm speedup is a regression against the 3x floor —
        re-derived from the raw p95s, not the report's own gate bool."""
        report = self.acceptance(
            plan_cache_cold_p95_ms=2.5,
            plan_cache_warm_p95_ms=1.0,
            plan_cache_gate=True,  # lying
        )
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["plan_cache_warm_p95"]

    def test_plan_cache_smoke_floor_from_report(self):
        """A smoke report carries its relaxed 1.5x floor and a 2x
        speedup passes it — the same numbers fail a full-run report."""
        report = self.acceptance(
            plan_cache_cold_p95_ms=2.0,
            plan_cache_warm_p95_ms=1.0,
            plan_cache_gate_min=1.5,
        )
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == []

    def test_plan_cache_floor_weakening_clamped(self):
        """A report cannot talk the floor below the checker's minimum:
        1.2x claimed against a 0.5x floor still fails at 1.5x."""
        report = self.acceptance(
            plan_cache_cold_p95_ms=1.2,
            plan_cache_warm_p95_ms=1.0,
            plan_cache_gate_min=0.5,
            plan_cache_gate=True,  # lying
        )
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["plan_cache_warm_p95"]

    def test_plan_cache_missing_latencies_fail(self):
        report = self.acceptance()
        del report["acceptance"]["plan_cache_warm_p95_ms"]
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["plan_cache_warm_p95"]

    def test_plan_cache_counter_identity_rederived(self):
        """misses == local_hits + shared_hits + computes, recomputed
        from the raw counters (a dropped install would break it)."""
        report = self.acceptance(plan_cache_computes=15)
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["plan_cache_counter_identity"]

    def test_plan_cache_missing_counters_fail(self):
        report = self.acceptance()
        del report["acceptance"]["plan_cache_misses"]
        gates = check_trajectory.check_plan(report, {})
        assert failed_names(gates) == ["plan_cache_counter_identity"]


class TestServiceSuite:
    def report(self, hit_ratio=0.98, histogram=None, depth=2):
        if histogram is None:
            histogram = {"2": 3, "7": 1}
        return {
            "acceptance": {"index_cache_hit_ratio": hit_ratio},
            "serving": {
                "speculation": {
                    "depth": depth,
                    "hit_ratio_by_depth": {
                        str(d): 0.5 for d in range(1, depth + 1)
                    },
                }
            },
            "batched_sessions": {
                "batched": {
                    "kernel_batch": {
                        "batch_size_histogram": histogram
                    }
                }
            },
        }

    def test_hit_ratio_gate(self):
        baseline = {
            "acceptance": {"index_cache_hit_ratio_target": 0.9}
        }
        assert failed_names(
            check_trajectory.check_service(self.report(), baseline)
        ) == []
        assert failed_names(
            check_trajectory.check_service(
                self.report(hit_ratio=0.85), baseline
            )
        ) == ["index_cache_hit_ratio"]

    def test_singleton_histogram_fails(self):
        """Batches of size 1 mean nothing ever coalesced over HTTP."""
        gates = check_trajectory.check_service(
            self.report(histogram={"1": 40}), {}
        )
        assert failed_names(gates) == ["kernel_batch_coalesced"]

    def test_missing_depth2_speculation_fails(self):
        gates = check_trajectory.check_service(
            self.report(depth=1), {}
        )
        assert failed_names(gates) == ["speculation_depth2_reported"]


class TestStoreSuite:
    def smoke(self, overhead=5.0, identical=True, rehydrate=9.0):
        return {
            "acceptance": {
                "journal_overhead_p95_pct": overhead,
                "journal_overhead_max_pct": 15.0,
                "crash_recovery_identical": identical,
                "rehydrate_p95_ms": rehydrate,
            }
        }

    def baseline(self, rehydrate=9.0):
        return {"acceptance": {"rehydrate_p95_ms": rehydrate}}

    def test_healthy_report_passes(self):
        gates = check_trajectory.check_store(
            self.smoke(), self.baseline()
        )
        assert failed_names(gates) == []
        assert set(ok_names(gates)) == {
            "journal_overhead_p95",
            "crash_recovery_identical",
            "rehydrate_p95_vs_baseline",
        }

    def test_overhead_above_smoke_tolerance_fails(self):
        gates = check_trajectory.check_store(
            self.smoke(overhead=30.0), self.baseline()
        )
        assert failed_names(gates) == ["journal_overhead_p95"]

    def test_non_identical_recovery_fails(self):
        gates = check_trajectory.check_store(
            self.smoke(identical=False), self.baseline()
        )
        assert failed_names(gates) == ["crash_recovery_identical"]

    def test_rehydrate_order_of_magnitude_regression_fails(self):
        gates = check_trajectory.check_store(
            self.smoke(rehydrate=95.0), self.baseline(rehydrate=9.0)
        )
        assert failed_names(gates) == ["rehydrate_p95_vs_baseline"]

    def test_rehydrate_gate_skipped_without_baseline(self):
        gates = check_trajectory.check_store(
            self.smoke(rehydrate=95.0), {}
        )
        assert failed_names(gates) == []


class TestFleetSuite:
    def smoke(
        self,
        rates={1: 50.0, 2: 80.0},
        cpu_count=2,
        takeover=1.1,
        recovery_parity=True,
        scaling_parity=True,
    ):
        return {
            "scaling": {
                "by_workers": {
                    str(w): {"sessions_per_sec": rate}
                    for w, rate in rates.items()
                }
            },
            "acceptance": {
                "cpu_count": cpu_count,
                "takeover_seconds": takeover,
                "recovery_parity": recovery_parity,
                "scaling_parity": scaling_parity,
            },
        }

    def baseline(self, takeover=1.0, factor=0.75):
        return {
            "acceptance": {
                "takeover_seconds": takeover,
                "scaling_floor_factor": factor,
            }
        }

    def test_healthy_report_passes(self):
        gates = check_trajectory.check_fleet(
            self.smoke(), self.baseline()
        )
        assert failed_names(gates) == []
        assert set(ok_names(gates)) == {
            "scaling_vs_cores",
            "oversubscription_bounded",
            "recovery_parity",
            "scaling_parity",
            "takeover_vs_baseline",
            # No shared_index / plan_cache cells => unsupported platform
            # semantics: both planes degrade to per-process behaviour
            # and pass trivially.
            "shared_index_supported",
            "plan_cache_supported",
        }

    def test_speedup_rederived_from_raw_rates(self):
        """The gate recomputes speedups from sessions/sec — 1.1x at 2
        workers on 2 cores is below the 1.5x floor even though the
        report carries no speedup field to lie with."""
        report = self.smoke(rates={1: 50.0, 2: 55.0}, cpu_count=2)
        gates = check_trajectory.check_fleet(report, self.baseline())
        assert failed_names(gates) == ["scaling_vs_cores"]

    def test_floor_applies_to_largest_core_fitting_fleet(self):
        """On a 1-core runner the 4-worker cell is oversubscription,
        not the scaling gate: the same rates that fail on 4 cores pass
        on 1 core (where only the bounded-collapse floor applies)."""
        rates = {1: 50.0, 4: 60.0}
        one_core = self.smoke(rates=rates, cpu_count=1)
        four_core = self.smoke(rates=rates, cpu_count=4)
        assert failed_names(
            check_trajectory.check_fleet(one_core, self.baseline())
        ) == []
        assert failed_names(
            check_trajectory.check_fleet(four_core, self.baseline())
        ) == ["scaling_vs_cores"]

    def test_four_core_four_worker_floor_is_three_x(self):
        """On >= 4-core hardware the floor is the paper-grade 3x."""
        below = self.smoke(rates={1: 50.0, 4: 145.0}, cpu_count=8)
        gates = check_trajectory.check_fleet(below, self.baseline())
        assert failed_names(gates) == ["scaling_vs_cores"]
        above = self.smoke(rates={1: 50.0, 4: 155.0}, cpu_count=8)
        assert failed_names(
            check_trajectory.check_fleet(above, self.baseline())
        ) == []

    def test_oversubscription_collapse_fails(self):
        """4 workers on 1 core may cost throughput but not collapse
        past the bounded floor."""
        report = self.smoke(rates={1: 50.0, 4: 10.0}, cpu_count=1)
        gates = check_trajectory.check_fleet(report, self.baseline())
        assert failed_names(gates) == ["oversubscription_bounded"]

    def test_parity_flags_gate(self):
        gates = check_trajectory.check_fleet(
            self.smoke(recovery_parity=False, scaling_parity=False),
            self.baseline(),
        )
        assert failed_names(gates) == [
            "recovery_parity",
            "scaling_parity",
        ]

    def test_takeover_order_of_magnitude_regression_fails(self):
        gates = check_trajectory.check_fleet(
            self.smoke(takeover=11.0), self.baseline(takeover=1.0)
        )
        assert failed_names(gates) == ["takeover_vs_baseline"]

    def test_takeover_gate_skipped_without_baseline(self):
        gates = check_trajectory.check_fleet(
            self.smoke(takeover=99.0), {}
        )
        assert failed_names(gates) == []

    def test_missing_rates_fail(self):
        report = self.smoke()
        del report["scaling"]
        gates = check_trajectory.check_fleet(report, self.baseline())
        assert failed_names(gates) == [
            "scaling_vs_cores",
            "oversubscription_bounded",
        ]

    def test_suite_registered(self):
        assert "fleet" in check_trajectory.SUITES


class TestSharedIndexGates:
    def cell(
        self,
        supported=True,
        single=4000,
        fleet=4200,
        build_p95=300.0,
        attach_p95=5.0,
        leaked=[],
        floor=1.5,
        ratio_max=None,
    ):
        acceptance = {"shared_attach_speedup_floor": floor}
        if ratio_max is not None:
            acceptance["shared_memory_ratio_max"] = ratio_max
        report = {
            "shared_index": {
                "supported": supported,
                "workers": 4,
                "single_resident_bytes": single,
                "fleet_resident_bytes": fleet,
                "private_build_latency": {"p95_ms": build_p95},
                "attach_latency": {"p95_ms": attach_p95},
                "leaked_segments": leaked,
            },
            "acceptance": acceptance,
        }
        return report

    def names(self, report):
        return check_trajectory._shared_index_gates(report)

    def test_healthy_cell_passes(self):
        gates = self.names(self.cell())
        assert failed_names(gates) == []
        assert set(ok_names(gates)) == {
            "shared_index_memory",
            "shared_index_attach_speedup",
            "shared_index_no_leaks",
        }

    def test_unsupported_platform_passes_trivially(self):
        gates = self.names(self.cell(supported=False))
        assert failed_names(gates) == []
        assert ok_names(gates) == ["shared_index_supported"]

    def test_memory_ratio_rederived_from_raw_bytes(self):
        """4 workers holding 4 private copies is exactly the failure
        the plane exists to remove."""
        gates = self.names(self.cell(single=4000, fleet=16000))
        assert failed_names(gates) == ["shared_index_memory"]

    def test_memory_ratio_boundary(self):
        assert failed_names(
            self.names(self.cell(single=4000, fleet=6000))
        ) == []
        assert failed_names(
            self.names(self.cell(single=4000, fleet=6001))
        ) == ["shared_index_memory"]

    def test_smoke_report_ratio_ceiling_honored(self):
        """A smoke report may relax the ceiling (tiny indexes make the
        flat buffer's fixed overhead dominate) up to the hard cap."""
        gates = self.names(
            self.cell(single=4000, fleet=8000, ratio_max=3.0)
        )
        assert failed_names(gates) == []

    def test_report_cannot_weaken_ratio_past_hard_cap(self):
        gates = self.names(
            self.cell(single=4000, fleet=16000, ratio_max=10.0)
        )
        assert failed_names(gates) == ["shared_index_memory"]

    def test_attach_slower_than_floor_fails(self):
        gates = self.names(
            self.cell(build_p95=100.0, attach_p95=80.0)
        )
        assert failed_names(gates) == ["shared_index_attach_speedup"]

    def test_report_floor_cannot_undercut_the_minimum(self):
        """A report claiming a 0.1x floor is clamped to the canary
        minimum — the gate cannot be weakened from the report side."""
        gates = self.names(
            self.cell(build_p95=100.0, attach_p95=90.0, floor=0.1)
        )
        assert failed_names(gates) == ["shared_index_attach_speedup"]

    def test_full_run_floor_applies_when_recorded(self):
        """A full (non-smoke) report records the 5x floor; 3x attach
        speedup then fails even though it clears the smoke minimum."""
        gates = self.names(
            self.cell(build_p95=300.0, attach_p95=100.0, floor=5.0)
        )
        assert failed_names(gates) == ["shared_index_attach_speedup"]

    def test_leaked_segments_fail(self):
        gates = self.names(
            self.cell(leaked=["repro_idx_deadbeef_g1"])
        )
        assert failed_names(gates) == ["shared_index_no_leaks"]

    def test_missing_measurements_fail(self):
        """A supported cell with no samples (e.g. classification found
        no attaches) must fail loudly, not pass vacuously."""
        gates = self.names(
            self.cell(single=0, attach_p95=None)
        )
        assert set(failed_names(gates)) == {
            "shared_index_memory",
            "shared_index_attach_speedup",
        }

    def test_gates_ride_along_in_check_fleet(self):
        report = {
            "scaling": {
                "by_workers": {
                    "1": {"sessions_per_sec": 50.0},
                    "2": {"sessions_per_sec": 80.0},
                }
            },
            "acceptance": {
                "cpu_count": 2,
                "takeover_seconds": 1.0,
                "recovery_parity": True,
                "scaling_parity": True,
            },
        }
        report["shared_index"] = self.cell()["shared_index"]
        report["acceptance"]["shared_attach_speedup_floor"] = 1.5
        gates = check_trajectory.check_fleet(report, {})
        assert failed_names(gates) == []
        assert "shared_index_memory" in ok_names(gates)


class TestPlanCacheFleetGates:
    def report(
        self,
        supported=True,
        shared_hits=25,
        parity=True,
        leaked=[],
    ):
        return {
            "plan_cache": {
                "supported": supported,
                "questions_per_session": 25,
                "counters": {"shared_hits_total": shared_hits},
                "parity_checked": parity,
                "leaked_segments": leaked,
            }
        }

    def gates(self, report):
        return check_trajectory._plan_cache_fleet_gates(report)

    def test_healthy_cell_passes(self):
        gates = self.gates(self.report())
        assert failed_names(gates) == []
        assert set(ok_names(gates)) == {
            "plan_cross_worker_hits",
            "plan_no_leaked_segments",
        }

    def test_unsupported_platform_passes_trivially(self):
        gates = self.gates(self.report(supported=False))
        assert failed_names(gates) == []
        assert ok_names(gates) == ["plan_cache_supported"]

    def test_zero_cross_worker_hits_fail(self):
        """Workers each recomputing every table is exactly the failure
        the machine-wide tier exists to remove."""
        gates = self.gates(self.report(shared_hits=0))
        assert failed_names(gates) == ["plan_cross_worker_hits"]

    def test_unchecked_parity_fails(self):
        """Counters from diverged sessions prove nothing."""
        gates = self.gates(self.report(parity=False))
        assert failed_names(gates) == ["plan_cross_worker_hits"]

    def test_leaked_segments_fail(self):
        gates = self.gates(
            self.report(leaked=["repro_plan_deadbeef_g1"])
        )
        assert failed_names(gates) == ["plan_no_leaked_segments"]

    def test_missing_leak_sweep_fails(self):
        """A cell that never swept /dev/shm must fail loudly, not pass
        vacuously."""
        gates = self.gates(self.report(leaked=None))
        assert failed_names(gates) == ["plan_no_leaked_segments"]

    def test_gates_ride_along_in_check_fleet(self):
        report = {
            "scaling": {
                "by_workers": {
                    "1": {"sessions_per_sec": 50.0},
                    "2": {"sessions_per_sec": 80.0},
                }
            },
            "acceptance": {
                "cpu_count": 2,
                "takeover_seconds": 1.0,
                "recovery_parity": True,
                "scaling_parity": True,
            },
        }
        report.update(self.report())
        gates = check_trajectory.check_fleet(report, {})
        assert failed_names(gates) == []
        assert "plan_cross_worker_hits" in ok_names(gates)


class TestStreamSuite:
    def report(
        self,
        polled=0.26,
        streamed=0.22,
        parity=True,
        bare=1.1,
        fanned=1.25,
        subscribers=256,
        fan_parity=True,
        dropped=0,
    ):
        return {
            "latency": {
                "polled_question_latency": {"p50_ms": polled},
                "streamed_question_latency": {"p50_ms": streamed},
                "parity": {"checked": parity, "sessions": 6},
            },
            "acceptance": {"stream_parity": parity},
            "fanout": {
                "bare_answer_latency": {"p95_ms": bare},
                "fanout_answer_latency": {"p95_ms": fanned},
                "subscribers": subscribers,
                "parity_checked": fan_parity,
                "events_dropped": dropped,
            },
        }

    def gates(self, report):
        return check_trajectory.check_stream(report, {})

    def test_suite_registered(self):
        assert "stream" in check_trajectory.SUITES

    def test_healthy_report_passes(self):
        gates = self.gates(self.report())
        assert failed_names(gates) == []
        assert set(ok_names(gates)) == {
            "streamed_beats_polled_p50",
            "stream_parity",
            "fanout_subscribers",
            "fanout_overhead_p95",
            "fanout_parity",
            "no_dropped_events",
        }

    def test_streamed_slower_than_polled_fails(self):
        gates = self.gates(self.report(polled=0.2, streamed=0.3))
        assert failed_names(gates) == ["streamed_beats_polled_p50"]

    def test_overhead_above_both_tolerances_fails(self):
        """500% AND +5ms — neither the ratio nor the absolute floor
        forgives it."""
        gates = self.gates(self.report(bare=1.0, fanned=6.0))
        assert failed_names(gates) == ["fanout_overhead_p95"]

    def test_absolute_floor_forgives_tiny_bare_p95(self):
        """300% of a 0.5ms bare p95 is +1.5ms — scheduler noise on a
        busy runner, not a fan-out regression."""
        gates = self.gates(self.report(bare=0.5, fanned=2.0))
        assert failed_names(gates) == []

    def test_ratio_forgives_large_absolute_on_slow_runner(self):
        gates = self.gates(self.report(bare=100.0, fanned=110.0))
        assert failed_names(gates) == []

    def test_missing_latency_numbers_fail(self):
        gates = check_trajectory.check_stream(
            {"fanout": self.report()["fanout"]}, {}
        )
        assert "streamed_beats_polled_p50" in failed_names(gates)
        assert "stream_parity" in failed_names(gates)

    def test_missing_fanout_numbers_fail(self):
        report = self.report()
        del report["fanout"]
        gates = check_trajectory.check_stream(report, {})
        assert set(failed_names(gates)) == {
            "fanout_subscribers",
            "fanout_overhead_p95",
            "fanout_parity",
            "no_dropped_events",
        }

    def test_unchecked_parity_fails(self):
        """Timings from diverged question sequences prove nothing."""
        gates = self.gates(self.report(parity=False))
        assert failed_names(gates) == ["stream_parity"]

    def test_unchecked_fanout_parity_fails(self):
        gates = self.gates(self.report(fan_parity=False))
        assert failed_names(gates) == ["fanout_parity"]

    def test_dropped_events_fail(self):
        gates = self.gates(self.report(dropped=3))
        assert failed_names(gates) == ["no_dropped_events"]

    def test_too_few_subscribers_fail(self):
        gates = self.gates(self.report(subscribers=8))
        assert failed_names(gates) == ["fanout_subscribers"]


class TestCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        report = self.write(
            tmp_path,
            "smoke.json",
            {
                "acceptance": {"index_cache_hit_ratio": 0.99},
                "serving": {
                    "speculation": {
                        "depth": 2,
                        "hit_ratio_by_depth": {"1": 0.6, "2": 0.3},
                    }
                },
                "batched_sessions": {
                    "batched": {
                        "kernel_batch": {
                            "batch_size_histogram": {"4": 2}
                        }
                    }
                },
            },
        )
        baseline = self.write(
            tmp_path,
            "base.json",
            {"acceptance": {"index_cache_hit_ratio_target": 0.9}},
        )
        code = check_trajectory.main(
            [
                "--suite", "service",
                "--report", report,
                "--baseline", baseline,
            ]
        )
        assert code == 0
        assert "[OK]" in capsys.readouterr().out

    def test_exit_one_on_failure(self, tmp_path, capsys):
        report = self.write(
            tmp_path,
            "smoke.json",
            {"acceptance": {"index_cache_hit_ratio": 0.2}},
        )
        baseline = self.write(tmp_path, "base.json", {})
        code = check_trajectory.main(
            [
                "--suite", "service",
                "--report", report,
                "--baseline", baseline,
            ]
        )
        assert code == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_unknown_suite_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            check_trajectory.main(
                ["--suite", "nope", "--report", "x", "--baseline", "y"]
            )

    def test_committed_baselines_satisfy_their_own_gates(self):
        """The committed full-run reports must pass the smoke gates —
        the trajectory is anchored by real, healthy reports."""
        root = Path(__file__).resolve().parent.parent
        for suite in sorted(check_trajectory.SUITES):
            baseline_path = root / f"BENCH_{suite}.json"
            if not baseline_path.exists():
                continue
            baseline = json.loads(baseline_path.read_text())
            gates = check_trajectory.run_suite(
                suite, baseline, baseline
            )
            assert failed_names(gates) == [], (
                f"committed BENCH_{suite}.json fails its own gate"
            )
