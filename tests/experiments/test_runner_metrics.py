"""Experiment runner and metrics."""

import pytest

from repro.core import BottomUpStrategy, TopDownStrategy
from repro.experiments import (
    average_measurements,
    compute_metrics,
    measure_inference,
)
from repro.relational import JoinPredicate


class TestMeasureInference:
    def test_records_strategy_and_goal_size(self, example21):
        e = example21
        measurement = measure_inference(
            e.instance, TopDownStrategy(), e.theta(("A1", "B1"))
        )
        assert measurement.strategy_name == "TD"
        assert measurement.goal_size == 1
        assert measurement.equivalent
        assert measurement.interactions >= 1
        assert measurement.seconds >= 0.0

    def test_reuses_index(self, example21, example21_index):
        e = example21
        measurement = measure_inference(
            e.instance,
            BottomUpStrategy(),
            JoinPredicate.empty(),
            index=example21_index,
        )
        assert measurement.interactions == 1


class TestAggregation:
    def test_averages(self, example21):
        e = example21
        measurements = [
            measure_inference(
                e.instance, TopDownStrategy(), e.theta(("A1", "B1")),
                seed=s,
            )
            for s in range(3)
        ]
        aggregated = average_measurements(measurements)
        assert aggregated.runs == 3
        assert aggregated.all_equivalent
        assert (
            min(m.interactions for m in measurements)
            <= aggregated.mean_interactions
            <= aggregated.max_interactions
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_measurements([])

    def test_mixed_strategies_rejected(self, example21):
        e = example21
        first = measure_inference(
            e.instance, TopDownStrategy(), e.theta(("A1", "B1"))
        )
        second = measure_inference(
            e.instance, BottomUpStrategy(), e.theta(("A1", "B1"))
        )
        with pytest.raises(ValueError):
            average_measurements([first, second])


class TestMetrics:
    def test_example21_metrics(self, example21, example21_index):
        metrics = compute_metrics(example21.instance, example21_index)
        assert metrics.cartesian_size == 12
        assert metrics.distinct_signatures == 12
        assert metrics.join_ratio == pytest.approx(2.0)
        assert metrics.max_signature_size == 3
        assert metrics.maximal_classes == 7
        assert metrics.compression == pytest.approx(1.0)

    def test_compression_with_duplicates(self):
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A"], [(1,), (2,), (3,)]),
            Relation.build("P", ["B"], [(9,), (8,)]),
        )
        metrics = compute_metrics(instance)
        assert metrics.distinct_signatures == 1  # everything T = ∅
        assert metrics.compression == pytest.approx(6.0)

    def test_empty_instance_metrics(self):
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A"]), Relation.build("P", ["B"])
        )
        metrics = compute_metrics(instance)
        assert metrics.cartesian_size == 0
        assert metrics.compression == 0.0
