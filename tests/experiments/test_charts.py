"""ASCII chart rendering."""

import pytest

from repro.core import strategy_by_name
from repro.data import SyntheticConfig
from repro.experiments import (
    bar_chart,
    chart_figure6,
    chart_figure7,
    figure6,
    figure7,
)


class TestBarChart:
    def test_scales_to_max(self):
        text = bar_chart({"BU": 2, "TD": 4}, width=4)
        lines = text.splitlines()
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 4

    def test_title(self):
        assert bar_chart({"a": 1}, title="Title").startswith("Title")

    def test_zero_values(self):
        text = bar_chart({"a": 0, "b": 0})
        assert "█" not in text

    def test_empty_series(self):
        assert bar_chart({}) == "(no data)"

    def test_float_formatting(self):
        assert "0.25" in bar_chart({"a": 0.25})

    def test_unit_suffix(self):
        assert "3s" in bar_chart({"a": 3}, unit="s")


class TestFigureCharts:
    @pytest.fixture(scope="class")
    def fig6_rows(self):
        return figure6(
            scales={"tiny": 0.4},
            strategies=[strategy_by_name("BU"), strategy_by_name("TD")],
            seed=0,
        )

    @pytest.fixture(scope="class")
    def fig7_cells(self):
        return figure7(
            configs=(SyntheticConfig(2, 2, 10, 6),),
            goal_sizes=(0, 1),
            runs=1,
            strategies=[strategy_by_name("BU")],
            seed=0,
        )

    def test_chart_figure6_interactions(self, fig6_rows):
        text = chart_figure6(fig6_rows, metric="interactions")
        assert "join1 @ tiny (interactions)" in text
        assert "█" in text

    def test_chart_figure6_seconds(self, fig6_rows):
        text = chart_figure6(fig6_rows, metric="seconds")
        assert "(seconds)" in text

    def test_chart_figure6_bad_metric(self, fig6_rows):
        with pytest.raises(ValueError):
            chart_figure6(fig6_rows, metric="cost")

    def test_chart_figure7(self, fig7_cells):
        text = chart_figure7(fig7_cells)
        assert "|goal| = 0" in text

    def test_chart_figure7_bad_metric(self, fig7_cells):
        with pytest.raises(ValueError):
            chart_figure7(fig7_cells, metric="cost")
