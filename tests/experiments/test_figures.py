"""The figure/table regeneration harness (smoke-level: small scales)."""

import pytest

from repro.core import strategy_by_name
from repro.data import SyntheticConfig
from repro.experiments import (
    figure6,
    figure7,
    render_figure6,
    render_figure7,
    render_table,
    render_table1,
    table1,
)


@pytest.fixture(scope="module")
def small_fig6():
    return figure6(
        scales={"tiny": 0.5},
        strategies=[strategy_by_name("BU"), strategy_by_name("TD")],
        seed=0,
    )


@pytest.fixture(scope="module")
def small_fig7():
    return figure7(
        configs=(SyntheticConfig(2, 2, 15, 10),),
        goal_sizes=(0, 1),
        runs=2,
        strategies=[strategy_by_name("BU"), strategy_by_name("TD")],
        seed=0,
    )


class TestFigure6:
    def test_covers_all_joins_and_strategies(self, small_fig6):
        joins = {row.join_name for row in small_fig6}
        strategies = {
            row.measurement.strategy_name for row in small_fig6
        }
        assert joins == {"join1", "join2", "join3", "join4", "join5"}
        assert strategies == {"BU", "TD"}

    def test_all_runs_equivalent(self, small_fig6):
        assert all(row.measurement.equivalent for row in small_fig6)

    def test_metrics_attached(self, small_fig6):
        for row in small_fig6:
            assert row.metrics.cartesian_size > 0
            assert row.metrics.join_ratio >= 0.0

    def test_render(self, small_fig6):
        text = render_figure6(small_fig6)
        assert "Number of interactions" in text
        assert "join5" in text


class TestFigure7:
    def test_cells_shape(self, small_fig7):
        sizes = {cell.goal_size for cell in small_fig7}
        assert sizes <= {0, 1}
        for cell in small_fig7:
            assert cell.aggregated.runs == 2
            assert cell.aggregated.all_equivalent

    def test_render(self, small_fig7):
        text = render_figure7(small_fig7)
        assert "(2,2,15,10)" in text


class TestTable1:
    def test_built_from_figures(self, small_fig6, small_fig7):
        rows = table1(
            figure6_rows=small_fig6, figure7_cells=small_fig7, seed=0
        )
        groups = {row.group for row in rows}
        assert any(group.startswith("TPC-H") for group in groups)
        for row in rows:
            assert row.best_interactions >= 1 or "size 0" in row.experiment
            assert row.best_strategies

    def test_best_strategy_minimises_interactions(
        self, small_fig6, small_fig7
    ):
        rows = table1(
            figure6_rows=small_fig6, figure7_cells=small_fig7, seed=0
        )
        for row in rows:
            best = min(
                cell.mean_interactions for cell in row.cells.values()
            )
            assert row.best_interactions == best
            for name in row.best_strategies:
                assert row.cells[name].mean_interactions == best

    def test_render(self, small_fig6, small_fig7):
        rows = table1(
            figure6_rows=small_fig6, figure7_cells=small_fig7, seed=0
        )
        text = render_table1(rows)
        assert "join ratio" in text


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["a", "bbbb"], [[1, 2], [333, 4]], title="T"
        )
        assert text.startswith("**T**")
        assert "| a   | bbbb |" in text

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "| x |" in text


class TestMainModule:
    def test_build_report_smoke(self, monkeypatch):
        """__main__.build_report on minimal settings produces all three
        sections (patched to tiny workloads for speed)."""
        import repro.experiments.__main__ as main_module

        def tiny_figure6(seed=0):
            return figure6(
                scales={"tiny": 0.3},
                strategies=[strategy_by_name("BU")],
                seed=seed,
            )

        def tiny_figure7(seed=0, runs=1):
            return figure7(
                configs=(SyntheticConfig(2, 2, 10, 6),),
                goal_sizes=(0,),
                runs=1,
                strategies=[strategy_by_name("BU")],
                seed=seed,
            )

        monkeypatch.setattr(main_module, "figure6", tiny_figure6)
        monkeypatch.setattr(main_module, "figure7", tiny_figure7)
        report = main_module.build_report(runs=1, seed=0)
        assert "## TPC-H experiments (Figure 6)" in report
        assert "## Synthetic experiments (Figure 7)" in report
        assert "## Summary (Table 1)" in report
