"""Flat-buffer round-trip properties for the shared-memory index plane.

The attach path must hand back an index *bit-for-bit identical* to the
one the publisher built — same classes, representatives, ⊆-maximal set,
packed arrays — because every strategy's tie-breaking is deterministic
over exactly that state.  ``assert_identical`` (shared with the sharded
build pipeline's tests) pins that contract across Ω widths straddling
the one-word boundary and across degenerate shapes.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import index_shm
from repro.core.signatures import SignatureIndex

from ..conftest import make_random_instance
from .test_index_build import assert_identical


def roundtrip(index: SignatureIndex) -> SignatureIndex:
    """Serialize into a plain buffer and read back over it."""
    size = index_shm.required_bytes(len(index), index.n_words)
    buffer = bytearray(size)
    written = index_shm.write_index(index, buffer)
    assert written == size
    return index_shm.read_index(buffer, index.instance)


class TestFlatBufferRoundTrip:
    @pytest.mark.parametrize(
        "left_arity,right_arity",
        [(7, 9), (8, 8), (5, 13)],  # |Ω| = 63 / 64 / 65
    )
    def test_round_trip_across_word_boundary(
        self, left_arity: int, right_arity: int
    ):
        rng = random.Random(left_arity * 100 + right_arity)
        for _ in range(3):
            instance = make_random_instance(
                rng, left_arity, right_arity, rows=9, values=3
            )
            index = SignatureIndex(instance)
            restored = roundtrip(index)
            assert_identical(restored, index)

    def test_restored_views_are_read_only(self):
        rng = random.Random(7)
        instance = make_random_instance(rng, 2, 3, rows=8, values=3)
        restored = roundtrip(SignatureIndex(instance))
        assert not restored.packed_masks.flags.writeable
        assert not restored.count_array.flags.writeable
        with pytest.raises(ValueError):
            restored.count_array[0] = 99

    def test_empty_index(self):
        from repro import Instance, Relation

        left = Relation.build("R", ["A1", "A2"])
        right = Relation.build("P", ["B1"], [(1,), (2,)])
        index = SignatureIndex(Instance(left, right))
        assert len(index) == 0
        restored = roundtrip(index)
        assert_identical(restored, index)

    def test_single_class_index(self):
        from repro import Instance, Relation

        # One product tuple -> exactly one signature class.
        left = Relation.build("R", ["A1"], [(1,)])
        right = Relation.build("P", ["B1"], [(1,)])
        index = SignatureIndex(Instance(left, right))
        assert len(index) == 1
        restored = roundtrip(index)
        assert_identical(restored, index)

    def test_sampled_index_via_from_classes(self):
        """Indexes assembled by ``from_classes`` (approximate/sampled)
        serialize too: representatives are real product tuples, so the
        ordinal derivation still applies."""
        rng = random.Random(23)
        instance = make_random_instance(rng, 3, 3, rows=10, values=3)
        full = SignatureIndex(instance)
        sampled_classes = tuple(
            type(cls)(new_id, cls.mask, cls.count, cls.representative)
            for new_id, cls in enumerate(full.classes[::2])
        )
        sampled = SignatureIndex.from_classes(instance, sampled_classes)
        restored = roundtrip(sampled)
        assert_identical(restored, sampled)

    def test_paper_example(self, example21):
        index = SignatureIndex(example21.instance, backend="python")
        restored = roundtrip(index)
        assert_identical(restored, index)
        # The reconstruction is usable, not just equal: mask lookup and
        # predicate decoding run over the restored views.
        for cls in index.classes:
            assert restored.class_of_mask(cls.mask).class_id == cls.class_id

    def test_ordinals_recover_exact_representatives(self):
        rng = random.Random(5)
        instance = make_random_instance(rng, 2, 2, rows=12, values=2)
        index = SignatureIndex(instance)
        ordinals = index_shm.class_ordinals(index)
        n_right = len(instance.right)
        for cls, ordinal in zip(index.classes, ordinals):
            left_index, right_index = divmod(ordinal, n_right)
            assert instance.left.rows[left_index] == cls.representative[0]
            assert instance.right.rows[right_index] == cls.representative[1]


class TestValidation:
    def test_bad_magic(self):
        rng = random.Random(1)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        index = SignatureIndex(instance)
        buffer = bytearray(index_shm.required_bytes(len(index), index.n_words))
        index_shm.write_index(index, buffer)
        buffer[0] ^= 0xFF
        with pytest.raises(index_shm.ShmIndexError, match="magic"):
            index_shm.read_index(buffer, instance)

    def test_omega_mismatch(self):
        rng = random.Random(2)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        other = make_random_instance(rng, 2, 3, rows=6, values=2)
        index = SignatureIndex(instance)
        buffer = bytearray(index_shm.required_bytes(len(index), index.n_words))
        index_shm.write_index(index, buffer)
        with pytest.raises(index_shm.ShmIndexError, match="Ω"):
            index_shm.read_index(buffer, other)

    def test_too_small_buffer(self):
        rng = random.Random(3)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        index = SignatureIndex(instance)
        with pytest.raises(index_shm.ShmIndexError, match="holds"):
            index_shm.write_index(index, bytearray(8))
        with pytest.raises(index_shm.ShmIndexError, match="header"):
            index_shm.read_index(bytearray(8), instance)

    def test_truncated_segment(self):
        rng = random.Random(4)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        index = SignatureIndex(instance)
        size = index_shm.required_bytes(len(index), index.n_words)
        buffer = bytearray(size)
        index_shm.write_index(index, buffer)
        with pytest.raises(index_shm.ShmIndexError, match="truncated"):
            index_shm.read_index(buffer[: size - 16], instance)


@pytest.mark.skipif(
    not index_shm.shared_memory_available(),
    reason="POSIX shared memory unavailable",
)
class TestSharedMemorySegments:
    def test_publish_attach_unlink(self):
        rng = random.Random(11)
        instance = make_random_instance(rng, 3, 3, rows=10, values=3)
        index = SignatureIndex(instance)
        name = f"{index_shm.SEGMENT_PREFIX}test_pub"
        index_shm.unlink_segment(name)
        shm = index_shm.publish_index(index, name)
        try:
            attached_shm, attached = index_shm.attach_index(name, instance)
            try:
                assert_identical(attached, index)
                # Zero-copy: the attached arrays live in the mapping.
                assert attached.packed_masks.base is not None
            finally:
                del attached
                index_shm.close_segment(attached_shm)
        finally:
            index_shm.close_segment(shm)
            assert index_shm.unlink_segment(name)
        assert not index_shm.unlink_segment(name)
        with pytest.raises(FileNotFoundError):
            index_shm.attach_segment(name)

    def test_create_collision_raises(self):
        name = f"{index_shm.SEGMENT_PREFIX}test_dup"
        index_shm.unlink_segment(name)
        shm = index_shm.create_segment(name, 64)
        try:
            with pytest.raises(FileExistsError):
                index_shm.create_segment(name, 64)
        finally:
            index_shm.close_segment(shm)
            index_shm.unlink_segment(name)

    def test_segment_rounds_up_but_reads_exact(self):
        """shm sizes round to page granularity; the header's
        ``total_bytes`` keeps the read honest."""
        rng = random.Random(12)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        index = SignatureIndex(instance)
        name = f"{index_shm.SEGMENT_PREFIX}test_round"
        index_shm.unlink_segment(name)
        shm = index_shm.publish_index(index, name)
        try:
            assert shm.size >= index_shm.required_bytes(
                len(index), index.n_words
            )
            restored = index_shm.read_index(shm.buf, instance)
            assert_identical(restored, index)
            assert np.array_equal(restored.count_array, index.count_array)
        finally:
            index_shm.close_segment(shm)
            index_shm.unlink_segment(name)
