"""Property-based tests (hypothesis) for the core machinery.

Random small instances + random consistent samples; the PTIME lemma-based
implementations must agree with the exponential definition-level
references, and all documented invariants must hold.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PerfectOracle,
    Sample,
    SignatureIndex,
    certain_examples,
    certain_negative,
    certain_positive,
    consistent_predicate,
    informative_tuples,
    is_consistent,
    most_specific_for_set,
    most_specific_predicate,
    run_inference,
)
from repro.core.naive import (
    certain_negative_naive,
    certain_positive_naive,
    consistent_set,
    uninformative_examples_naive,
)
from repro.core.strategies import default_strategies
from repro.relational import (
    Instance,
    JoinPredicate,
    Relation,
    equijoin,
    selects,
    semijoin,
)


@st.composite
def instances(draw, max_arity=2, max_rows=4, max_values=3):
    """Small random instances (Ω ≤ 4 keeps the naive references fast)."""
    left_arity = draw(st.integers(1, max_arity))
    right_arity = draw(st.integers(1, max_arity))
    n_left = draw(st.integers(1, max_rows))
    n_right = draw(st.integers(1, max_rows))
    values = st.integers(0, max_values - 1)
    left_rows = draw(
        st.lists(
            st.tuples(*[values] * left_arity),
            min_size=n_left,
            max_size=n_left,
        )
    )
    right_rows = draw(
        st.lists(
            st.tuples(*[values] * right_arity),
            min_size=n_right,
            max_size=n_right,
        )
    )
    left = Relation.build(
        "R", [f"A{i}" for i in range(left_arity)], left_rows
    )
    right = Relation.build(
        "P", [f"B{j}" for j in range(right_arity)], right_rows
    )
    return Instance(left, right)


@st.composite
def instances_with_goal(draw):
    instance = draw(instances())
    omega = instance.omega
    size = draw(st.integers(0, min(2, len(omega))))
    indices = draw(
        st.lists(
            st.integers(0, len(omega) - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    goal = JoinPredicate(omega[i] for i in indices)
    return instance, goal


@st.composite
def instances_with_consistent_sample(draw):
    instance, goal = draw(instances_with_goal())
    oracle = PerfectOracle(instance, goal)
    tuples = list(instance.cartesian_product())
    how_many = draw(st.integers(0, min(4, len(tuples))))
    indices = draw(
        st.lists(
            st.integers(0, len(tuples) - 1),
            min_size=how_many,
            max_size=how_many,
            unique=True,
        )
    )
    sample = Sample()
    for i in indices:
        sample.label_tuple(tuples[i], oracle.label(tuples[i]))
    return instance, sample


@settings(max_examples=60, deadline=None)
@given(instances())
def test_t_of_tuple_is_most_specific_selector(instance):
    """θ selects t iff θ ⊆ T(t), for every tuple and random θ."""
    omega = instance.omega
    rng = random.Random(0)
    for t in instance.cartesian_product():
        t_of_t = most_specific_predicate(instance, t)
        for _ in range(5):
            theta = JoinPredicate(
                rng.sample(omega, rng.randrange(len(omega) + 1))
            )
            assert selects(instance, theta, t) == (theta <= t_of_t)


@settings(max_examples=60, deadline=None)
@given(instances())
def test_equijoin_antimonotone_in_theta(instance):
    omega = list(instance.omega)
    rng = random.Random(1)
    small = JoinPredicate(rng.sample(omega, rng.randrange(len(omega))))
    extra = rng.sample(omega, rng.randrange(len(omega) + 1))
    big = small | JoinPredicate(extra)
    assert set(equijoin(instance, big)) <= set(equijoin(instance, small))
    assert set(semijoin(instance, big)) <= set(semijoin(instance, small))


@settings(max_examples=40, deadline=None)
@given(instances_with_consistent_sample())
def test_consistency_check_matches_enumeration(data):
    instance, sample = data
    assert is_consistent(instance, sample) == bool(
        consistent_set(instance, sample)
    )


@settings(max_examples=40, deadline=None)
@given(instances_with_consistent_sample())
def test_consistent_predicate_is_maximal_of_consistent_set(data):
    instance, sample = data
    theta = consistent_predicate(instance, sample)
    candidates = consistent_set(instance, sample)
    assert theta is not None  # sample built from an honest oracle
    assert theta in candidates
    assert all(candidate <= theta for candidate in candidates)


@settings(max_examples=30, deadline=None)
@given(instances_with_consistent_sample())
def test_lemma_33_34_match_naive_definitions(data):
    instance, sample = data
    assert certain_positive(instance, sample) == certain_positive_naive(
        instance, sample
    )
    assert certain_negative(instance, sample) == certain_negative_naive(
        instance, sample
    )


@settings(max_examples=20, deadline=None)
@given(instances_with_consistent_sample())
def test_lemma_32_uninformative_equals_certain(data):
    instance, sample = data
    assert uninformative_examples_naive(instance, sample) == (
        certain_examples(instance, sample)
    )


@settings(max_examples=30, deadline=None)
@given(instances_with_consistent_sample())
def test_certain_sets_disjoint_for_consistent_samples(data):
    instance, sample = data
    positive = certain_positive(instance, sample)
    negative = certain_negative(instance, sample)
    assert not positive & negative


@settings(max_examples=30, deadline=None)
@given(instances_with_consistent_sample())
def test_informative_tuples_complement_certain(data):
    instance, sample = data
    informative = set(informative_tuples(instance, sample))
    certain = certain_positive(instance, sample) | certain_negative(
        instance, sample
    )
    labeled = {t for t in instance.cartesian_product() if sample.is_labeled(t)}
    everything = set(instance.cartesian_product())
    assert informative == everything - certain - labeled


@settings(max_examples=25, deadline=None)
@given(instances_with_goal())
def test_every_strategy_recovers_an_equivalent_predicate(data):
    instance, goal = data
    index = SignatureIndex(instance, backend="python")
    for strategy in default_strategies():
        result = run_inference(
            instance,
            strategy,
            PerfectOracle(instance, goal),
            index=index,
            seed=7,
        )
        assert result.matches_goal(instance, goal), strategy.name
        # Interactions never exceed the number of signature classes.
        assert result.interactions <= len(index)


@settings(max_examples=25, deadline=None)
@given(instances_with_goal())
def test_inferred_predicate_consistent_with_full_goal_labeling(data):
    """The returned T(S+) selects exactly the goal's join result."""
    instance, goal = data
    result = run_inference(
        instance,
        default_strategies()[2],  # TD
        PerfectOracle(instance, goal),
        seed=3,
    )
    assert set(equijoin(instance, result.predicate)) == set(
        equijoin(instance, goal)
    )


@settings(max_examples=40, deadline=None)
@given(instances())
def test_t_for_set_is_intersection(instance):
    tuples = list(instance.cartesian_product())
    whole = most_specific_for_set(instance, tuples)
    for t in tuples:
        assert whole <= most_specific_predicate(instance, t)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_signature_index_partitions_product(instance):
    index = SignatureIndex(instance, backend="python")
    assert index.total_weight == instance.cartesian_size
    numpy_index = SignatureIndex(instance, backend="numpy")
    assert [(c.mask, c.count) for c in index] == [
        (c.mask, c.count) for c in numpy_index
    ]
