"""Session/strategy invariants on random instances (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InferenceSession,
    PerfectOracle,
    SignatureIndex,
    consistent_predicate,
    default_strategies,
    is_consistent,
    most_specific_for_set,
)
from repro.core.strategies import VersionSpaceStrategy
from repro.relational import JoinPredicate

from ..conftest import make_random_instance


@st.composite
def inference_setups(draw):
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    instance = make_random_instance(
        rng,
        left_arity=rng.randrange(1, 3),
        right_arity=rng.randrange(1, 4),
        rows=rng.randrange(2, 7),
        values=rng.randrange(2, 4),
    )
    omega = instance.omega
    goal = JoinPredicate(
        rng.sample(omega, rng.randrange(0, min(3, len(omega)) + 1))
    )
    strategy_pool = default_strategies() + [VersionSpaceStrategy()]
    strategy = strategy_pool[draw(st.integers(0, len(strategy_pool) - 1))]
    return instance, goal, strategy, seed


@settings(max_examples=50, deadline=None)
@given(inference_setups())
def test_sample_stays_consistent_throughout(setup):
    """§4.1: asking informative tuples only keeps the sample consistent
    after every single step."""
    instance, goal, strategy, seed = setup
    session = InferenceSession(
        instance, strategy, PerfectOracle(instance, goal), seed=seed
    )
    while session.state.has_informative():
        session.step()
        assert is_consistent(instance, session.sample)


@settings(max_examples=50, deadline=None)
@given(inference_setups())
def test_informative_count_strictly_decreases(setup):
    """Each question makes at least its own class certain, so the number
    of informative classes strictly decreases — termination in ≤ |N|."""
    instance, goal, strategy, seed = setup
    session = InferenceSession(
        instance, strategy, PerfectOracle(instance, goal), seed=seed
    )
    previous = len(session.state.informative_class_ids())
    while session.state.has_informative():
        session.step()
        current = len(session.state.informative_class_ids())
        assert current < previous
        previous = current


@settings(max_examples=50, deadline=None)
@given(inference_setups())
def test_result_is_t_of_s_plus(setup):
    """Algorithm 1 returns exactly T(S+) — the most specific consistent
    predicate for the collected sample."""
    instance, goal, strategy, seed = setup
    session = InferenceSession(
        instance, strategy, PerfectOracle(instance, goal), seed=seed
    )
    result = session.run()
    assert result.predicate == most_specific_for_set(
        instance, session.sample.positives
    )
    assert result.predicate == consistent_predicate(
        instance, session.sample
    )


@settings(max_examples=50, deadline=None)
@given(inference_setups())
def test_halt_condition_gamma_is_reached(setup):
    """After the run no tuple of the product is informative (Γ)."""
    instance, goal, strategy, seed = setup
    session = InferenceSession(
        instance, strategy, PerfectOracle(instance, goal), seed=seed
    )
    session.run()
    assert not session.state.has_informative()


@settings(max_examples=50, deadline=None)
@given(inference_setups())
def test_interactions_bounded_by_class_count(setup):
    instance, goal, strategy, seed = setup
    index = SignatureIndex(instance, backend="python")
    session = InferenceSession(
        instance,
        strategy,
        PerfectOracle(instance, goal),
        index=index,
        seed=seed,
    )
    result = session.run()
    assert 0 <= result.interactions <= len(index)
