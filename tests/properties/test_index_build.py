"""Property tests: the sharded build pipeline is bit-for-bit identical
to the monolithic constructions.

The contract under test (ISSUE 3's tentpole): for every shard size,
worker count, and source backend,

    sharded build ≡ monolithic NumPy build ≡ pure-Python reference

— same class ids, masks, counts, representatives, maximal set, and total
weight.  Covered explicitly: shard counts {1, 2, 7, |R|}, Ω widths
straddling the 64-bit word boundary (63/64/65), empty shards, empty
relations, and single-row relations.
"""

from __future__ import annotations

import csv
import io
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexBuilder, SignatureIndex, build_signature_index
from repro.core.index_build import (
    ShardSignatures,
    index_from_signatures,
    merge_shards,
    shard_signatures,
    signature_histogram,
)
from repro.core.signatures import ValueCodec
from repro.relational import (
    CsvSource,
    Instance,
    InstanceSource,
    Relation,
    SqliteSource,
    as_signature_source,
)
from repro.relational import sqlite_backend

from ..conftest import make_random_instance


def assert_identical(built: SignatureIndex, reference: SignatureIndex):
    """Bit-for-bit equality of two indexes over the same data."""
    assert [
        (c.class_id, c.mask, c.count, c.representative) for c in built
    ] == [
        (c.class_id, c.mask, c.count, c.representative) for c in reference
    ]
    assert built.maximal_class_ids == reference.maximal_class_ids
    assert built.total_weight == reference.total_weight
    assert built.omega_mask == reference.omega_mask
    assert built.n_words == reference.n_words
    assert np.array_equal(built.packed_masks, reference.packed_masks)
    assert np.array_equal(built.count_array, reference.count_array)


def shard_row_choices(n_rows: int) -> list:
    """Shard sizes realising shard counts {1, 2, 7, |R|} (plus auto)."""
    counts = {1, 2, 7, max(1, n_rows)}
    sizes: list = [None]
    for count in sorted(counts):
        sizes.append(max(1, -(-n_rows // count)) if n_rows else 1)
    return sorted({s for s in sizes if s is not None}) + [None]


class TestShardedEqualsMonolithic:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_all_shard_counts_and_workers(self, data):
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        instance = make_random_instance(
            rng,
            left_arity=data.draw(st.integers(1, 3)),
            right_arity=data.draw(st.integers(1, 3)),
            rows=data.draw(st.integers(1, 30)),
            values=data.draw(st.integers(1, 6)),
        )
        reference = SignatureIndex(instance, backend="python")
        monolithic = SignatureIndex(instance, backend="numpy")
        assert_identical(monolithic, reference)
        for shard_rows in shard_row_choices(len(instance.left)):
            for workers in (1, 2):
                built = IndexBuilder(
                    shard_rows=shard_rows, workers=workers
                ).build(instance)
                assert_identical(built, reference)

    @pytest.mark.parametrize(
        "left_arity,right_arity",
        [(7, 9), (8, 8), (5, 13)],  # |Ω| = 63 / 64 / 65
    )
    def test_omega_straddles_word_boundary(self, left_arity, right_arity):
        rng = random.Random(left_arity * 100 + right_arity)
        instance = make_random_instance(
            rng, left_arity, right_arity, rows=9, values=3
        )
        assert len(instance.omega) in (63, 64, 65)
        reference = SignatureIndex(instance, backend="python")
        for shard_rows in (None, 1, 4):
            built = IndexBuilder(shard_rows=shard_rows, workers=2).build(
                instance
            )
            assert_identical(built, reference)

    def test_empty_relations(self):
        for left_rows, right_rows in (
            ((), ((1,),)),
            (((1,),), ()),
            ((), ()),
        ):
            instance = Instance(
                Relation.build("R", ["A1"], left_rows),
                Relation.build("P", ["B1"], right_rows),
            )
            reference = SignatureIndex(instance, backend="python")
            for shard_rows in (None, 1, 3):
                built = IndexBuilder(shard_rows=shard_rows, workers=2).build(
                    instance
                )
                assert_identical(built, reference)
                assert len(built) == 0

    def test_single_row_relations(self):
        instance = Instance(
            Relation.build("R", ["A1", "A2"], [(1, 2)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        reference = SignatureIndex(instance, backend="python")
        for shard_rows in (None, 1, 5):
            assert_identical(
                IndexBuilder(shard_rows=shard_rows).build(instance),
                reference,
            )

    def test_build_signature_index_convenience(self):
        rng = random.Random(5)
        instance = make_random_instance(rng, 2, 2, rows=12, values=4)
        assert_identical(
            build_signature_index(instance, shard_rows=5, workers=2),
            SignatureIndex(instance),
        )


class TestMergeInvariants:
    def test_merge_of_empty_shard_list(self):
        merged = merge_shards([], n_words=2)
        assert len(merged) == 0
        assert signature_histogram(merged) == {}

    def test_explicit_empty_shards_are_transparent(self):
        """Interleaving genuinely empty shards never changes the result."""
        rng = random.Random(11)
        instance = make_random_instance(rng, 2, 2, rows=10, values=3)
        source = as_signature_source(instance)
        codec = ValueCodec()
        right_rows = source.right_rows()
        right_codes = codec.encode_rows(right_rows, instance.right.arity)
        shards = [ShardSignatures.empty(1)]
        for start, rows in source.iter_left_blocks(3):
            shards.append(
                shard_signatures(
                    codec.encode_rows(rows, instance.left.arity),
                    right_codes,
                    rows,
                    right_rows,
                    start,
                )
            )
            shards.append(ShardSignatures.empty(1))
        merged = merge_shards(shards, n_words=1)
        built = index_from_signatures(
            instance, signature_histogram(merged)
        )
        assert_identical(built, SignatureIndex(instance, backend="python"))

    def test_merge_is_shard_order_independent_except_representatives(self):
        """Counts/masks never depend on shard order; representatives are
        pinned by the *global* minimal ordinal, so even a shuffled merge
        returns the canonical representative."""
        rng = random.Random(23)
        instance = make_random_instance(rng, 2, 3, rows=14, values=2)
        source = as_signature_source(instance)
        codec = ValueCodec()
        right_rows = source.right_rows()
        right_codes = codec.encode_rows(right_rows, instance.right.arity)
        shards = [
            shard_signatures(
                codec.encode_rows(rows, instance.left.arity),
                right_codes,
                rows,
                right_rows,
                start,
            )
            for start, rows in source.iter_left_blocks(4)
        ]
        rng.shuffle(shards)
        merged = merge_shards(shards, n_words=1)
        built = index_from_signatures(
            instance, signature_histogram(merged)
        )
        assert_identical(built, SignatureIndex(instance, backend="python"))


class TestSourceBackendsAgree:
    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_csv_stream_equals_monolithic(self, data):
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        rows = data.draw(st.integers(0, 25))
        left = Relation.build(
            "R",
            ["A1", "A2"],
            [
                (str(rng.randrange(4)), str(rng.randrange(3)))
                for _ in range(rows)
            ],
        )
        right = Relation.build(
            "P",
            ["B1", "B2", "B3"],
            [
                tuple(str(rng.randrange(4)) for _ in range(3))
                for _ in range(max(1, rows // 2))
            ],
        )
        instance = Instance(left, right)

        def to_csv(relation):
            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow([a.name for a in relation.schema])
            writer.writerows(relation.rows)
            return buffer.getvalue()

        source = CsvSource.from_text(
            to_csv(left), to_csv(right), "R", "P"
        )
        built = IndexBuilder(
            shard_rows=data.draw(st.integers(1, 10)), workers=2
        ).build(source)
        assert_identical(built, SignatureIndex(instance, backend="python"))

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_sqlite_pushdown_equals_monolithic(self, data):
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        rows = data.draw(st.integers(0, 20))
        values: list = [0, 1, 2, "x", "y", "0"]
        left = Relation.build(
            "R",
            ["A1", "A2"],
            [
                (rng.choice(values), rng.choice(values))
                for _ in range(rows)
            ],
        )
        right = Relation.build(
            "P",
            ["B1", "B2"],
            [
                (rng.choice(values), rng.choice(values))
                for _ in range(max(1, rows // 2))
            ],
        )
        conn = sqlite_backend.connect_memory()
        sqlite_backend.store_instance(conn, Instance(left, right))
        source = SqliteSource(conn, "R", "P")
        loaded = source.instance()
        reference = SignatureIndex(loaded, backend="python")
        shard_rows = data.draw(st.integers(1, 8))
        assert_identical(
            IndexBuilder(shard_rows=shard_rows).build(source), reference
        )
        # The kernel fallback over the same SQLite data must agree too.
        fallback = SqliteSource(conn, "R", "P")
        fallback.supports_pushdown = False
        assert_identical(
            IndexBuilder(shard_rows=shard_rows, workers=2).build(fallback),
            reference,
        )

    def test_sqlite_pushdown_wide_omega(self):
        """SQL mask words (62-bit) reassemble correctly past one word."""
        rng = random.Random(7)
        instance = make_random_instance(
            rng, left_arity=8, right_arity=9, rows=5, values=2
        )
        assert len(instance.omega) == 72
        conn = sqlite_backend.connect_memory()
        sqlite_backend.store_instance(conn, instance)
        source = SqliteSource(conn, "R", "P")
        assert_identical(
            IndexBuilder(shard_rows=2).build(source),
            SignatureIndex(source.instance(), backend="python"),
        )

    def test_sqlite_nulls_match_python_none_semantics(self):
        """Pre-existing tables may carry NULLs (store_relation refuses
        to write them): SQL `IS` makes NULL IS NULL true, matching
        Python's None == None in the kernel build over the loaded
        instance."""
        conn = sqlite_backend.connect_memory()
        conn.execute('CREATE TABLE "L" ("A1")')
        conn.executemany('INSERT INTO "L" VALUES (?)', [(None,), (1,)])
        conn.execute('CREATE TABLE "Q" ("B1")')
        conn.executemany('INSERT INTO "Q" VALUES (?)', [(None,), (2,)])
        conn.commit()
        source = SqliteSource(conn, "L", "Q")
        reference = SignatureIndex(source.instance(), backend="python")
        assert {cls.mask: cls.count for cls in reference} == {0: 3, 1: 1}
        assert_identical(IndexBuilder(shard_rows=1).build(source), reference)

    def test_sqlite_typed_columns_match_python_equality(self):
        """Declared column types must not leak into signature equality:
        without affinity stripping, comparing a TEXT column to an
        INTEGER column makes SQLite coerce ('1' = 1 → true) where
        Python keeps '1' != 1."""
        conn = sqlite_backend.connect_memory()
        conn.execute('CREATE TABLE "L" ("A1" TEXT)')
        conn.executemany('INSERT INTO "L" VALUES (?)', [("1",), ("2",)])
        conn.execute('CREATE TABLE "Q" ("B1" INTEGER)')
        conn.executemany('INSERT INTO "Q" VALUES (?)', [(1,), (3,)])
        conn.commit()
        source = SqliteSource(conn, "L", "Q")
        loaded = source.instance()
        assert loaded.left.rows == (("1",), ("2",))
        assert loaded.right.rows == ((1,), (3,))
        reference = SignatureIndex(loaded, backend="python")
        assert {cls.mask: cls.count for cls in reference} == {0: 4}
        assert_identical(IndexBuilder(shard_rows=1).build(source), reference)

    def test_sqlite_collated_columns_dedup_like_python(self):
        """A NOCASE collation would merge 'a'/'A' in SQL grouping;
        Python keeps them distinct — grouping is collation-stripped."""
        conn = sqlite_backend.connect_memory()
        conn.execute('CREATE TABLE "L" ("A1" TEXT COLLATE NOCASE)')
        conn.executemany(
            'INSERT INTO "L" VALUES (?)', [("a",), ("A",), ("a",)]
        )
        conn.execute('CREATE TABLE "Q" ("B1")')
        conn.executemany('INSERT INTO "Q" VALUES (?)', [("a",), ("b",)])
        conn.commit()
        source = SqliteSource(conn, "L", "Q")
        assert source.left_count() == 2  # 'a' and 'A', not merged
        loaded = source.instance()
        reference = SignatureIndex(loaded, backend="python")
        assert_identical(IndexBuilder(shard_rows=1).build(source), reference)

    def test_sqlite_reserved_looking_column_names(self):
        """Attributes named after generated SQL identifiers (ord, w0,
        first_row) must bind the data column, not the internals."""
        conn = sqlite_backend.connect_memory()
        conn.execute('CREATE TABLE "L" ("ord", "w0", "first_row")')
        conn.executemany(
            'INSERT INTO "L" VALUES (?, ?, ?)',
            [(10, 1, 5), (20, 2, 5), (10, 1, 5)],
        )
        conn.execute('CREATE TABLE "Q" ("B1", "B2")')
        conn.executemany(
            'INSERT INTO "Q" VALUES (?, ?)', [(10, 1), (99, 5)]
        )
        conn.commit()
        source = SqliteSource(conn, "L", "Q")
        assert source.supports_pushdown
        reference = SignatureIndex(source.instance(), backend="python")
        assert len(reference) > 1  # the data actually discriminates
        assert_identical(
            IndexBuilder(shard_rows=1).build(source), reference
        )

    def test_sqlite_rowid_column_falls_back_to_kernel(self):
        """An explicit column named rowid shadows the implicit one — no
        reliable first-occurrence ordinals, so no push-down."""
        conn = sqlite_backend.connect_memory()
        conn.execute('CREATE TABLE "L" ("rowid", "A2")')
        conn.executemany(
            'INSERT INTO "L" VALUES (?, ?)', [(7, 1), (3, 2)]
        )
        conn.execute('CREATE TABLE "Q" ("B1")')
        conn.executemany('INSERT INTO "Q" VALUES (?)', [(1,), (3,)])
        conn.commit()
        source = SqliteSource(conn, "L", "Q")
        assert not source.supports_pushdown
        assert_identical(
            IndexBuilder(shard_rows=1).build(source),
            SignatureIndex(source.instance(), backend="python"),
        )

    def test_sqlite_duplicates_collapse_like_python(self):
        """Duplicate and cross-type-equal rows (1 vs 1.0) dedup the same
        way in SQL as under Python set semantics."""
        conn = sqlite_backend.connect_memory()
        conn.execute('CREATE TABLE "L" ("A1", "A2")')
        conn.executemany(
            'INSERT INTO "L" VALUES (?, ?)',
            [(1, "x"), (1.0, "x"), (2, "y"), (1, "x"), ("1", "x")],
        )
        conn.execute('CREATE TABLE "Q" ("B1")')
        conn.executemany(
            'INSERT INTO "Q" VALUES (?)', [(1,), ("x",), (2,), (1.0,)]
        )
        conn.commit()
        source = SqliteSource(conn, "L", "Q")
        loaded = source.instance()
        assert len(loaded.left) == 3  # (1,'x'), (2,'y'), ('1','x')
        assert_identical(
            IndexBuilder(shard_rows=1).build(source),
            SignatureIndex(loaded, backend="python"),
        )


class TestProgressAndRouting:
    def test_progress_reports_every_shard(self):
        rng = random.Random(3)
        instance = make_random_instance(rng, 2, 2, rows=10, values=5)
        n_rows = len(instance.left)
        total = -(-n_rows // 3)
        seen = []
        IndexBuilder(shard_rows=3).build(
            instance, progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(done, total) for done in range(1, total + 1)]

    def test_auto_sharding_follows_workers(self):
        rng = random.Random(4)
        instance = make_random_instance(rng, 2, 2, rows=10, values=5)
        seen = []
        built = IndexBuilder(workers=2).build(
            instance, progress=lambda done, total: seen.append((done, total))
        )
        assert seen == [(1, 2), (2, 2)]
        assert_identical(built, SignatureIndex(instance))

    def test_sampled_index_routes_through_pipeline(self):
        """`index_from_signatures` canonicalises exactly like the
        constructor (ordering, ids, maximality)."""
        rng = random.Random(9)
        instance = make_random_instance(rng, 2, 2, rows=12, values=3)
        reference = SignatureIndex(instance, backend="python")
        found = {
            cls.mask: (cls.count, cls.representative) for cls in reference
        }
        assert_identical(
            index_from_signatures(instance, found), reference
        )

    def test_invalid_builder_parameters(self):
        with pytest.raises(ValueError):
            IndexBuilder(shard_rows=0)
        with pytest.raises(ValueError):
            IndexBuilder(workers=0)
        with pytest.raises(TypeError):
            IndexBuilder().build("not a source")

    def test_instance_source_roundtrip(self):
        rng = random.Random(1)
        instance = make_random_instance(rng, 2, 2, rows=6, values=3)
        source = InstanceSource(instance)
        assert source.instance() is instance
        assert source.left_count() == len(instance.left)
        blocks = list(source.iter_left_blocks(4))
        assert [start for start, _ in blocks] == [0, 4]
        assert sum(len(rows) for _, rows in blocks) == len(instance.left)
