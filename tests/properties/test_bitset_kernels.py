"""Property tests: packed bitset kernels and the incremental state.

The array-native hot path (``core/bitset.py``, the incremental
``InferenceState``, the batched lookahead) must be bit-for-bit equivalent
to the int-mask formulas and to the pure-Python references in
``certain.py`` / ``entropy.py`` — including Ω wider than one 64-bit word.
"""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Label,
    Sample,
    SignatureIndex,
    entropy_k_of_class,
    informative_tuples,
)
from repro.core import bitset
from repro.core.fast_lookahead import entropies_for_informative
from repro.core.state import InferenceState
from repro.relational import Instance, Relation

from ..conftest import make_random_instance


# --- raw kernels vs int-mask arithmetic ---------------------------------


@st.composite
def mask_sets(draw):
    """A set of random masks over a random-width Ω (1..150 bits)."""
    n_bits = draw(st.integers(1, 150))
    n_masks = draw(st.integers(1, 12))
    masks = draw(
        st.lists(
            st.integers(0, (1 << n_bits) - 1),
            min_size=n_masks,
            max_size=n_masks,
        )
    )
    return n_bits, masks


class TestKernels:
    @settings(max_examples=80, deadline=None)
    @given(mask_sets())
    def test_pack_unpack_roundtrip(self, data):
        n_bits, masks = data
        n_words = bitset.words_needed(n_bits)
        packed = bitset.pack_masks(masks, n_words)
        assert packed.shape == (len(masks), n_words)
        assert [bitset.unpack_row(row) for row in packed] == masks
        single = bitset.pack_mask(masks[0], n_words)
        assert bitset.unpack_row(single) == masks[0]

    @settings(max_examples=80, deadline=None)
    @given(mask_sets())
    def test_popcounts(self, data):
        n_bits, masks = data
        packed = bitset.pack_masks(masks, bitset.words_needed(n_bits))
        assert list(bitset.popcounts(packed)) == [
            mask.bit_count() for mask in masks
        ]

    @settings(max_examples=80, deadline=None)
    @given(mask_sets(), st.integers(0, 2**150))
    def test_subset_kernels(self, data, other):
        n_bits, masks = data
        other &= (1 << n_bits) - 1
        n_words = bitset.words_needed(n_bits)
        packed = bitset.pack_masks(masks, n_words)
        row = bitset.pack_mask(other, n_words)
        assert list(bitset.subset_of_row(packed, row)) == [
            mask & ~other == 0 for mask in masks
        ]
        assert list(bitset.rows_subset_of(row, packed)) == [
            other & ~mask == 0 for mask in masks
        ]
        assert bitset.pairwise_subset(packed, packed).tolist() == [
            [a & ~b == 0 for b in masks] for a in masks
        ]

    @settings(max_examples=80, deadline=None)
    @given(mask_sets(), mask_sets())
    def test_subset_of_any(self, data, other_data):
        n_bits, masks = data
        width = max(n_bits, other_data[0])
        others = other_data[1]
        n_words = bitset.words_needed(width)
        packed = bitset.pack_masks(masks, n_words)
        other_packed = bitset.pack_masks(others, n_words)
        assert list(bitset.subset_of_any(packed, other_packed)) == [
            any(mask & ~other == 0 for other in others) for mask in masks
        ]
        empty = np.empty((0, n_words), dtype=np.uint64)
        assert not bitset.subset_of_any(packed, empty).any()

    @settings(max_examples=60, deadline=None)
    @given(mask_sets(), st.integers(0, 2**150), mask_sets())
    def test_certain_rows(self, data, t_plus, neg_data):
        n_bits, masks = data
        width = max(n_bits, neg_data[0])
        t_plus &= (1 << width) - 1
        negatives = neg_data[1]
        n_words = bitset.words_needed(width)
        packed = bitset.pack_masks(masks, n_words)
        certain = bitset.certain_rows(
            packed,
            bitset.pack_mask(t_plus, n_words),
            bitset.pack_masks(negatives, n_words),
        )
        expected = [
            t_plus & ~mask == 0
            or any(
                (t_plus & mask) & ~negative == 0 for negative in negatives
            )
            for mask in masks
        ]
        assert list(certain) == expected


# --- incremental state vs pure-Python references ------------------------


def _wide_instance(seed: int) -> Instance:
    """A random instance with Ω = 72 > 64 bits (two packed words)."""
    rng = random.Random(seed)
    left = Relation.build(
        "R",
        [f"A{i}" for i in range(9)],
        [tuple(rng.randrange(3) for _ in range(9)) for _ in range(5)],
    )
    right = Relation.build(
        "P",
        [f"B{j}" for j in range(8)],
        [tuple(rng.randrange(3) for _ in range(8)) for _ in range(5)],
    )
    return Instance(left, right)


def _random_instance(seed: int) -> Instance:
    rng = random.Random(seed)
    return make_random_instance(
        rng,
        left_arity=rng.randrange(1, 4),
        right_arity=rng.randrange(1, 4),
        rows=rng.randrange(2, 9),
        values=rng.randrange(2, 5),
    )


def _drive(instance: Instance, seed: int, steps: int):
    """Label random informative classes, checking every state view
    against a freshly rebuilt state and the certain.py reference."""
    rng = random.Random(seed)
    index = SignatureIndex(instance, backend="python")
    state = InferenceState(index)
    sample = Sample()
    for _ in range(steps):
        informative = state.informative_class_ids()

        # (1) incremental informative set == from-scratch recomputation
        fresh = InferenceState(index)
        for class_id, label in (
            (cid, lab)
            for cid, lab in (
                (cid, state.label_of_class(cid))
                for cid in range(len(index))
            )
            if lab is not None
        ):
            fresh.record(class_id, label)
        assert informative == fresh.informative_class_ids()

        # (2) class-level certainty == tuple-level certain.py reference
        reference = {
            index.class_of_tuple(t).class_id
            for t in informative_tuples(instance, sample)
        }
        assert set(informative) == reference

        if not informative:
            break
        class_id = rng.choice(informative)
        label = rng.choice([Label.POSITIVE, Label.NEGATIVE])
        state.record(class_id, label)
        sample.label_tuple(index[class_id].representative, label)
    return state


class TestIncrementalState:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_matches_certain_reference(self, seed):
        _drive(_random_instance(seed), seed, steps=5)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_wide_omega_matches_certain_reference(self, seed):
        instance = _wide_instance(seed)
        assert len(instance.omega) == 72
        _drive(instance, seed, steps=4)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_newly_certain_weight_matches_copy_and_replay(self, seed):
        rng = random.Random(seed)
        state = InferenceState(
            SignatureIndex(_random_instance(seed), backend="python")
        )
        for _ in range(rng.randrange(0, 3)):
            informative = state.informative_class_ids()
            if not informative:
                return
            state.record(
                rng.choice(informative),
                rng.choice([Label.POSITIVE, Label.NEGATIVE]),
            )
        informative = state.informative_class_ids()
        if not informative:
            return
        extra = [
            (cid, rng.choice([Label.POSITIVE, Label.NEGATIVE]))
            for cid in rng.sample(
                informative, min(2, len(informative))
            )
        ]
        # Reference: replay the labels on a copy and diff informative sets.
        simulated = state.copy()
        for class_id, label in extra:
            simulated.record(class_id, label)
        index = state.index
        before = set(state.informative_class_ids())
        after = set(simulated.informative_class_ids())
        expected = sum(
            index[class_id].count for class_id in before - after
        ) - len(extra)
        assert state.newly_certain_weight(extra) == expected


class TestWideOmegaLookahead:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([1, 2]))
    def test_lookahead_matches_reference(self, seed, depth):
        instance = _wide_instance(seed)
        index = SignatureIndex(instance, backend="python")
        state = InferenceState(index)
        rng = random.Random(seed)
        for _ in range(rng.randrange(0, 3)):
            informative = state.informative_class_ids()
            if not informative:
                break
            state.record(
                rng.choice(informative),
                rng.choice([Label.POSITIVE, Label.NEGATIVE]),
            )
        fast = entropies_for_informative(state, depth)
        reference = {
            class_id: entropy_k_of_class(state, class_id, depth)
            for class_id in state.informative_class_ids()
        }
        assert fast == reference

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000), st.sampled_from([1, 2]))
    def test_tiny_chunk_bound_matches_reference(self, seed, depth):
        """Force every chunked/degenerate code path (including the
        |U| ~ |N|² branch of L2S) by shrinking the chunk budget."""
        from repro.core import fast_lookahead

        state = InferenceState(
            SignatureIndex(_random_instance(seed), backend="python")
        )
        rng = random.Random(seed)
        for _ in range(rng.randrange(0, 3)):
            informative = state.informative_class_ids()
            if not informative:
                break
            state.record(
                rng.choice(informative),
                rng.choice([Label.POSITIVE, Label.NEGATIVE]),
            )
        original = fast_lookahead._CHUNK_CELLS
        fast_lookahead._CHUNK_CELLS = 2
        try:
            fast = entropies_for_informative(state, depth)
        finally:
            fast_lookahead._CHUNK_CELLS = original
        reference = {
            class_id: entropy_k_of_class(state, class_id, depth)
            for class_id in state.informative_class_ids()
        }
        assert fast == reference

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_wide_index_backends_agree(self, seed):
        instance = _wide_instance(seed)
        py = SignatureIndex(instance, backend="python")
        np_ = SignatureIndex(instance, backend="numpy")
        assert [(c.mask, c.count, c.representative) for c in py] == [
            (c.mask, c.count, c.representative) for c in np_
        ]
        assert py.maximal_class_ids == np_.maximal_class_ids
        assert py.total_weight == np_.total_weight
