"""Property tests for the semijoin machinery (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Label
from repro.relational import JoinPredicate, semijoin
from repro.sat import is_satisfiable, random_3cnf, solve
from repro.semijoin import (
    SemijoinSample,
    consistent_semijoin_backtracking,
    consistent_semijoin_brute,
    consistent_semijoin_sat,
    extract_valuation,
    is_semijoin_consistent_with,
    reduce_3sat,
    valuation_predicate,
    witness_signatures,
)

from ..conftest import make_random_instance


@st.composite
def semijoin_setups(draw):
    seed = draw(st.integers(0, 10_000))
    rng = random.Random(seed)
    instance = make_random_instance(
        rng,
        left_arity=rng.randrange(1, 3),
        right_arity=rng.randrange(1, 3),
        rows=rng.randrange(2, 6),
        values=rng.randrange(2, 4),
    )
    sample = SemijoinSample()
    for row in instance.left:
        if rng.random() < 0.7:
            sample.label_row(
                row, rng.choice([Label.POSITIVE, Label.NEGATIVE])
            )
    return instance, sample


@settings(max_examples=40, deadline=None)
@given(semijoin_setups())
def test_three_deciders_agree(setup):
    instance, sample = setup
    brute = consistent_semijoin_brute(instance, sample)
    backtracking = consistent_semijoin_backtracking(instance, sample)
    sat = consistent_semijoin_sat(instance, sample)
    assert (brute is None) == (backtracking is None) == (sat is None)
    for theta in (brute, backtracking, sat):
        if theta is not None:
            assert is_semijoin_consistent_with(instance, theta, sample)


@settings(max_examples=40, deadline=None)
@given(semijoin_setups())
def test_witness_signatures_characterise_selection(setup):
    """θ keeps a row iff θ's mask fits inside some witness signature."""
    from repro.core import bits_from_pairs

    instance, _ = setup
    rng = random.Random(7)
    omega = instance.omega
    for row in instance.left:
        witnesses = witness_signatures(instance, row)
        for _ in range(4):
            theta = JoinPredicate(
                rng.sample(omega, rng.randrange(len(omega) + 1))
            )
            mask = bits_from_pairs(instance, theta)
            kept = row in set(semijoin(instance, theta))
            fits = any(mask & ~witness == 0 for witness in witnesses)
            assert kept == fits


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_reduction_equivalence(seed):
    """Theorem 6.1 in both directions on random 3-CNF formulas."""
    rng = random.Random(seed)
    formula = random_3cnf(rng.randrange(3, 5), rng.randrange(1, 6), rng)
    reduction = reduce_3sat(formula)
    satisfiable = is_satisfiable(formula)
    theta = consistent_semijoin_sat(reduction.instance, reduction.sample)
    assert (theta is not None) == satisfiable
    if satisfiable:
        assert formula.evaluate(extract_valuation(reduction, theta))
        model = solve(formula)
        induced = valuation_predicate(reduction, model)
        assert is_semijoin_consistent_with(
            reduction.instance, induced, reduction.sample
        )


@settings(max_examples=40, deadline=None)
@given(semijoin_setups())
def test_positive_only_samples_consistent_iff_witnesses_exist(setup):
    """With no negative examples, consistency holds exactly when every
    positive row has at least one witness (θ = ∅ fails only on rows with
    an empty P side — impossible here — so pick θ per witnesses)."""
    instance, sample = setup
    positives_only = SemijoinSample.of(positives=sample.positives)
    theta = consistent_semijoin_sat(instance, positives_only)
    witnesses_exist = all(
        witness_signatures(instance, row) for row in positives_only.positives
    )
    assert (theta is not None) == witnesses_exist
