"""DPLL / brute-force / WalkSAT agreement and behaviour."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    Clause,
    CnfFormula,
    all_models,
    count_models,
    is_satisfiable,
    planted_3cnf,
    random_3cnf,
    random_k_cnf,
    solve,
    solve_brute,
    walksat,
)


class TestKnownFormulas:
    def test_single_unit(self):
        assert solve(CnfFormula.of([1])) == {1: True}

    def test_contradiction(self):
        assert solve(CnfFormula.of([1], [-1])) is None

    def test_empty_formula_sat(self):
        assert solve(CnfFormula()) == {}

    def test_empty_clause_unsat(self):
        assert solve(CnfFormula([Clause()])) is None

    def test_tautological_clause_ignored(self):
        formula = CnfFormula.of([1, -1])
        assert solve(formula) is not None

    def test_implication_chain(self):
        # x1, x1→x2, x2→x3  (as clauses)
        formula = CnfFormula.of([1], [-1, 2], [-2, 3])
        model = solve(formula)
        assert model == {1: True, 2: True, 3: True}

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: p1 ∨ ... each pigeon somewhere, no sharing.
        formula = CnfFormula.of([1], [2], [-1, -2])
        assert solve(formula) is None

    def test_model_is_total(self):
        # Variable 2 is unconstrained once clause (1) is satisfied.
        formula = CnfFormula.of([1], [2, -2])
        model = solve(formula)
        assert set(model) == {1, 2}


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_formulas(self, seed):
        rng = random.Random(seed)
        n_variables = rng.randrange(1, 8)
        width = min(n_variables, rng.randrange(1, 4))
        formula = random_k_cnf(
            n_variables, rng.randrange(0, 15), width, rng
        )
        assert is_satisfiable(formula) == (
            solve_brute(formula) is not None
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_hypothesis_random_3cnf(self, seed):
        rng = random.Random(seed)
        formula = random_3cnf(
            rng.randrange(3, 7), rng.randrange(0, 18), rng
        )
        dpll = solve(formula)
        brute = solve_brute(formula)
        assert (dpll is None) == (brute is None)
        if dpll is not None:
            assert formula.evaluate(dpll)


class TestCounting:
    def test_count_models_free_variable(self):
        assert count_models(CnfFormula.of([1, 2])) == 3

    def test_all_models_match_count(self):
        formula = CnfFormula.of([1, -2], [2, 3])
        assert len(all_models(formula)) == count_models(formula)

    def test_empty_formula_counts_one(self):
        assert count_models(CnfFormula()) == 1


class TestPlanted:
    @pytest.mark.parametrize("seed", range(5))
    def test_planted_model_satisfies(self, seed):
        rng = random.Random(seed)
        formula, model = planted_3cnf(5, 12, rng)
        assert formula.evaluate(model)
        assert is_satisfiable(formula)


class TestWalkSAT:
    @pytest.mark.parametrize("seed", range(5))
    def test_finds_planted_solutions(self, seed):
        rng = random.Random(seed)
        formula, _ = planted_3cnf(6, 10, rng)
        model = walksat(formula, max_flips=20_000, seed=seed)
        assert model is not None
        assert formula.evaluate(model)

    def test_gives_up_on_unsat(self):
        formula = CnfFormula.of([1], [-1])
        assert walksat(formula, max_flips=200, seed=0) is None

    def test_empty_clause_inconclusive_fast(self):
        assert walksat(CnfFormula([Clause()]), seed=0) is None

    def test_empty_formula(self):
        assert walksat(CnfFormula(), seed=0) == {}

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            walksat(CnfFormula.of([1]), noise=2.0)


class TestGenerators:
    def test_width_respected(self):
        rng = random.Random(0)
        formula = random_k_cnf(6, 10, 3, rng)
        assert all(len(clause) <= 3 for clause in formula)

    def test_width_exceeding_variables_rejected(self):
        with pytest.raises(ValueError):
            random_k_cnf(2, 5, 3, random.Random(0))

    def test_deterministic_under_seed(self):
        first = random_3cnf(5, 8, random.Random(3))
        second = random_3cnf(5, 8, random.Random(3))
        assert [c.literals for c in first] == [c.literals for c in second]
