"""DIMACS serialisation round-trips."""

import pytest

from repro.sat import (
    CnfFormula,
    from_dimacs,
    read_dimacs,
    to_dimacs,
    write_dimacs,
)


class TestRoundTrip:
    def test_simple_formula(self):
        formula = CnfFormula.of([1, -2], [2, 3], [-1])
        parsed = from_dimacs(to_dimacs(formula))
        assert {c.literals for c in parsed} == {
            c.literals for c in formula
        }

    def test_header_counts(self):
        formula = CnfFormula.of([1, -2], [3])
        text = to_dimacs(formula)
        assert "p cnf 3 2" in text

    def test_comment_lines(self):
        text = to_dimacs(CnfFormula.of([1]), comment="hello\nworld")
        assert text.startswith("c hello\nc world\n")

    def test_file_round_trip(self, tmp_path):
        formula = CnfFormula.of([1, 2], [-2])
        path = tmp_path / "formula.cnf"
        write_dimacs(formula, path)
        parsed = read_dimacs(path)
        assert {c.literals for c in parsed} == {
            c.literals for c in formula
        }

    def test_parse_multiline_clause(self):
        parsed = from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert len(parsed) == 1
        assert parsed.clauses[0].literals == {1, 2, 3}

    def test_parse_trailing_clause_without_zero(self):
        parsed = from_dimacs("p cnf 2 1\n1 -2\n")
        assert parsed.clauses[0].literals == {1, -2}

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            from_dimacs("p wcnf 3 1\n1 0\n")

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            from_dimacs("c only a comment\n")

    def test_empty_formula(self):
        assert len(from_dimacs("p cnf 0 0\n")) == 0
