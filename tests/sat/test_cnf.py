"""CNF formula model tests."""

import pytest

from repro.sat import Clause, CnfFormula


class TestClause:
    def test_of_constructor(self):
        clause = Clause.of(1, -2, 3)
        assert clause.literals == frozenset({1, -2, 3})

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Clause.of(0)

    def test_non_int_literal_rejected(self):
        with pytest.raises(ValueError):
            Clause(frozenset({"x1"}))

    def test_empty_clause(self):
        assert Clause().is_empty
        assert not Clause.of(1).is_empty

    def test_unit(self):
        assert Clause.of(-4).is_unit
        assert not Clause.of(1, 2).is_unit

    def test_tautology(self):
        assert Clause.of(1, -1, 2).is_tautology
        assert not Clause.of(1, 2).is_tautology

    def test_variables(self):
        assert Clause.of(1, -2).variables() == {1, 2}

    def test_evaluate(self):
        clause = Clause.of(1, -2)
        assert clause.evaluate({1: True, 2: True})
        assert clause.evaluate({1: False, 2: False})
        assert not clause.evaluate({1: False, 2: True})

    def test_simplify_satisfied(self):
        assert Clause.of(1, 2).simplify(1, True) is None

    def test_simplify_falsified_literal_removed(self):
        assert Clause.of(1, 2).simplify(1, False) == Clause.of(2)

    def test_simplify_unrelated_variable(self):
        clause = Clause.of(1, 2)
        assert clause.simplify(5, True) is clause

    def test_simplify_to_empty(self):
        assert Clause.of(1).simplify(1, False).is_empty

    def test_str(self):
        assert str(Clause.of(1, -2)) == "(x1 ∨ ¬x2)"
        assert str(Clause()) == "⊥"

    def test_iteration_sorted_by_variable(self):
        assert list(Clause.of(3, -1, 2)) == [-1, 2, 3]


class TestCnfFormula:
    def test_of_constructor(self):
        formula = CnfFormula.of([1, -2], [2, 3])
        assert len(formula) == 2

    def test_variables_union(self):
        formula = CnfFormula.of([1, -2], [3])
        assert formula.variables() == {1, 2, 3}

    def test_evaluate_conjunction(self):
        formula = CnfFormula.of([1], [-2])
        assert formula.evaluate({1: True, 2: False})
        assert not formula.evaluate({1: True, 2: True})

    def test_empty_formula_is_true(self):
        assert CnfFormula().evaluate({})

    def test_with_clause(self):
        formula = CnfFormula.of([1])
        extended = formula.with_clause(Clause.of(-1))
        assert len(formula) == 1 and len(extended) == 2

    def test_str(self):
        assert str(CnfFormula()) == "⊤"
        assert "∧" in str(CnfFormula.of([1], [2]))

    def test_repr_counts(self):
        assert "2 clauses" in repr(CnfFormula.of([1], [2, 3]))
