"""Shared fixtures: the paper's worked instances.

``example21`` is the running example of the paper (Example 2.1, Figures
3–5); ``flights_hotels`` is the motivating travel-agency instance of the
introduction (Figures 1–2).  Tests reference the paper's tuple names
through the returned namespaces.
"""

from __future__ import annotations

import os
import random
import time
from types import SimpleNamespace

import pytest

from repro import Attribute, Instance, JoinPredicate, Relation
from repro.core import SignatureIndex


def predicate_of(left: str, right: str, *pairs: tuple[str, str]) -> JoinPredicate:
    """Build a predicate from bare attribute-name pairs."""
    return JoinPredicate(
        (Attribute(left, a), Attribute(right, b)) for a, b in pairs
    )


@pytest.fixture(scope="session")
def example21() -> SimpleNamespace:
    """Example 2.1: R0 (4 rows, 2 attrs), P0 (3 rows, 3 attrs)."""
    r0 = Relation.build(
        "R0", ["A1", "A2"], [(0, 1), (0, 2), (2, 2), (1, 0)]
    )
    p0 = Relation.build(
        "P0", ["B1", "B2", "B3"], [(1, 1, 0), (0, 1, 2), (2, 0, 0)]
    )
    instance = Instance(r0, p0)
    t1, t2, t3, t4 = r0.rows
    u1, u2, u3 = p0.rows

    def theta(*pairs: tuple[str, str]) -> JoinPredicate:
        return predicate_of("R0", "P0", *pairs)

    return SimpleNamespace(
        instance=instance,
        r0=r0,
        p0=p0,
        t1=t1,
        t2=t2,
        t3=t3,
        t4=t4,
        u1=u1,
        u2=u2,
        u3=u3,
        theta=theta,
    )


@pytest.fixture(scope="session")
def example21_index(example21) -> SignatureIndex:
    return SignatureIndex(example21.instance, backend="python")


@pytest.fixture(scope="session")
def figure3_signatures(example21) -> dict:
    """Every T value printed in Figure 3 of the paper."""
    e = example21
    return {
        (e.t1, e.u1): {("A1", "B3"), ("A2", "B1"), ("A2", "B2")},
        (e.t1, e.u2): {("A1", "B1"), ("A2", "B2")},
        (e.t1, e.u3): {("A1", "B2"), ("A1", "B3")},
        (e.t2, e.u1): {("A1", "B3")},
        (e.t2, e.u2): {("A1", "B1"), ("A2", "B3")},
        (e.t2, e.u3): {("A1", "B2"), ("A1", "B3"), ("A2", "B1")},
        (e.t3, e.u1): set(),
        (e.t3, e.u2): {("A1", "B3"), ("A2", "B3")},
        (e.t3, e.u3): {("A1", "B1"), ("A2", "B1")},
        (e.t4, e.u1): {("A1", "B1"), ("A1", "B2"), ("A2", "B3")},
        (e.t4, e.u2): {("A1", "B2"), ("A2", "B1")},
        (e.t4, e.u3): {("A2", "B2"), ("A2", "B3")},
    }


@pytest.fixture(scope="session")
def flights_hotels() -> SimpleNamespace:
    """The introduction's travel-agency instance (Figure 1)."""
    flights = Relation.build(
        "Flight",
        ["From_", "To", "Airline"],
        [
            ("Paris", "Lille", "AF"),
            ("Lille", "NYC", "AA"),
            ("NYC", "Paris", "AA"),
            ("Paris", "NYC", "AF"),
        ],
    )
    hotels = Relation.build(
        "Hotel",
        ["City", "Discount"],
        [("NYC", "AA"), ("Paris", "NoDiscount"), ("Lille", "AF")],
    )
    instance = Instance(flights, hotels)

    def theta(*pairs: tuple[str, str]) -> JoinPredicate:
        return predicate_of("Flight", "Hotel", *pairs)

    q1 = theta(("To", "City"))
    q2 = theta(("To", "City"), ("Airline", "Discount"))
    return SimpleNamespace(
        instance=instance,
        flights=flights,
        hotels=hotels,
        q1=q1,
        q2=q2,
        theta=theta,
    )


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(20140324)  # EDBT 2014 started March 24.


def make_random_instance(
    rng: random.Random,
    left_arity: int,
    right_arity: int,
    rows: int,
    values: int,
) -> Instance:
    """A random instance in the style of the paper's synthetic generator
    (small, for property tests)."""
    left = Relation.build(
        "R",
        [f"A{i}" for i in range(1, left_arity + 1)],
        [
            tuple(rng.randrange(values) for _ in range(left_arity))
            for _ in range(rows)
        ],
    )
    right = Relation.build(
        "P",
        [f"B{j}" for j in range(1, right_arity + 1)],
        [
            tuple(rng.randrange(values) for _ in range(right_arity))
            for _ in range(rows)
        ],
    )
    return Instance(left, right)


#: Thread-name prefixes of every background worker the suite may spin
#: up; any of them still alive after the last test is a leak.
_BACKGROUND_THREAD_PREFIXES = (
    "repro-service",
    "index-build",
    "session-store",
    "create-offload",
    "lease-heartbeat",
    "service-feed",
)


@pytest.fixture(autouse=True, scope="session")
def no_leaked_servers_or_threads():
    """Fail the suite if a test leaked a live server or a background
    worker thread.  Teardown is asynchronous (server loops join their
    threads, the feed thread drains), so the check retries for a few
    seconds before declaring a leak rather than flaking on the last
    test's shutdown still being in flight."""
    import threading

    from repro.service import ServiceServer

    yield
    deadline = time.monotonic() + 5.0
    while True:
        servers = list(ServiceServer._live)
        threads = [
            thread.name
            for thread in threading.enumerate()
            if thread.is_alive()
            and thread.name.startswith(_BACKGROUND_THREAD_PREFIXES)
        ]
        if not servers and not threads:
            return
        if time.monotonic() > deadline:
            break
        time.sleep(0.05)
    assert not servers, (
        f"tests leaked live ServiceServer instances: {servers}"
    )
    assert not threads, (
        f"tests leaked background threads: {threads}"
    )


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shm_segments():
    """Fail the suite if any test leaves a ``repro_*`` shared-memory
    segment behind: every publish/attach path must unlink on shutdown
    (the CI job runs the same check as a separate step, so a leak is
    caught even if this fixture's teardown is skipped by a crash)."""
    directory = "/dev/shm"

    def leaked() -> list[str]:
        if not os.path.isdir(directory):  # pragma: no cover - non-Linux
            return []
        return sorted(
            entry
            for entry in os.listdir(directory)
            if entry.startswith("repro_")
        )

    before = set(leaked())
    yield
    remaining = [name for name in leaked() if name not in before]
    assert not remaining, (
        f"leaked shared-memory segments: {remaining}"
    )
