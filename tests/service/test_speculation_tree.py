"""Depth-2 speculation trees and cross-session kernel batching.

The manager now precomputes an answer *tree* behind every pending
question (branches fan out again below ``speculation_depth``) and
routes L1S/L2S proposal kernels of sessions sharing one index through
a :class:`~repro.core.kernel_batch.KernelBatchScheduler`.  These tests
pin the serving-side contract: adopted grandchild branches are
bit-identical to inline inference, per-depth counters add up,
cancellation reaps whole subtrees, and the async proposal path batches
concurrent sessions without changing any question.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import wait as wait_futures

import pytest

from repro.core import (
    Label,
    PerfectOracle,
    SignatureIndex,
    run_inference,
    strategy_by_name,
)
from repro.data import generate_tpch, tpch_workloads
from repro.service import ServiceClient, ServiceServer, SessionManager
from repro.service.protocol import parse_create_payload


def _workload():
    return tpch_workloads(generate_tpch(scale=1.0, seed=0))[3]


def _create(manager, strategy="L2S", seed=0):
    spec = parse_create_payload(
        {"workload": "tpch/join4", "strategy": strategy, "seed": seed}
    )
    return manager.create(spec)


def _await_tree(managed):
    """Wait for the full speculation tree: root branches first (their
    workers attach the grandchildren before resolving), then every
    attached child."""
    spec = managed.speculation
    assert spec is not None
    wait_futures(
        [b.future for b in spec.branches.values()], timeout=30
    )
    children = [
        child
        for branch in spec.branches.values()
        for child in branch.children.values()
    ]
    wait_futures([c.future for c in children], timeout=30)
    return spec


class TestSpeculationTree:
    def test_tree_spawns_grandchildren(self):
        manager = SessionManager(
            build_workers=2, speculation_min_think_seconds=0.0
        )
        try:
            managed = _create(manager, seed=5)
            manager.propose_question(managed)
            spec = _await_tree(managed)
            for branch in spec.branches.values():
                assert branch.depth == 1
                # both labels of the branch's own follow-up question
                assert set(branch.children) == {
                    Label.POSITIVE,
                    Label.NEGATIVE,
                }
                for child in branch.children.values():
                    assert child.depth == 2
                    assert not child.children  # depth cap respected
        finally:
            manager.close(wait=True)

    def test_depth1_manager_spawns_no_children(self):
        manager = SessionManager(
            build_workers=2,
            speculation_depth=1,
            speculation_min_think_seconds=0.0,
        )
        try:
            managed = _create(manager, seed=5)
            manager.propose_question(managed)
            spec = _await_tree(managed)
            assert all(
                not branch.children
                for branch in spec.branches.values()
            )
            stats = manager.stats()["speculation"]
            assert stats["depth"] == 1
            assert set(stats["hits_by_depth"]) == {"1"}
        finally:
            manager.close(wait=True)

    def test_hit_adopts_grandchildren_then_hits_at_depth2(self):
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        manager = SessionManager(
            build_workers=2, speculation_min_think_seconds=0.0
        )
        try:
            managed = _create(manager, seed=5)
            first = manager.propose_question(managed)
            spec = _await_tree(managed)
            label = oracle.label(first.tuple_pair)
            branch = spec.branches[label]
            assert branch.children
            manager.record_answer(managed, first.question_id, label)

            # the hit installed the grandchildren as the *next*
            # question's speculation — no new forks were submitted
            adopted = managed.speculation
            assert adopted is not None
            assert adopted.branches is branch.children
            second = manager.propose_question(managed)
            assert adopted.question_id == second.question_id
            assert manager.stats()["speculation"]["submitted"] == 1
            assert managed.speculation is adopted

            wait_futures(
                [b.future for b in adopted.branches.values()],
                timeout=30,
            )
            label = oracle.label(second.tuple_pair)
            manager.record_answer(managed, second.question_id, label)
            stats = manager.stats()["speculation"]
            assert stats["hits"] == 2
            assert stats["hits_by_depth"] == {"1": 1, "2": 1}
            assert stats["misses_by_depth"] == {"1": 0, "2": 0}
            assert stats["hit_ratio_by_depth"] == {"1": 1.0, "2": 1.0}
        finally:
            manager.close(wait=True)

    @pytest.mark.parametrize("strategy", ["L2S", "L1S"])
    def test_full_session_through_tree_matches_inline(self, strategy):
        """A whole session riding adopted trees (answer→question→answer
        as lookups) must replay the exact inline inference."""
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        manager = SessionManager(
            build_workers=2, speculation_min_think_seconds=0.0
        )
        try:
            managed = _create(manager, strategy=strategy, seed=7)
            asked = 0
            while True:
                question = manager.propose_question(managed)
                if question is None:
                    break
                asked += 1
                spec = managed.speculation
                assert spec is not None
                wait_futures(
                    [b.future for b in spec.branches.values()],
                    timeout=30,
                )
                manager.record_answer(
                    managed,
                    question.question_id,
                    oracle.label(question.tuple_pair),
                )
            stats = manager.stats()["speculation"]
            assert stats["hits"] == asked
            assert stats["misses"] == 0
            # adopted trees hit at depth 2 on alternating rounds
            assert stats["hits_by_depth"]["2"] > 0
        finally:
            manager.close(wait=True)

        reference = run_inference(
            workload.instance,
            strategy_by_name(strategy),
            oracle,
            index=SignatureIndex(workload.instance),
            seed=7,
        )
        session = managed.session
        assert tuple(session._history) == reference.history
        assert session.current_predicate() == reference.predicate

    def test_cancellation_reaps_whole_subtree(self):
        manager = SessionManager(
            build_workers=2, speculation_min_think_seconds=0.0
        )
        try:
            managed = _create(manager, seed=5)
            manager.propose_question(managed)
            spec = _await_tree(managed)
            manager.delete(managed.session_id)
            assert managed.speculation is None
            for branch in spec.branches.values():
                assert branch.abort.is_set()
                for child in branch.children.values():
                    assert child.abort.is_set()
        finally:
            manager.close(wait=True)

    def test_grandchildren_respect_slot_cap(self):
        """slots=2 admits the root pair only: finished branches skip
        their fan-out instead of queueing, and the skip is counted."""
        manager = SessionManager(
            build_workers=2,
            speculation_slots=2,
            speculation_min_think_seconds=0.0,
        )
        try:
            managed = _create(manager, seed=5)
            manager.propose_question(managed)
            spec = _await_tree(managed)
            assert all(
                not branch.children
                for branch in spec.branches.values()
            )
            stats = manager.stats()["speculation"]
            assert stats["submitted"] == 1
            assert stats["skipped_capacity"] >= 1
        finally:
            manager.close(wait=True)


class TestAsyncProposeBatching:
    def test_concurrent_proposals_coalesce_and_match_inline(self):
        """Six sessions on one shared index propose concurrently: the
        second round's kernels run as one stacked batch, and every
        question equals the unbatched manager's."""
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        manager = SessionManager(
            build_workers=2,
            speculate=False,
            batch_window_seconds=0.05,
        )
        plain = SessionManager(
            build_workers=2, speculate=False, kernel_batch=False
        )
        try:
            seeds = list(range(6))
            batched = [_create(manager, seed=s) for s in seeds]
            inline = [_create(plain, seed=s) for s in seeds]

            async def round_trip(mgr, sessions):
                return await asyncio.gather(
                    *[
                        mgr.propose_question_async(m)
                        for m in sessions
                    ]
                )

            for round_no in range(2):
                got = asyncio.run(round_trip(manager, batched))
                want = asyncio.run(round_trip(plain, inline))
                for managed, q_got, q_want in zip(
                    batched, got, want
                ):
                    assert q_got.class_id == q_want.class_id
                    label = oracle.label(q_got.tuple_pair)
                    manager.record_answer(
                        managed, q_got.question_id, label
                    )
                for managed, q_want in zip(inline, want):
                    plain.record_answer(
                        managed,
                        q_want.question_id,
                        oracle.label(q_want.tuple_pair),
                    )

            stats = manager.stats()["kernel_batch"]
            assert stats["enabled"] is True
            # round 1: L2S's transient first propose declines to
            # export, so all six jobs fall back per-session; round 2
            # exports and the six coalesce into one stacked batch.
            assert stats["fallback_jobs"] == 6
            assert stats["batched_jobs"] == 6
            assert stats["batch_size_histogram"] == {"6": 1}
            assert plain.stats()["kernel_batch"] == {"enabled": False}
        finally:
            manager.close(wait=True)
            plain.close(wait=True)

    def test_sync_propose_on_loop_stays_inline(self):
        """The router must never block the event loop: a synchronous
        propose from loop context takes the per-session path."""
        manager = SessionManager(build_workers=2, speculate=False)
        try:
            managed = _create(manager, seed=1)

            async def propose_sync():
                return manager.propose_question(managed)

            assert asyncio.run(propose_sync()) is not None
            stats = manager.stats()["kernel_batch"]
            assert stats["batched_jobs"] == 0
            assert stats["fallback_jobs"] == 0
            assert stats["pending_jobs"] == 0
        finally:
            manager.close(wait=True)

    def test_close_cancels_pending_batch_jobs(self):
        """Shutdown with queued kernel jobs neither hangs nor leaks:
        the batcher drains by cancellation before the pools stop."""
        manager = SessionManager(
            build_workers=2,
            speculate=False,
            batch_window_seconds=30.0,
        )
        managed = _create(manager, seed=1)
        strategy = managed.session.strategy
        planner = strategy.planner_for(managed.session.state)
        future = manager._batcher.submit(
            id(managed.session.index), planner
        )
        manager.close(wait=True)
        assert future.cancelled()
        with pytest.raises(RuntimeError):
            manager._batcher.submit(
                id(managed.session.index), planner
            )


class TestStatsSurface:
    def test_http_stats_report_tree_and_batch_blocks(self):
        manager = SessionManager(build_workers=2)
        with ServiceServer(manager=manager) as server:
            with ServiceClient(server.host, server.port) as client:
                client.create_session(
                    workload="tpch/join4", strategy="L2S", seed=3
                )
                stats = client.stats()
        speculation = stats["speculation"]
        assert speculation["depth"] == 2
        assert set(speculation["hits_by_depth"]) == {"1", "2"}
        assert set(speculation["hit_ratio_by_depth"]) == {"1", "2"}
        kernel_batch = stats["kernel_batch"]
        assert kernel_batch["enabled"] is True
        assert "batch_size_histogram" in kernel_batch
        assert kernel_batch["max_batch"] == 64
