"""Service-layer tests for the off-loop build pipeline.

The serving contract of ISSUE 3: concurrent creates on the same cold
fingerprint are single-flight (exactly one build, asserted via cache
stats), a large build in flight never stalls unrelated sessions
(p95-bounded answer latency), ``GET /builds`` exposes progress, the
``instance_fingerprint`` hash is memoised per instance, and the
``serve`` CLI flags reach the builder.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.cli import build_parser, manager_from_args
from repro.core import IndexBuilder, PerfectOracle
from repro.relational import Instance, JoinPredicate, Relation
from repro.service import IndexCache, ServiceApp, SessionManager
from repro.service import index_cache as index_cache_module
from repro.service.index_cache import instance_fingerprint


class SlowBuilder(IndexBuilder):
    """A builder that grinds for a fixed wall-clock before building —
    deterministic stand-in for a ≫10⁷-tuple cold build."""

    def __init__(self, delay: float, **kwargs):
        super().__init__(**kwargs)
        self.delay = delay
        self.builds = 0

    def build(self, source, progress=None):
        self.builds += 1
        time.sleep(self.delay)
        return super().build(source, progress=progress)


def csv_payload(value: int = 1) -> dict:
    return {
        "csv": {
            "left": {
                "name": "R",
                "text": f"A1,A2\n{value},2\n3,4\n",
            },
            "right": {"name": "P", "text": f"B1\n{value}\n3\n"},
        },
        "strategy": "TD",
        "seed": 0,
    }


def make_app(delay: float = 0.2, build_workers: int = 2):
    builder = SlowBuilder(delay)
    manager = SessionManager(
        index_cache=IndexCache(builder=builder),
        build_workers=build_workers,
    )
    return ServiceApp(manager), builder


class TestSingleFlight:
    def test_two_concurrent_creates_one_build(self):
        app, builder = make_app()

        async def scenario():
            return await asyncio.gather(
                app.dispatch("POST", "/sessions", csv_payload()),
                app.dispatch("POST", "/sessions", csv_payload()),
            )

        try:
            (status_a, a), (status_b, b) = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert status_a == 201 and status_b == 201
        stats = app.manager.index_cache.stats()
        assert builder.builds == 1  # exactly one build ran
        assert stats["misses"] == 1
        assert stats["single_flight_waits"] == 1
        assert stats["hits"] == 1
        # Both sessions share the identical index object.
        sessions = [
            app.manager.get(a["session_id"]).session,
            app.manager.get(b["session_id"]).session,
        ]
        assert sessions[0].index is sessions[1].index
        # The follower is reported as a cache hit, the leader as a miss.
        assert sorted(
            (a["index_cache_hit"], b["index_cache_hit"])
        ) == [False, True]

    def test_distinct_fingerprints_build_separately(self):
        app, builder = make_app(delay=0.05)

        async def scenario():
            return await asyncio.gather(
                app.dispatch("POST", "/sessions", csv_payload(1)),
                app.dispatch("POST", "/sessions", csv_payload(2)),
            )

        try:
            (status_a, _), (status_b, _) = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert status_a == 201 and status_b == 201
        assert builder.builds == 2
        assert app.manager.index_cache.stats()["single_flight_waits"] == 0

    def test_cancelled_leader_does_not_poison_waiters(self):
        """Cancelling the request that started a build (client gone,
        wait_for timeout) must not cancel the build: the waiter still
        gets the index and the cache ends up warm."""
        app, builder = make_app(delay=0.2)

        async def scenario():
            leader = asyncio.ensure_future(
                app.dispatch("POST", "/sessions", csv_payload())
            )
            await asyncio.sleep(0.05)  # build in flight
            follower = asyncio.ensure_future(
                app.dispatch("POST", "/sessions", csv_payload())
            )
            await asyncio.sleep(0.01)
            leader.cancel()
            status, created = await follower
            with pytest.raises(asyncio.CancelledError):
                await leader
            return status, created

        try:
            status, created = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert status == 201
        assert builder.builds == 1
        stats = app.manager.index_cache.stats()
        assert stats["entries"] == 1  # the orphaned build still landed
        assert stats["in_flight"] == 0

    def test_failed_build_propagates_to_all_waiters(self):
        class ExplodingBuilder(IndexBuilder):
            def build(self, source, progress=None):
                time.sleep(0.05)
                raise RuntimeError("disk on fire")

        manager = SessionManager(
            index_cache=IndexCache(builder=ExplodingBuilder())
        )
        app = ServiceApp(manager)

        async def scenario():
            return await asyncio.gather(
                app.dispatch("POST", "/sessions", csv_payload()),
                app.dispatch("POST", "/sessions", csv_payload()),
            )

        try:
            results = asyncio.run(scenario())
        finally:
            manager.close()
        assert [status for status, _ in results] == [500, 500]
        assert len(manager.index_cache.pending_builds()) == 0


class TestUnrelatedSessionsKeepAnswering:
    def test_p95_latency_bounded_during_cold_build(self):
        """While a slow build occupies the worker pool, an existing
        session on other data keeps proposing/answering on the loop."""
        app, _ = make_app(delay=0.6)
        goal = JoinPredicate.parse("R.A1 = P.B1")

        async def scenario():
            status, created = await app.dispatch(
                "POST", "/sessions", csv_payload(7)
            )
            assert status == 201
            session_id = created["session_id"]
            managed = app.manager.get(session_id)
            oracle = PerfectOracle(managed.session.instance, goal)

            slow = asyncio.ensure_future(
                app.dispatch("POST", "/sessions", csv_payload(1))
            )
            await asyncio.sleep(0.05)  # let the cold build start
            latencies = []
            overlapped = 0
            while not slow.done():
                # Yield to the loop between requests, as the socket
                # turnaround does in production — warm dispatches are
                # purely synchronous and would otherwise starve the
                # executor-completion callback.
                await asyncio.sleep(0)
                started = time.perf_counter()
                status, question = await app.dispatch(
                    "GET", f"/sessions/{session_id}/question", None
                )
                assert status == 200
                if question["done"]:
                    status, _ = await app.dispatch(
                        "GET", f"/sessions/{session_id}/predicate", None
                    )
                    assert status == 200
                else:
                    pair = (
                        tuple(question["left"]["row"]),
                        tuple(question["right"]["row"]),
                    )
                    status, _ = await app.dispatch(
                        "POST",
                        f"/sessions/{session_id}/answer",
                        {
                            "question_id": question["question_id"],
                            "label": str(oracle.label(pair)),
                        },
                    )
                    assert status == 200
                latencies.append(time.perf_counter() - started)
                overlapped += 1
            build_status, _ = await slow
            return build_status, latencies, overlapped

        try:
            build_status, latencies, overlapped = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert build_status == 201
        assert overlapped >= 5  # genuinely interleaved with the build
        ordered = sorted(latencies)
        p95 = ordered[max(0, int(len(ordered) * 0.95) - 1)]
        # Loop-side work is sub-millisecond; a blocked loop costs the
        # full 0.6 s build.  The bound leaves a wide margin for noisy
        # shared CI runners while still separating the two regimes.
        assert p95 < 0.35, f"p95 answer latency {p95:.3f}s during build"


class TestDefaultWorkerConfig:
    def test_warm_builtin_create_skips_busy_build_pool(self):
        """With the default single build worker, a warm builtin create
        must not queue behind a long cold CSV build — its validation is
        O(1) and its index is already cached."""
        app, _ = make_app(delay=0.5, build_workers=1)
        builtin = {"workload": "synthetic/1", "strategy": "TD", "seed": 0}

        async def scenario():
            status, _ = await app.dispatch("POST", "/sessions", dict(builtin))
            assert status == 201  # warms the cache
            cold = asyncio.ensure_future(
                app.dispatch("POST", "/sessions", csv_payload())
            )
            await asyncio.sleep(0.05)  # cold build occupies the 1 worker
            started = time.perf_counter()
            status, _ = await app.dispatch("POST", "/sessions", dict(builtin))
            warm_latency = time.perf_counter() - started
            assert status == 201
            assert not cold.done()  # the build really was in flight
            await cold
            return warm_latency

        try:
            warm_latency = asyncio.run(scenario())
        finally:
            app.manager.close()
        # Queuing behind the build would cost ~0.5 s; the slack covers
        # CI scheduling noise without blurring the two regimes.
        assert warm_latency < 0.35, (
            f"warm builtin create took {warm_latency:.3f}s behind a build"
        )

    def test_warm_upload_create_skips_busy_build_pool(self):
        """A warm uploaded-CSV create (parse + hash + cache hit) runs
        on the preprocessing pool, not behind the busy build worker."""
        app, _ = make_app(delay=0.5, build_workers=1)
        warm_payload = csv_payload(9)

        async def scenario():
            status, _ = await app.dispatch(
                "POST", "/sessions", dict(warm_payload)
            )
            assert status == 201  # warms the cache for fingerprint 9
            cold = asyncio.ensure_future(
                app.dispatch("POST", "/sessions", csv_payload(1))
            )
            await asyncio.sleep(0.05)
            started = time.perf_counter()
            status, created = await app.dispatch(
                "POST", "/sessions", dict(warm_payload)
            )
            warm_latency = time.perf_counter() - started
            assert status == 201 and created["index_cache_hit"]
            assert not cold.done()
            await cold
            return warm_latency

        try:
            warm_latency = asyncio.run(scenario())
        finally:
            app.manager.close()
        # Same regime separation as the builtin variant: blocked ≈ 0.5 s.
        assert warm_latency < 0.35, (
            f"warm upload create took {warm_latency:.3f}s behind a build"
        )

    def test_supplied_cache_rejects_shard_rows(self):
        with pytest.raises(ValueError):
            SessionManager(index_cache=IndexCache(), shard_rows=64)


class TestBuildStatusEndpoint:
    def test_builds_visible_while_in_flight(self):
        app, _ = make_app(delay=0.3)

        async def scenario():
            create = asyncio.ensure_future(
                app.dispatch("POST", "/sessions", csv_payload())
            )
            await asyncio.sleep(0.1)
            status, during = await app.dispatch("GET", "/builds", None)
            assert status == 200
            await create
            status, after = await app.dispatch("GET", "/builds", None)
            return during, after

        try:
            during, after = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert during["in_flight"] == 1
        (build,) = during["builds"]
        assert build["elapsed_seconds"] >= 0
        assert build["waiters"] == 0
        assert after == {"builds": [], "in_flight": 0}

    def test_builds_rejects_non_get(self):
        app, _ = make_app(delay=0.0)

        async def scenario():
            return await app.dispatch("POST", "/builds", {})

        try:
            status, payload = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_stats_carry_pipeline_counters(self):
        app, _ = make_app(delay=0.0)

        async def scenario():
            await app.dispatch("POST", "/sessions", csv_payload())
            return await app.dispatch("GET", "/stats", None)

        try:
            _, stats = asyncio.run(scenario())
        finally:
            app.manager.close()
        assert stats["build_workers"] == 2
        cache_stats = stats["index_cache"]
        assert cache_stats["in_flight"] == 0
        assert cache_stats["single_flight_waits"] == 0


class TestGetOrBuildAsync:
    def test_hashes_and_builds_off_loop_single_flight(self):
        """The instance-keyed async API: one build for value-identical
        instances, fingerprints memoised on the way through."""
        cache = IndexCache(builder=SlowBuilder(0.05))
        instance_a = Instance(
            Relation.build("R", ["A1"], [(1,), (2,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        instance_b = Instance(
            Relation.build("R", ["A1"], [(1,), (2,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )

        async def scenario():
            return await asyncio.gather(
                cache.get_or_build_async(instance_a),
                cache.get_or_build_async(instance_b),
            )

        (index_a, hit_a), (index_b, hit_b) = asyncio.run(scenario())
        assert index_a is index_b
        assert sorted((hit_a, hit_b)) == [False, True]
        assert cache.stats()["misses"] == 1
        assert instance_a._content_fingerprint is not None


class TestFingerprintMemoisation:
    def instance(self) -> Instance:
        return Instance(
            Relation.build("R", ["A1"], [(1,), (2,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )

    def test_hash_computed_once_per_instance(self, monkeypatch):
        calls = {"count": 0}
        original = index_cache_module.json.dumps

        def counting_dumps(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(
            index_cache_module.json, "dumps", counting_dumps
        )
        instance = self.instance()
        first = instance_fingerprint(instance)
        second = instance_fingerprint(instance)
        assert first == second
        assert calls["count"] == 1

    def test_value_identical_instances_share_fingerprint(self):
        assert instance_fingerprint(self.instance()) == instance_fingerprint(
            self.instance()
        )

    def test_type_tagging_still_distinguishes(self):
        typed = Instance(
            Relation.build("R", ["A1"], [("1",), ("2",)]),
            Relation.build("P", ["B1"], [("1",)]),
        )
        assert instance_fingerprint(self.instance()) != instance_fingerprint(
            typed
        )


class TestCliPlumbing:
    def test_serve_flags_parse_and_reach_builder(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--build-workers",
                "3",
                "--shard-rows",
                "500",
                "--max-sessions",
                "8",
            ]
        )
        assert args.build_workers == 3
        assert args.shard_rows == 500
        manager = manager_from_args(args)
        try:
            assert manager.build_workers == 3
            builder = manager.index_cache.builder
            assert builder.shard_rows == 500
            assert builder.workers == 3
            assert manager.max_sessions == 8
        finally:
            manager.close()

    def test_serve_defaults_single_shard(self):
        args = build_parser().parse_args(["serve"])
        assert args.build_workers == 1
        assert args.shard_rows is None
        manager = manager_from_args(args)
        try:
            builder = manager.index_cache.builder
            assert builder.shard_rows is None
            assert builder.workers == 1
            # speculation defaults: on, depth 2, one full tree
            # (2^(depth+1) - 2 = 6 nodes) per build worker
            assert manager.speculate is True
            assert manager.speculation_depth == 2
            assert manager.speculation_slots == 6
            assert manager.speculation_min_think_seconds == 0.02
            assert manager._batcher is not None
        finally:
            manager.close()

    def test_serve_speculation_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--no-speculate",
                "--speculation-slots",
                "7",
                "--speculation-min-think",
                "0.5",
                "--speculation-depth",
                "1",
            ]
        )
        manager = manager_from_args(args)
        try:
            assert manager.speculate is False
            assert manager.speculation_slots == 7
            assert manager.speculation_min_think_seconds == 0.5
            assert manager.speculation_depth == 1
        finally:
            manager.close()

    def test_serve_kernel_batch_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--batch-window",
                "0.01",
                "--batch-max",
                "8",
            ]
        )
        manager = manager_from_args(args)
        try:
            batcher = manager._batcher
            assert batcher is not None
            assert batcher.window_seconds == 0.01
            assert batcher.max_batch == 8
        finally:
            manager.close()
        args = build_parser().parse_args(["serve", "--no-kernel-batch"])
        manager = manager_from_args(args)
        try:
            assert manager._batcher is None
            assert manager.stats()["kernel_batch"] == {"enabled": False}
        finally:
            manager.close()

    def test_serve_store_flags(self, tmp_path):
        from repro.service import SqliteSessionStore

        path = tmp_path / "sessions.db"
        args = build_parser().parse_args(
            [
                "serve",
                "--store",
                str(path),
                "--checkpoint-every",
                "5",
            ]
        )
        manager = manager_from_args(args)
        try:
            assert isinstance(manager.store, SqliteSessionStore)
            assert manager.store.path == str(path)
            assert manager.checkpoint_every == 5
        finally:
            manager.close()
            manager.store.close()

    def test_serve_defaults_no_store(self):
        args = build_parser().parse_args(["serve"])
        assert args.store is None
        assert args.checkpoint_every == 16
        manager = manager_from_args(args)
        try:
            assert manager.store is None
        finally:
            manager.close()

    def test_manager_validates_build_workers(self):
        with pytest.raises(ValueError):
            SessionManager(build_workers=0)

    def test_manager_validates_speculation_knobs(self):
        with pytest.raises(ValueError):
            SessionManager(speculation_slots=-1)
        with pytest.raises(ValueError):
            SessionManager(speculation_min_think_seconds=-0.1)

    def test_manager_validates_checkpoint_every(self):
        with pytest.raises(ValueError):
            SessionManager(checkpoint_every=0)
