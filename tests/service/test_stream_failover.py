"""Stream failover across the fleet router: kill -9 a worker under a
live SSE subscription.

The acceptance property extends the fleet's (a client cannot observe a
SIGKILL beyond latency) to the streaming plane: a session stream whose
worker dies yields a clean, explicitly retryable ``reconnect`` event
followed by a proper end-of-stream — never a silent hang and never a
torn frame — and the resubscription lands on a survivor whose snapshot
question continues the journaled sequence gap-free.  The service-wide
feed goes one further: the router reattaches a dead slot's pump by
itself, so ONE subscription observes the whole fleet across a death
and a respawn.

These tests spawn real worker subprocesses (slow, like test_fleet).
"""

from __future__ import annotations

import time
import zlib

import pytest

from repro.service import FleetServer, ServiceClient, ServiceClientError
from repro.service.events import SERVICE_FEED

from .test_fleet import (
    boundary_instance,
    fleet_config,
    reference_run,
    snapshot_payload,
)
from .test_store import _PrefixedOracle


def stream_with_retry(client, session_id, deadline_seconds=30.0):
    """Open a session stream, retrying while the fleet is mid-takeover
    (lease wait, slot respawn); returns (generator, hello event)."""
    deadline = time.monotonic() + deadline_seconds
    while True:
        try:
            stream = client.stream_session(session_id)
            hello = next(stream)
            assert hello["event"] == "hello"
            return stream, hello
        except (ServiceClientError, StopIteration, OSError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.2)


class TestSessionStreamFailover:
    CUT = 4

    def test_kill9_midstream_yields_reconnect_then_gap_free_resume(
        self, tmp_path
    ):
        instance = boundary_instance(3, 3, rows=6, seed=8)
        expected, expected_predicate = reference_run(
            instance, "L2S", 13, _PrefixedOracle(self.CUT, seed=5)
        )
        assert len(expected) > self.CUT + 1

        config = fleet_config(tmp_path, checkpoint_every=2)
        with FleetServer(config) as server:
            client = ServiceClient(
                server.host, server.port, retries=5, retry_backoff=0.3
            )
            info = client.resume(snapshot_payload(instance, "L2S", 13))
            sid = info["session_id"]
            oracle = _PrefixedOracle(self.CUT, seed=5)

            # Phase 1: answer CUT questions via the pushed stream.
            stream, _ = stream_with_retry(client, sid)
            asked = []
            asked_ids = []
            answered = 0
            for event in stream:
                if event["event"] != "question":
                    continue
                if answered >= self.CUT:
                    break
                asked.append(
                    [event["left"]["row"], event["right"]["row"]]
                )
                asked_ids.append(event["question_id"])
                client.post_answer(
                    sid,
                    event["question_id"],
                    oracle.label(None).value,
                )
                answered += 1
            assert asked == expected[: self.CUT]

            # Phase 2: SIGKILL the session's home worker mid-stream.
            home = zlib.crc32(sid.encode("utf-8")) % 2
            server.kill_worker(home)
            tail = list(stream)  # must END, not hang
            assert tail, (
                "stream closed silently: a worker death must surface "
                "as an explicit reconnect event"
            )
            reconnect = tail[-1]
            assert reconnect["event"] == "reconnect"
            assert reconnect["retryable"] is True
            assert reconnect["reason"] == "worker_unavailable"
            assert reconnect["session_id"] == sid

            # Phase 3: resubscribe; the survivor waits out the dead
            # worker's lease, replays checkpoint + journal, and the
            # snapshot question continues the sequence gap-free.
            stream, _ = stream_with_retry(client, sid)
            resumed = []
            resumed_ids = []
            for event in stream:
                if event["event"] == "done":
                    break
                if event["event"] != "question":
                    continue
                resumed.append(
                    [event["left"]["row"], event["right"]["row"]]
                )
                resumed_ids.append(event["question_id"])
                client.post_answer(
                    sid,
                    event["question_id"],
                    oracle.label(None).value,
                )
            assert resumed[0] == expected[self.CUT], (
                "snapshot question after failover must be the first "
                "unanswered question of the journaled sequence"
            )
            assert asked + resumed == expected, (
                "resumed question sequence diverged from the "
                "uninterrupted run"
            )
            ids = asked_ids + resumed_ids
            assert ids == list(range(ids[0], ids[0] + len(ids))), (
                f"question_id sequence has gaps or replays: {ids}"
            )
            predicate = client.predicate(sid)
            assert (
                predicate["predicate"]["pairs"] == expected_predicate
            )
            assert client.stats()["fleet"]["failovers_total"] >= 1


class TestServiceFeedFailover:
    def test_one_subscription_survives_kill_and_respawn(self, tmp_path):
        """The multiplexed ``/events/stream``: a worker SIGKILL shows
        up as a reconnect event ON THE SAME subscription, and once the
        slot respawns its fresh hello (with a dashboard re-baseline)
        arrives without the client doing anything."""
        with FleetServer(fleet_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            feed_client = ServiceClient(server.host, server.port)
            stream = feed_client.stream_service()
            hello = next(stream)
            assert hello["event"] == "hello"
            assert hello["topic"] == SERVICE_FEED
            assert "totals" in hello["dashboard"]
            # Per-slot hellos from both workers' feeds follow.
            slot_hellos = [next(stream), next(stream)]
            assert {e["event"] for e in slot_hellos} == {"hello"}

            server.kill_worker(0)
            deadline = time.monotonic() + 30
            reconnect = None
            for event in stream:
                if event["event"] == "reconnect":
                    reconnect = event
                    break
                assert time.monotonic() < deadline
            assert reconnect is not None
            assert reconnect["topic"] == SERVICE_FEED
            assert reconnect["slot"] == 0
            assert reconnect["retryable"] is True

            server.wait_for_slot(0)
            # Same subscription, no resubscribe: the respawned slot's
            # pump reattaches and its hello re-baselines the client.
            rebaseline = None
            for event in stream:
                if event["event"] == "hello":
                    rebaseline = event
                    break
                assert time.monotonic() < deadline
            assert rebaseline is not None
            assert "dashboard" in rebaseline

            # And live traffic flows again end-to-end: a session on
            # either slot shows up on this same subscription.
            info = client.create_session(
                workload="tpch/join2", strategy="TD", seed=7
            )
            question = client.next_question(info["session_id"])
            client.post_answer(
                info["session_id"], question["question_id"], "-"
            )
            saw_answer = False
            for event in stream:
                if (
                    event["event"] == "answer"
                    and event["topic"] == info["session_id"]
                ):
                    saw_answer = True
                    break
                assert time.monotonic() < deadline
            assert saw_answer
            stream.close()
            feed_client.close()
            client.close()


@pytest.mark.parametrize("path", ["/sessions/{sid}/stream"])
def test_unknown_session_stream_is_json_404_through_router(
    tmp_path, path
):
    """A non-stream upstream response (404 for an unknown session) must
    relay as an ordinary JSON error, not a broken SSE stream."""
    with FleetServer(fleet_config(tmp_path)) as server:
        client = ServiceClient(server.host, server.port)
        with pytest.raises(ServiceClientError) as excinfo:
            next(iter(client.stream_session("missing-session")))
        assert excinfo.value.status == 404
        client.close()
