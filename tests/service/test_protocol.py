"""Unit tests for the service layer below HTTP: protocol validation,
the content-addressed index cache, and the session manager."""

import asyncio

import pytest

from repro.core import Label
from repro.data import builtin_instance
from repro.relational import Instance, Relation
from repro.service import (
    BadRequest,
    CapacityExceeded,
    IndexCache,
    NotFound,
    ServiceApp,
    SessionManager,
    instance_fingerprint,
    parse_answer_payload,
    parse_create_payload,
    parse_label,
)


def small_instance(value=1):
    return Instance(
        Relation.build("R", ["A1", "A2"], [(value, 2), (3, 4)]),
        Relation.build("P", ["B1"], [(value,), (3,)]),
    )


class TestCreatePayload:
    def test_builtin_roundtrip(self):
        spec = parse_create_payload(
            {"workload": "tpch/join1", "strategy": "l2s", "seed": 7}
        )
        assert spec.instance_spec["builtin"]["name"] == "tpch/join1"
        assert spec.strategy == "L2S"
        assert spec.seed == 7
        assert spec.instance is None

    def test_unknown_workload_rejected(self):
        with pytest.raises(BadRequest):
            parse_create_payload({"workload": "tpch/join9"})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(BadRequest):
            parse_create_payload(
                {"workload": "tpch/join1", "strategy": "XXL"}
            )

    def test_workload_and_csv_mutually_exclusive(self):
        with pytest.raises(BadRequest):
            parse_create_payload({})
        with pytest.raises(BadRequest):
            parse_create_payload(
                {
                    "workload": "tpch/join1",
                    "csv": {"left": {}, "right": {}},
                }
            )

    def test_csv_upload_parsed(self):
        spec = parse_create_payload(
            {
                "csv": {
                    "left": {"name": "R", "text": "A1,A2\n1,2\n"},
                    "right": {"name": "P", "text": "B1\n1\n"},
                },
                "infer_types": True,
            }
        )
        assert spec.instance is not None
        assert spec.instance.left.rows == ((1, 2),)
        assert "inline" in spec.instance_spec

    def test_csv_without_header_rejected(self):
        with pytest.raises(BadRequest):
            parse_create_payload(
                {
                    "csv": {
                        "left": {"name": "R", "text": ""},
                        "right": {"name": "P", "text": "B1\n1\n"},
                    }
                }
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(BadRequest):
            parse_create_payload(
                {"workload": "tpch/join1", "max_questions": -1}
            )


class TestAnswerPayload:
    def test_valid(self):
        assert parse_answer_payload(
            {"question_id": 3, "label": "+"}
        ) == (3, Label.POSITIVE)

    @pytest.mark.parametrize(
        "payload",
        [
            {"question_id": "3", "label": "+"},
            {"question_id": True, "label": "+"},
            {"label": "+"},
            {"question_id": 0, "label": "positive"},
            {"question_id": 0, "label": 1},
            {"question_id": 0},
            "not a dict",
        ],
    )
    def test_invalid(self, payload):
        with pytest.raises(BadRequest):
            parse_answer_payload(payload)

    def test_parse_label_matches_serializer_strictness(self):
        assert parse_label("-") is Label.NEGATIVE
        with pytest.raises(BadRequest):
            parse_label("negative")


class TestIndexCache:
    def test_value_identical_instances_share_index(self):
        cache = IndexCache()
        index_a, hit_a = cache.get_or_build(small_instance())
        index_b, hit_b = cache.get_or_build(small_instance())
        assert index_a is index_b
        assert (hit_a, hit_b) == (False, True)
        assert cache.hit_ratio == 0.5

    def test_cell_types_distinguish_instances(self):
        one = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        one_str = Instance(
            Relation.build("R", ["A1"], [("1",)]),
            Relation.build("P", ["B1"], [("1",)]),
        )
        assert instance_fingerprint(one) != instance_fingerprint(one_str)

    def test_bool_and_int_cells_distinguished(self):
        true_inst = Instance(
            Relation.build("R", ["A1"], [(True,)]),
            Relation.build("P", ["B1"], [(True,)]),
        )
        int_inst = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        assert instance_fingerprint(true_inst) != instance_fingerprint(
            int_inst
        )

    def test_lru_eviction(self):
        cache = IndexCache(capacity=2)
        cache.get_or_build(small_instance(1))
        cache.get_or_build(small_instance(2))
        cache.get_or_build(small_instance(1))  # touch 1 → 2 is LRU
        cache.get_or_build(small_instance(5))  # evicts 2
        assert len(cache) == 2
        _, hit = cache.get_or_build(small_instance(2))
        assert not hit

    def test_builtin_workload_fingerprint_deterministic(self):
        a = builtin_instance("synthetic/1", seed=3)
        b = builtin_instance("synthetic/1", seed=3)
        assert instance_fingerprint(a) == instance_fingerprint(b)
        c = builtin_instance("synthetic/1", seed=4)
        assert instance_fingerprint(a) != instance_fingerprint(c)


def make_manager(**kwargs):
    kwargs.setdefault("index_cache", IndexCache())
    return SessionManager(**kwargs)


def csv_spec(value=1, strategy="TD", seed=0, max_questions=None):
    return parse_create_payload(
        {
            "csv": {
                "left": {"name": "R", "text": f"A1,A2\n{value},2\n3,4\n"},
                "right": {"name": "P", "text": f"B1\n{value}\n3\n"},
            },
            "infer_types": True,
            "strategy": strategy,
            "seed": seed,
            "max_questions": max_questions,
        }
    )


class TestSessionManager:
    def test_create_get_delete(self):
        manager = make_manager()
        managed = manager.create(csv_spec())
        assert manager.get(managed.session_id) is managed
        manager.delete(managed.session_id)
        with pytest.raises(NotFound):
            manager.get(managed.session_id)
        with pytest.raises(NotFound):
            manager.delete(managed.session_id)

    def test_capacity_limit(self):
        manager = make_manager(max_sessions=2)
        manager.create(csv_spec(1))
        manager.create(csv_spec(2))
        with pytest.raises(CapacityExceeded):
            manager.create(csv_spec(3))

    def test_ttl_eviction_uses_idle_time(self):
        now = [0.0]
        manager = make_manager(
            ttl_seconds=10.0, clock=lambda: now[0]
        )
        stale = manager.create(csv_spec(1))
        now[0] = 6.0
        fresh = manager.create(csv_spec(2))
        manager.get(stale.session_id)  # touch: resets the idle clock
        now[0] = 12.0
        assert {m.session_id for m in manager.list_sessions()} == {
            stale.session_id,
            fresh.session_id,
        }
        now[0] = 25.0
        assert manager.list_sessions() == []
        assert manager.stats()["expired_total"] == 2

    def test_sessions_on_same_data_share_index(self):
        manager = make_manager()
        a = manager.create(csv_spec(1))
        b = manager.create(csv_spec(1, strategy="BU", seed=9))
        assert a.session.index is b.session.index
        assert not a.cache_hit and b.cache_hit
        assert a.session.state is not b.session.state

    def test_manager_snapshot_resume_round_trip(self):
        manager = make_manager()
        managed = manager.create(csv_spec(1, strategy="BU"))
        session = managed.session
        question = session.propose()
        session.answer(question.question_id, Label.NEGATIVE)
        payload = manager.snapshot(managed.session_id)
        assert payload["kind"] == "session_snapshot"
        resumed = manager.resume(payload)
        assert resumed.session_id != managed.session_id
        assert (
            resumed.session.state.labeled_classes()
            == session.state.labeled_classes()
        )
        assert resumed.session.index is session.index  # cache hit
        assert resumed.cache_hit

    def test_resume_rejects_garbage(self):
        manager = make_manager()
        with pytest.raises(BadRequest):
            manager.resume({"instance": {"builtin": {}}})
        with pytest.raises(BadRequest):
            manager.resume({"nonsense": True})


class TestAppRouting:
    """Routing-level behaviour without a socket."""

    def dispatch(self, app, method, path, payload=None):
        return asyncio.run(app.dispatch(method, path, payload))

    def test_unknown_session_is_404(self):
        app = ServiceApp(make_manager())
        status, body = self.dispatch(app, "GET", "/sessions/nope")
        assert status == 404
        assert body["error"] == "not_found"

    def test_unknown_route_is_404(self):
        app = ServiceApp(make_manager())
        status, _ = self.dispatch(app, "GET", "/frobnicate")
        assert status == 404

    def test_stats_route(self):
        app = ServiceApp(make_manager())
        status, body = self.dispatch(app, "GET", "/stats")
        assert status == 200
        assert body["index_cache"]["hits"] == 0

    def test_create_question_answer_flow(self):
        app = ServiceApp(make_manager())
        status, created = self.dispatch(
            app,
            "POST",
            "/sessions",
            {
                "csv": {
                    "left": {"name": "R", "text": "A1,A2\n1,2\n3,4\n"},
                    "right": {"name": "P", "text": "B1\n1\n3\n"},
                },
                "infer_types": True,
                "strategy": "BU",
            },
        )
        assert status == 201
        sid = created["session_id"]
        status, question = self.dispatch(
            app, "GET", f"/sessions/{sid}/question"
        )
        assert status == 200 and not question["done"]
        # Wrong question id → conflict, session unharmed.
        status, body = self.dispatch(
            app,
            "POST",
            f"/sessions/{sid}/answer",
            {"question_id": question["question_id"] + 5, "label": "+"},
        )
        assert status == 409
        status, body = self.dispatch(
            app,
            "POST",
            f"/sessions/{sid}/answer",
            {"question_id": question["question_id"], "label": "-"},
        )
        assert status == 200
        assert body["progress"]["interactions"] == 1
        status, body = self.dispatch(
            app, "GET", f"/sessions/{sid}/predicate"
        )
        assert status == 200 and "predicate" in body

    def test_bad_label_is_400_not_silent_negative(self):
        app = ServiceApp(make_manager())
        _, created = self.dispatch(
            app,
            "POST",
            "/sessions",
            {
                "csv": {
                    "left": {"name": "R", "text": "A1\n1\n2\n"},
                    "right": {"name": "P", "text": "B1\n1\n2\n"},
                },
                "infer_types": True,
            },
        )
        sid = created["session_id"]
        _, question = self.dispatch(
            app, "GET", f"/sessions/{sid}/question"
        )
        status, body = self.dispatch(
            app,
            "POST",
            f"/sessions/{sid}/answer",
            {"question_id": question["question_id"], "label": "negative"},
        )
        assert status == 400
        _, info = self.dispatch(app, "GET", f"/sessions/{sid}")
        assert info["progress"]["interactions"] == 0


class TestHardening:
    """Regressions for review findings: malformed input must be a clean
    4xx, and a full server must reject before doing expensive work."""

    def test_boolean_ints_rejected(self):
        with pytest.raises(BadRequest):
            parse_create_payload(
                {"workload": "tpch/join1", "seed": True}
            )
        with pytest.raises(BadRequest):
            parse_create_payload(
                {"workload": "tpch/join1", "max_questions": False}
            )

    def test_ragged_csv_is_bad_request_with_type_inference(self):
        for infer_types in (False, True):
            with pytest.raises(BadRequest):
                parse_create_payload(
                    {
                        "csv": {
                            "left": {"name": "R", "text": "A,B\n1\n"},
                            "right": {"name": "P", "text": "C\n1\n"},
                        },
                        "infer_types": infer_types,
                    }
                )

    def test_full_server_rejects_before_building_index(self):
        calls = []

        class CountingCache(IndexCache):
            def get_or_build(self, instance):
                calls.append(instance)
                return super().get_or_build(instance)

        manager = make_manager(
            index_cache=CountingCache(), max_sessions=1
        )
        manager.create(csv_spec(1))
        assert len(calls) == 1
        with pytest.raises(CapacityExceeded):
            manager.create(csv_spec(2))
        with pytest.raises(CapacityExceeded):
            manager.resume(
                {"instance": {"inline": {}}, "labeled": []}
            )
        assert len(calls) == 1  # neither rejected request built anything

    def test_malformed_content_length_gets_400(self):
        import socket

        from repro.service import ServiceServer

        with ServiceServer() as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /stats HTTP/1.1\r\n"
                    b"Content-Length: abc\r\n\r\n"
                )
                response = sock.recv(4096)
        assert response.startswith(b"HTTP/1.1 400")

    def test_null_seed_materialises_so_snapshots_resume(self):
        spec = parse_create_payload(
            {"workload": "tpch/join1", "seed": None}
        )
        assert isinstance(spec.seed, int)

    def test_builtin_cache_hit_skips_regeneration(self, monkeypatch):
        import repro.service.protocol as protocol_module

        calls = []
        real = protocol_module.builtin_instance

        def counting(name, seed=0, scale=1.0):
            calls.append(name)
            return real(name, seed=seed, scale=scale)

        monkeypatch.setattr(
            protocol_module, "builtin_instance", counting
        )
        manager = make_manager()
        spec = parse_create_payload(
            {"workload": "synthetic/1", "seed": 0}
        )
        first = manager.create(spec)
        second = manager.create(spec)
        assert len(calls) == 1  # hit served without regenerating
        assert second.session.instance is first.session.instance
        assert second.session.index is first.session.index

    def test_csv_error_reports_physical_line_number(self):
        from repro.relational import read_csv_text

        with pytest.raises(ValueError, match="line 4"):
            read_csv_text("A,B\n1,2\n\n3\n", "R")
