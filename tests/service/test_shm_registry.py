"""The shared-memory index plane: registry leases, plane resolution,
cache attach tier, and kill ``-9`` of a publisher.

The acceptance properties:

* **single-flight publish** — for one fingerprint, exactly one process
  builds; everyone else waits for ``ready`` and attaches.
* **fenced takeover** — an expired publish lease is taken over with an
  epoch bump *and* a fresh segment generation; the deposed publisher's
  ``finish_publish`` is refused and its never-visible segment dropped.
* **no orphans** — ``kill -9`` of a mid-publish worker leaves zero
  ``/dev/shm`` segments once a survivor reaps and republishes, and a
  clean fleet shutdown unlinks everything it mapped.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core import SignatureIndex
from repro.core import index_shm
from repro.service import (
    IndexCache,
    SharedIndexPlane,
    ShmRegistry,
    ShmRegistryError,
    instance_fingerprint,
)
from repro.service.shm_registry import _segment_name

from ..conftest import make_random_instance
from ..properties.test_index_build import assert_identical

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

needs_shm = pytest.mark.skipif(
    not index_shm.shared_memory_available(),
    reason="POSIX shared memory unavailable",
)


class FakeClock:
    """Deterministic time for lease-expiry tests."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def registry(tmp_path, clock):
    reg = ShmRegistry(tmp_path / "fleet.db", clock=clock)
    yield reg
    reg.close()


FP = "a" * 64  # a fingerprint-shaped key


class TestRegistryLease:
    def test_first_caller_gets_the_publish_lease(self, registry):
        ticket = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        assert ticket.action == "publish"
        assert ticket.generation == 1
        assert ticket.epoch == 1
        assert ticket.name == _segment_name(FP, 1)
        assert ticket.stale_name is None

    def test_second_caller_waits(self, registry):
        registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        ticket = registry.begin_publish(FP, "w1", ttl_seconds=10.0)
        assert ticket.action == "wait"

    def test_publisher_reentry_refreshes_the_lease(
        self, registry, clock
    ):
        registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        clock.advance(8.0)
        again = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        assert again.action == "publish"
        assert again.generation == 1
        clock.advance(8.0)  # 16s after start, 8s after refresh
        assert registry.begin_publish(FP, "w1", 10.0).action == "wait"

    def test_finish_publish_flips_to_ready_with_own_ref(self, registry):
        ticket = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        assert registry.finish_publish(
            FP, "w0", ticket.generation, nbytes=512, ref_ttl_seconds=10.0
        )
        ready = registry.begin_publish(FP, "w1", ttl_seconds=10.0)
        assert ready.action == "ready"
        info = registry.acquire_attach(FP, "w1", ref_ttl_seconds=10.0)
        assert info is not None
        assert info.name == ticket.name
        assert info.nbytes == 512
        stats = registry.stats()
        assert stats["ready_segments"] == 1
        assert stats["ready_bytes"] == 512
        assert stats["refs"] == 2  # publisher + attacher

    def test_expired_lease_takeover_bumps_epoch_and_generation(
        self, registry, clock
    ):
        first = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        clock.advance(11.0)
        taken = registry.begin_publish(FP, "w1", ttl_seconds=10.0)
        assert taken.action == "publish"
        assert taken.generation == 2
        assert taken.epoch == 2
        assert taken.name == _segment_name(FP, 2)
        assert taken.stale_name == first.name

    def test_deposed_publisher_cannot_finish(self, registry, clock):
        registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        clock.advance(11.0)
        taken = registry.begin_publish(FP, "w1", ttl_seconds=10.0)
        # The original publisher finally finishes its build: fenced out.
        assert not registry.finish_publish(FP, "w0", 1, 100, 10.0)
        # The takeover publisher is fine.
        assert registry.finish_publish(
            FP, "w1", taken.generation, 100, 10.0
        )

    def test_abort_publish_clears_the_row(self, registry):
        ticket = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        assert registry.abort_publish(FP, "w0", ticket.generation)
        fresh = registry.begin_publish(FP, "w1", ttl_seconds=10.0)
        assert fresh.action == "publish"
        assert fresh.generation == 1  # generations restart with the row

    def test_acquire_attach_requires_ready(self, registry):
        assert registry.acquire_attach(FP, "w1", 10.0) is None
        registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        assert registry.acquire_attach(FP, "w1", 10.0) is None

    def test_heartbeat_renews_refs_and_leases(self, registry, clock):
        ticket = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        clock.advance(8.0)
        registry.heartbeat("w0", ttl_seconds=10.0)
        clock.advance(8.0)
        # Publishing lease is 8s old post-heartbeat: not expired.
        assert registry.begin_publish(FP, "w1", 10.0).action == "wait"
        registry.abort_publish(FP, "w0", ticket.generation)

    def test_forget_segment_forces_republish(self, registry):
        ticket = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        registry.finish_publish(FP, "w0", ticket.generation, 64, 10.0)
        registry.forget_segment(FP, ticket.name)
        assert registry.acquire_attach(FP, "w1", 10.0) is None
        assert registry.begin_publish(FP, "w1", 10.0).action == "publish"

    def test_release_owner_unlinks_refless_segments(self, registry):
        ticket = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        registry.finish_publish(FP, "w0", ticket.generation, 64, 10.0)
        registry.acquire_attach(FP, "w1", ref_ttl_seconds=10.0)
        # The attacher still holds a live ref: nothing to unlink.
        assert registry.release_owner("w0") == []
        # Last ref gone: the segment name comes back for unlinking.
        assert registry.release_owner("w1") == [ticket.name]
        assert registry.known_names() == []

    def test_reap_expired_publishing_and_refless_ready(
        self, registry, clock
    ):
        crashed = registry.begin_publish(FP, "w0", ttl_seconds=10.0)
        other_fp = "b" * 64
        ok = registry.begin_publish(other_fp, "w1", ttl_seconds=10.0)
        registry.finish_publish(other_fp, "w1", ok.generation, 64, 10.0)
        assert registry.reap() == []  # nothing expired yet
        clock.advance(11.0)
        # w0's publish lease and w1's ref both expired.
        doomed = set(registry.reap())
        assert doomed == {crashed.name, ok.name}
        assert registry.known_names() == []

    def test_closed_registry_raises(self, tmp_path, clock):
        reg = ShmRegistry(tmp_path / "fleet.db", clock=clock)
        reg.close()
        reg.close()  # idempotent
        with pytest.raises(ShmRegistryError):
            reg.begin_publish(FP, "w0", 10.0)


@needs_shm
class TestSharedIndexPlane:
    def _plane(self, tmp_path, owner, **kwargs):
        kwargs.setdefault("ttl_seconds", 30.0)
        return SharedIndexPlane(tmp_path / "fleet.db", owner, **kwargs)

    def test_publish_then_sibling_attaches_identically(self, tmp_path):
        rng = random.Random(31)
        instance = make_random_instance(rng, 3, 3, rows=10, values=3)
        fp = instance_fingerprint(instance)
        publisher = self._plane(tmp_path, "w0")
        sibling = self._plane(tmp_path, "w1")
        builds = []

        def build(inst):
            index = SignatureIndex(inst)
            builds.append(index)
            return index

        try:
            published, kind = publisher.get_or_build(fp, instance, build)
            assert kind == "publish"
            assert len(builds) == 1
            # The publisher's returned index is the shm-backed view.
            assert not published.packed_masks.flags.writeable
            assert_identical(published, builds[0])

            attached, kind = sibling.get_or_build(fp, instance, build)
            assert kind == "attach"
            assert len(builds) == 1  # sibling never built
            assert_identical(attached, builds[0])
            assert not attached.packed_masks.flags.writeable

            assert publisher.stats()["publishes"] == 1
            assert sibling.stats()["attaches"] == 1
            assert sibling.shared_bytes() == publisher.shared_bytes() > 0
        finally:
            publisher.close()
            sibling.close()
        assert not _segment_files(fp)

    def test_reattach_rebuilds_views_over_same_mapping(self, tmp_path):
        rng = random.Random(32)
        instance = make_random_instance(rng, 2, 2, rows=8, values=2)
        fp = instance_fingerprint(instance)
        plane = self._plane(tmp_path, "w0")
        try:
            first, _ = plane.get_or_build(fp, instance, SignatureIndex)
            # The cache evicted and asks again: same pages, fresh views.
            second, kind = plane.get_or_build(
                fp, instance, SignatureIndex
            )
            assert kind == "attach"
            assert plane.stats()["segments"] == 1
            assert_identical(second, first)
        finally:
            plane.close()

    def test_wait_timeout_degrades_to_private_build(self, tmp_path):
        rng = random.Random(33)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        fp = instance_fingerprint(instance)
        # Someone else holds the (unexpired) publish lease...
        other = ShmRegistry(tmp_path / "fleet.db")
        other.begin_publish(fp, "stuck", ttl_seconds=60.0)
        plane = self._plane(
            tmp_path, "w0", wait_timeout=0.1, poll_interval=0.01
        )
        try:
            index, kind = plane.get_or_build(fp, instance, SignatureIndex)
            assert kind == "build"
            assert index.packed_masks.flags.writeable  # private arrays
            stats = plane.stats()
            assert stats["private_fallbacks"] == 1
            assert stats["waits"] == 1
        finally:
            plane.close()
            other.close()

    def test_waiter_attaches_once_publisher_finishes(self, tmp_path):
        rng = random.Random(34)
        instance = make_random_instance(rng, 3, 3, rows=10, values=3)
        fp = instance_fingerprint(instance)
        publisher = self._plane(tmp_path, "w0")
        waiter = self._plane(
            tmp_path, "w1", wait_timeout=30.0, poll_interval=0.005
        )
        release = threading.Event()
        build_calls = []

        def slow_build(inst):
            build_calls.append(inst)
            release.wait(timeout=30.0)
            return SignatureIndex(inst)

        results = {}

        def publish_side():
            results["publish"] = publisher.get_or_build(
                fp, instance, slow_build
            )

        try:
            thread = threading.Thread(target=publish_side)
            thread.start()
            while not build_calls:  # publisher holds the lease
                time.sleep(0.005)
            waited = threading.Thread(
                target=lambda: results.update(
                    wait=waiter.get_or_build(fp, instance, slow_build)
                )
            )
            waited.start()
            time.sleep(0.05)  # the waiter is now polling
            release.set()
            thread.join(timeout=30.0)
            waited.join(timeout=30.0)
            assert len(build_calls) == 1  # single-flight across processes
            assert results["publish"][1] == "publish"
            assert results["wait"][1] == "attach"
            assert_identical(results["wait"][0], results["publish"][0])
        finally:
            release.set()
            publisher.close()
            waiter.close()
        assert not _segment_files(fp)

    def test_build_failure_aborts_the_lease(self, tmp_path):
        rng = random.Random(35)
        instance = make_random_instance(rng, 2, 2, rows=6, values=2)
        fp = instance_fingerprint(instance)
        plane = self._plane(tmp_path, "w0")

        def boom(inst):
            raise RuntimeError("build failed")

        try:
            with pytest.raises(RuntimeError, match="build failed"):
                plane.get_or_build(fp, instance, boom)
            # The lease is gone: a retry builds and publishes normally.
            index, kind = plane.get_or_build(fp, instance, SignatureIndex)
            assert kind == "publish"
        finally:
            plane.close()
        assert not _segment_files(fp)

    def test_if_available_returns_plane_or_none(self, tmp_path):
        plane = SharedIndexPlane.if_available(tmp_path / "fleet.db", "w0")
        assert plane is not None  # guarded by needs_shm
        plane.close()

    def test_close_is_idempotent(self, tmp_path):
        plane = self._plane(tmp_path, "w0")
        plane.close()
        plane.close()


def _segment_files(fingerprint: str) -> list[str]:
    """``/dev/shm`` entries for this fingerprint's segments."""
    prefix = _segment_name(fingerprint, 0).rsplit("_g", 1)[0]
    directory = "/dev/shm"
    if not os.path.isdir(directory):  # pragma: no cover - non-Linux
        return []
    return sorted(f for f in os.listdir(directory) if f.startswith(prefix))


# --- kill -9 of a mid-publish worker -----------------------------------------

_CRASH_PUBLISHER = """
import json, os, signal, sys

config = json.load(open(sys.argv[1]))

from repro.core import index_shm
from repro.service import ShmRegistry

registry = ShmRegistry(config["db"])
ticket = registry.begin_publish(
    config["fingerprint"], "doomed", ttl_seconds=config["ttl"]
)
assert ticket.action == "publish", ticket
# The segment exists but never flips to ready: the crash window.
shm = index_shm.create_segment(ticket.name, 4096)
print(ticket.name, flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""


@needs_shm
class TestPublisherKill9:
    def test_survivor_reaps_and_republishes(self, tmp_path):
        rng = random.Random(36)
        instance = make_random_instance(rng, 3, 3, rows=10, values=3)
        fp = instance_fingerprint(instance)
        db = str(tmp_path / "fleet.db")
        ttl = 0.5

        config = tmp_path / "config.json"
        config.write_text(
            json.dumps({"db": db, "fingerprint": fp, "ttl": ttl})
        )
        child = tmp_path / "crash_publisher.py"
        child.write_text(_CRASH_PUBLISHER)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, str(child), str(config)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        stale_name = result.stdout.strip()
        assert stale_name in _segment_files(fp)  # the orphan exists

        # Let the dead publisher's lease expire first, so the survivor's
        # very first begin_publish deterministically takes the lease
        # over (epoch + generation bump) rather than racing its own
        # background reaper for the expired row.
        time.sleep(ttl + 0.2)
        survivor = SharedIndexPlane(
            db,
            "survivor",
            ttl_seconds=ttl,
            wait_timeout=30.0,
            poll_interval=0.01,
        )
        try:
            index, kind = survivor.get_or_build(
                fp, instance, SignatureIndex
            )
            # The survivor waited out the dead lease, took it over with
            # a fresh generation, unlinked the orphan, and published.
            assert kind == "publish"
            reference = SignatureIndex(instance)
            assert_identical(index, reference)
            files = _segment_files(fp)
            assert stale_name not in files  # orphan unlinked
            assert files == [_segment_name(fp, 2)]
            survivor.reap()  # no false positives on the live segment
            assert _segment_files(fp) == [_segment_name(fp, 2)]
        finally:
            survivor.close()
        assert not _segment_files(fp)  # zero orphans after shutdown


# --- the cache's attach tier -------------------------------------------------


@needs_shm
class TestIndexCacheAttachTier:
    def test_sibling_caches_share_one_build(self, tmp_path):
        rng = random.Random(41)
        instance = make_random_instance(rng, 3, 3, rows=10, values=3)
        db = tmp_path / "fleet.db"
        plane_a = SharedIndexPlane(db, "w0", ttl_seconds=30.0)
        plane_b = SharedIndexPlane(db, "w1", ttl_seconds=30.0)
        cache_a = IndexCache(capacity=4, shared=plane_a)
        cache_b = IndexCache(capacity=4, shared=plane_b)
        try:
            index_a, cached = cache_a.get_or_build(instance)
            assert not cached
            assert cache_a.misses == 1
            assert cache_a.builds == 1
            assert cache_a.publishes == 1
            assert cache_a.attach_hits == 0

            # Warm in A: an ordinary LRU hit, no plane traffic.
            again, cached = cache_a.get_or_build(instance)
            assert cached and again is index_a
            assert cache_a.hits == 1

            # Cold in B: resolved by attach, not build.
            index_b, cached = cache_b.get_or_build(instance)
            assert not cached
            assert cache_b.misses == 1
            assert cache_b.attach_hits == 1
            assert cache_b.builds == 0
            assert cache_b.misses == cache_b.attach_hits + cache_b.builds
            assert_identical(index_b, index_a)

            # Both processes report the one machine-wide copy; neither
            # holds a private duplicate.
            resident_a = cache_a.resident_bytes()
            resident_b = cache_b.resident_bytes()
            assert resident_a["private_bytes"] == 0
            assert resident_b["private_bytes"] == 0
            assert (
                resident_a["shared_bytes"]
                == resident_b["shared_bytes"]
                > 0
            )

            stats = cache_b.stats()
            assert stats["attach_hits"] == 1
            assert stats["builds"] == 0
            assert stats["shared"]["attaches"] == 1
        finally:
            cache_a = cache_b = None
            plane_a.close()
            plane_b.close()

    def test_async_miss_uses_the_attach_tier(self, tmp_path):
        import asyncio

        rng = random.Random(42)
        instance = make_random_instance(rng, 2, 3, rows=8, values=2)
        db = tmp_path / "fleet.db"
        plane_a = SharedIndexPlane(db, "w0", ttl_seconds=30.0)
        plane_b = SharedIndexPlane(db, "w1", ttl_seconds=30.0)
        cache_a = IndexCache(capacity=4, shared=plane_a)
        cache_b = IndexCache(capacity=4, shared=plane_b)
        try:
            cache_a.get_or_build(instance)

            async def attach():
                return await cache_b.get_or_build_async(instance)

            index, cached = asyncio.run(attach())
            assert not cached
            assert cache_b.attach_hits == 1
            assert cache_b.builds == 0
            assert not index.packed_masks.flags.writeable
        finally:
            plane_a.close()
            plane_b.close()


class TestIndexCacheWithoutPlane:
    def test_private_builds_and_resident_bytes(self):
        rng = random.Random(43)
        instance = make_random_instance(rng, 2, 2, rows=8, values=2)
        cache = IndexCache(capacity=4)
        index, cached = cache.get_or_build(instance)
        assert not cached
        assert cache.builds == 1
        assert cache.attach_hits == 0
        assert cache.publishes == 0
        resident = cache.resident_bytes()
        assert resident["private_bytes"] == index.nbytes > 0
        assert resident["shared_bytes"] == 0
        assert "shared" not in cache.stats()

    def test_eviction_drops_resident_accounting(self):
        rng = random.Random(44)
        first = make_random_instance(rng, 2, 2, rows=8, values=2)
        second = make_random_instance(rng, 2, 2, rows=8, values=2)
        assert instance_fingerprint(first) != instance_fingerprint(second)
        cache = IndexCache(capacity=1)
        cache.get_or_build(first)
        index_two, _ = cache.get_or_build(second)
        assert len(cache) == 1
        assert (
            cache.resident_bytes()["private_bytes"] == index_two.nbytes
        )
