"""The plan cache's machine-wide shared tier.

The acceptance properties, mirroring the index plane's but under the
plan tier's never-wait semantics:

* **cross-owner reuse** — one owner publishes an encoded table, every
  other owner attaches a byte-identical copy.
* **never waits** — a key mid-publish reads as a miss and a losing
  publisher skips, it does not block.
* **no orphans** — ``kill -9`` of a mid-publish process leaves zero
  ``/dev/shm`` segments and zero registry rows once a survivor reaps,
  and a clean close releases every ref and lease this owner held.
"""

from __future__ import annotations

import json
import math
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.core import PlanCache, decode_table, encode_table, index_shm
from repro.service import PLAN_SEGMENT_PREFIX, SharedPlanTier

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

needs_shm = pytest.mark.skipif(
    not index_shm.shared_memory_available(),
    reason="POSIX shared memory unavailable",
)

TABLE = {3: (1, 4), 8: (math.inf, math.inf), 11: (0, 0)}
KEY = "L2S|" + "c" * 64 + "|3-,8+"


def _plan_files() -> list[str]:
    directory = "/dev/shm"
    if not os.path.isdir(directory):  # pragma: no cover - non-Linux
        return []
    return sorted(
        entry
        for entry in os.listdir(directory)
        if entry.startswith(PLAN_SEGMENT_PREFIX)
    )


def _registry_rows(db_path) -> tuple[int, int]:
    connection = sqlite3.connect(db_path)
    try:
        segments = connection.execute(
            "SELECT COUNT(*) FROM plan_segments WHERE state = 'ready'"
        ).fetchone()[0]
        refs = connection.execute(
            "SELECT COUNT(*) FROM plan_refs"
        ).fetchone()[0]
        return segments, refs
    finally:
        connection.close()


@needs_shm
class TestSharedPlanTier:
    def test_cross_owner_publish_then_attach(self, tmp_path):
        db = tmp_path / "plan.db"
        writer = SharedPlanTier(db, "w0", ttl_seconds=5.0)
        reader = SharedPlanTier(db, "w1", ttl_seconds=5.0)
        payload = encode_table(TABLE)
        try:
            assert writer.get(KEY) is None  # nothing published yet
            assert writer.publish(KEY, payload) is True
            got = reader.get(KEY)
            assert got == payload
            assert decode_table(got) == TABLE
            assert reader.stats()["attaches"] == 1
            assert writer.stats()["publishes"] == 1
        finally:
            writer.close()
            reader.close()
        assert _plan_files() == []
        assert _registry_rows(db) == (0, 0)

    def test_republish_of_a_ready_key_skips(self, tmp_path):
        db = tmp_path / "plan.db"
        tier = SharedPlanTier(db, "w0", ttl_seconds=5.0)
        sibling = SharedPlanTier(db, "w1", ttl_seconds=5.0)
        payload = encode_table(TABLE)
        try:
            assert tier.publish(KEY, payload)
            assert sibling.publish(KEY, payload) is False
            assert sibling.stats()["publish_skips"] == 1
        finally:
            tier.close()
            sibling.close()
        assert _plan_files() == []

    def test_mid_publish_key_reads_as_miss_and_publish_skips(
        self, tmp_path
    ):
        """Never-wait semantics: while one owner holds the publish
        lease, siblings neither block on get nor steal on publish."""
        db = tmp_path / "plan.db"
        tier = SharedPlanTier(db, "w0", ttl_seconds=5.0)
        sibling = SharedPlanTier(db, "w1", ttl_seconds=5.0)
        try:
            # Take the single-flight lease without finishing.
            ticket = tier._registry.begin_publish(KEY, "w0", 5.0)
            assert ticket.action == "publish"
            started = time.monotonic()
            assert sibling.get(KEY) is None
            assert sibling.publish(KEY, encode_table(TABLE)) is False
            assert time.monotonic() - started < 2.0  # never waited
            tier._registry.abort_publish(KEY, "w0", ticket.generation)
        finally:
            tier.close()
            sibling.close()
        assert _plan_files() == []

    def test_release_drops_the_ref_and_close_unlinks(self, tmp_path):
        db = tmp_path / "plan.db"
        writer = SharedPlanTier(db, "w0", ttl_seconds=5.0)
        reader = SharedPlanTier(db, "w1", ttl_seconds=5.0)
        try:
            writer.publish(KEY, encode_table(TABLE))
            assert reader.get(KEY) is not None
            reader.release(KEY)  # local LRU evicted the entry
            assert reader.stats()["releases"] == 1
            assert reader.stats()["refs_held"] == 0
            # The writer's own ref still pins the segment.
            assert len(_plan_files()) == 1
        finally:
            reader.close()
            writer.close()
        assert _plan_files() == []
        assert _registry_rows(db) == (0, 0)

    def test_vanished_segment_degrades_to_miss(self, tmp_path):
        db = tmp_path / "plan.db"
        tier = SharedPlanTier(db, "w0", ttl_seconds=5.0)
        other = SharedPlanTier(db, "w1", ttl_seconds=5.0)
        try:
            tier.publish(KEY, encode_table(TABLE))
            for name in _plan_files():
                index_shm.unlink_segment(name)
            assert other.get(KEY) is None  # forgotten, not raised
            # The row was dropped, so a recompute can republish.
            assert other.publish(KEY, encode_table(TABLE))
            assert other.get(KEY) is not None
        finally:
            tier.close()
            other.close()
        assert _plan_files() == []

    def test_plan_cache_end_to_end_over_the_tier(self, tmp_path):
        """Two per-process caches over one registry: worker A computes
        once, worker B's first probe is a shared hit, and the counter
        identity holds on both sides."""
        db = tmp_path / "plan.db"
        cache_a = PlanCache(
            8, shared=SharedPlanTier(db, "wA", ttl_seconds=5.0)
        )
        cache_b = PlanCache(
            8, shared=SharedPlanTier(db, "wB", ttl_seconds=5.0)
        )
        try:
            assert cache_a.get(KEY) is None
            cache_a.install(KEY, TABLE)
            assert cache_b.get(KEY) == TABLE
            a, b = cache_a.stats(), cache_b.stats()
            assert a["computes"] == 1 and a["publishes"] == 1
            assert b["shared_hits"] == 1 and b["computes"] == 0
            for stats in (a, b):
                assert stats["misses"] == (
                    stats["local_hits"]
                    + stats["shared_hits"]
                    + stats["computes"]
                )
        finally:
            cache_a.close()
            cache_b.close()
        assert _plan_files() == []
        assert _registry_rows(db) == (0, 0)

    def test_if_available_honours_shm_probe(self, tmp_path, monkeypatch):
        tier = SharedPlanTier.if_available(tmp_path / "p.db", "w0")
        assert tier is not None
        tier.close()
        monkeypatch.setattr(
            index_shm, "shared_memory_available", lambda: False
        )
        assert SharedPlanTier.if_available(tmp_path / "p.db", "w0") is None


_CRASH_PUBLISHER = """
import json, os, signal, sys

config = json.load(open(sys.argv[1]))

from repro.core import index_shm
from repro.service import ShmRegistry
from repro.service.plan_registry import PLAN_SEGMENT_PREFIX

registry = ShmRegistry(
    config["db"],
    segments_table="plan_segments",
    refs_table="plan_refs",
    segment_prefix=PLAN_SEGMENT_PREFIX,
)
ticket = registry.begin_publish(config["key"], "doomed", config["ttl"])
assert ticket.action == "publish", ticket
# The segment exists but never flips to ready: the crash window.
shm = index_shm.create_segment(ticket.name, 4096)
print(ticket.name, flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""


@needs_shm
class TestPublisherKill9:
    def test_survivor_reaps_and_republishes(self, tmp_path):
        db = str(tmp_path / "plan.db")
        ttl = 0.5
        config = tmp_path / "config.json"
        config.write_text(json.dumps({"db": db, "key": KEY, "ttl": ttl}))
        child = tmp_path / "crash_plan_publisher.py"
        child.write_text(_CRASH_PUBLISHER)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, str(child), str(config)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        stale_name = result.stdout.strip()
        assert stale_name in _plan_files()  # the orphan exists

        # Let the dead publisher's lease expire so the survivor's reap
        # deterministically reclaims the row and the segment file.
        time.sleep(ttl + 0.2)
        survivor = SharedPlanTier(db, "survivor", ttl_seconds=ttl)
        try:
            survivor.reap()
            assert stale_name not in _plan_files()
            payload = encode_table(TABLE)
            assert survivor.publish(KEY, payload)
            assert survivor.get(KEY) == payload
        finally:
            survivor.close()
        assert _plan_files() == []
        assert _registry_rows(db) == (0, 0)
