"""The PR 10 streaming plane: EventBus semantics, SSE end-to-end over
real HTTP, streamed-vs-polled parity, the service-feed broadcaster and
the live dashboard.

The acceptance property mirrors the bench gate: a streamed session and
a polled session over the same (strategy, seed) must produce the
bit-for-bit identical question sequence and final predicate — streaming
changes *when* the client learns the next question, never *what* is
asked.  The broadcaster tests pin the fan-out plane's contract: every
event reaches every subscriber, a non-reading subscriber is evicted
instead of wedging the feed, and detaching restores the bus's counts.
"""

from __future__ import annotations

import asyncio
import itertools
import queue
import socket
import threading
import time

import pytest

from repro.core import PerfectOracle, SignatureIndex
from repro.data import generate_tpch, tpch_workloads
from repro.service import (
    IndexCache,
    ServiceClient,
    ServiceServer,
    SessionManager,
)
from repro.service.events import SERVICE_FEED, EventBus, sse_frame

from .test_service_end_to_end import remote_answerer

WORKLOAD_NAME = "tpch/join4"
TPCH_SEED = 0
TPCH_SCALE = 1.0


@pytest.fixture(scope="module")
def join4():
    return tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]


@pytest.fixture(scope="module")
def join4_index(join4):
    return SignatureIndex(join4.instance)


def make_server(**kwargs):
    kwargs.setdefault("index_cache", IndexCache())
    return ServiceServer(manager=SessionManager(**kwargs))


# --- EventBus unit tests -----------------------------------------------------


def run_on_loop(coro):
    return asyncio.run(coro)


class TestEventBus:
    def test_publish_stamps_seq_and_topic(self):
        bus = EventBus()
        first = bus.publish("s1", "question", {"x": 1})
        second = bus.publish("s1", "answer", {"x": 2})
        other = bus.publish("s2", "question", {})
        assert (first["seq"], second["seq"], other["seq"]) == (1, 2, 1)
        assert second["global_seq"] == 2
        assert other["global_seq"] == 3
        assert first["event"] == "question"
        assert first["topic"] == "s1"
        assert bus.topic_seq("s1") == 2

    def test_subscriber_receives_own_topic_only(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("s1")
            bus.publish("s1", "question", {"n": 1})
            bus.publish("s2", "question", {"n": 2})
            kind, frame = await asyncio.wait_for(sub.get(), timeout=5)
            assert kind == "question"
            assert b'"n": 1' in frame
            assert sub.queue.empty()
            sub.close()

        run_on_loop(scenario())

    def test_service_feed_sees_every_topic(self):
        async def scenario():
            bus = EventBus()
            feed = bus.subscribe(SERVICE_FEED)
            bus.publish("s1", "question", {"n": 1})
            bus.publish("s2", "answer", {"n": 2})
            kinds = []
            for _ in range(2):
                kind, _ = await asyncio.wait_for(feed.get(), timeout=5)
                kinds.append(kind)
            assert kinds == ["question", "answer"]
            feed.close()

        run_on_loop(scenario())

    def test_drop_oldest_on_overflow(self):
        async def scenario():
            bus = EventBus(queue_limit=2)
            sub = bus.subscribe("s1")
            for n in range(5):
                bus.publish("s1", "question", {"n": n})
            assert sub.dropped == 3
            assert bus.dropped_total == 3
            # The two newest events survive the shedding.
            _, frame = await sub.get()
            assert b'"n": 3' in frame
            _, frame = await sub.get()
            assert b'"n": 4' in frame
            sub.close()

        run_on_loop(scenario())

    def test_cross_thread_publish_reaches_loop_subscriber(self):
        async def scenario():
            bus = EventBus()
            sub = bus.subscribe("s1")
            thread = threading.Thread(
                target=bus.publish, args=("s1", "question", {"n": 7})
            )
            thread.start()
            kind, frame = await asyncio.wait_for(sub.get(), timeout=5)
            thread.join()
            assert kind == "question"
            assert b'"n": 7' in frame
            sub.close()

        run_on_loop(scenario())

    def test_service_sink_sees_frames_only_while_attached(self):
        async def scenario():
            bus = EventBus()
            frames = []
            bus.service_sink = frames.append
            bus.publish("s1", "question", {"n": 0})
            assert frames == []  # no sink subscriber registered yet
            bus.sink_attached(asyncio.get_running_loop())
            bus.publish("s1", "question", {"n": 1})
            assert len(frames) == 1
            counts = bus.subscriber_counts()
            assert counts["service"] == 1
            bus.sink_detached()
            bus.publish("s1", "question", {"n": 2})
            assert len(frames) == 1
            assert bus.subscriber_counts()["service"] == 0

        run_on_loop(scenario())

    def test_has_subscribers_ignores_service_feed(self):
        async def scenario():
            bus = EventBus()
            feed = bus.subscribe(SERVICE_FEED)
            assert not bus.has_subscribers("s1")
            sub = bus.subscribe("s1")
            assert bus.has_subscribers("s1")
            sub.close()
            assert not bus.has_subscribers("s1")
            feed.close()

        run_on_loop(scenario())

    def test_sse_frame_shape(self):
        frame = sse_frame(
            {"event": "question", "seq": 3, "payload": True}
        )
        text = frame.decode("utf-8")
        assert text.startswith("id: 3\nevent: question\ndata: ")
        assert text.endswith("\n\n")

    def test_dashboard_aggregates_incrementally(self):
        bus = EventBus()
        bus.publish(
            "s1", "question", {"strategy": "TD", "source": "speculation"}
        )
        bus.publish(
            "s1",
            "answer",
            {
                "strategy": "TD",
                "label": "+",
                "speculation_hit": True,
                "removed_classes": 4,
            },
        )
        bus.publish(
            "s1",
            "done",
            {"strategy": "TD", "progress": {"interactions": 9}},
        )
        totals = bus.dashboard.payload(bus)["totals"]
        assert totals["events_total"] == 3
        assert totals["questions_total"] == 1
        assert totals["answers_positive"] == 1
        assert totals["speculation_hits"] == 1
        assert totals["classes_resolved"] == 4
        assert totals["sessions_completed"] == 1
        assert totals["interactions_to_done_total"] == 9
        by_strategy = bus.dashboard.payload(bus)["by_strategy"]
        assert by_strategy["TD"] == {
            "questions": 1,
            "answers": 1,
            "completed": 1,
        }


# --- SSE end-to-end ----------------------------------------------------------


def drive_polled(client, session_id, oracle):
    """Ask/answer polling; returns (question keys, final payload)."""
    answer = remote_answerer(oracle)
    sequence = []
    while (question := client.next_question(session_id)) is not None:
        sequence.append(
            (
                question["question_id"],
                tuple(question["left"]["row"]),
                tuple(question["right"]["row"]),
            )
        )
        client.post_answer(
            session_id, question["question_id"], answer(question)
        )
    return sequence, client.predicate(session_id)


def drive_streamed(client, session_id, oracle):
    """Answers over POST, questions via the pushed SSE feed; returns
    (question keys, final payload, events seen)."""
    answer = remote_answerer(oracle)
    events: queue.Queue = queue.Queue()

    def consume():
        try:
            for event in client.stream_session(session_id):
                events.put(event)
                if event["event"] in ("done", "reconnect"):
                    return
        finally:
            events.put(None)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    sequence, seen = [], []

    def next_question():
        while True:
            event = events.get(timeout=60)
            if event is not None:
                seen.append(event)
            if event is None or event["event"] == "done":
                return None
            if event["event"] == "question":
                return event

    question = next_question()
    while question is not None:
        sequence.append(
            (
                question["question_id"],
                tuple(question["left"]["row"]),
                tuple(question["right"]["row"]),
            )
        )
        client.post_answer(
            session_id, question["question_id"], answer(question)
        )
        question = next_question()
    consumer.join(timeout=30)
    return sequence, client.predicate(session_id), seen


class TestSessionStream:
    @pytest.mark.parametrize("strategy", ["TD", "L2S"])
    def test_streamed_session_matches_polled_bit_for_bit(
        self, join4, strategy
    ):
        oracle = PerfectOracle(join4.instance, join4.goal)
        with make_server() as server:
            with ServiceClient(server.host, server.port) as client:
                polled_info = client.create_session(
                    workload=WORKLOAD_NAME,
                    strategy=strategy,
                    seed=11,
                    workload_seed=TPCH_SEED,
                    scale=TPCH_SCALE,
                )
                polled_seq, polled_final = drive_polled(
                    client, polled_info["session_id"], oracle
                )
                streamed_info = client.create_session(
                    workload=WORKLOAD_NAME,
                    strategy=strategy,
                    seed=11,
                    workload_seed=TPCH_SEED,
                    scale=TPCH_SCALE,
                )
                streamed_seq, streamed_final, seen = drive_streamed(
                    client, streamed_info["session_id"], oracle
                )
        assert streamed_seq == polled_seq
        assert (
            streamed_final["predicate"]["pairs"]
            == polled_final["predicate"]["pairs"]
        )
        # The stream opens with the hello snapshot and ends with done.
        assert seen[0]["event"] == "hello"
        assert seen[-1]["event"] == "done"
        # The snapshot question is authoritative; every later question
        # arrives exactly once through the feed.
        questions = [e for e in seen if e["event"] == "question"]
        assert questions[0]["source"] == "snapshot"
        assert len(questions) == len(streamed_seq)

    def test_stream_pushes_answer_events_with_progress(self, join4):
        oracle = PerfectOracle(join4.instance, join4.goal)
        with make_server() as server:
            with ServiceClient(server.host, server.port) as client:
                info = client.create_session(
                    workload=WORKLOAD_NAME,
                    strategy="TD",
                    seed=3,
                    workload_seed=TPCH_SEED,
                    scale=TPCH_SCALE,
                )
                _, _, seen = drive_streamed(
                    client, info["session_id"], oracle
                )
        answers = [e for e in seen if e["event"] == "answer"]
        assert answers, "answer events must ride the session feed"
        for event in answers:
            assert event["label"] in ("+", "-")
            assert "interactions" in event["progress"]
        done = seen[-1]
        assert done["interactions"] == len(answers)

    def test_stream_of_unknown_session_is_404(self):
        with make_server() as server:
            with ServiceClient(server.host, server.port) as client:
                with pytest.raises(Exception) as excinfo:
                    next(iter(client.stream_session("nope")))
                assert "404" in str(
                    excinfo.value
                ) or "unknown" in str(excinfo.value)

    def test_finished_session_streams_done_immediately(self, join4):
        oracle = PerfectOracle(join4.instance, join4.goal)
        with make_server() as server:
            with ServiceClient(server.host, server.port) as client:
                info = client.create_session(
                    workload=WORKLOAD_NAME,
                    strategy="TD",
                    seed=5,
                    workload_seed=TPCH_SEED,
                    scale=TPCH_SCALE,
                )
                drive_polled(client, info["session_id"], oracle)
                events = list(
                    itertools.islice(
                        client.stream_session(info["session_id"]), 2
                    )
                )
        assert [e["event"] for e in events] == ["hello", "done"]


class TestServiceFeed:
    def test_feed_carries_all_sessions_and_dashboard(self, join4):
        oracle = PerfectOracle(join4.instance, join4.goal)
        with make_server() as server:
            with ServiceClient(server.host, server.port) as client:
                collected: queue.Queue = queue.Queue()
                feed_client = ServiceClient(server.host, server.port)

                def consume():
                    try:
                        for event in feed_client.stream_service():
                            collected.put(event)
                    except Exception:
                        pass
                    finally:
                        collected.put(None)

                consumer = threading.Thread(
                    target=consume, daemon=True
                )
                consumer.start()
                hello = collected.get(timeout=30)
                assert hello["event"] == "hello"
                assert hello["topic"] == SERVICE_FEED
                assert "totals" in hello["dashboard"]

                sids = []
                for seed, strategy in ((1, "TD"), (2, "L1S")):
                    info = client.create_session(
                        workload=WORKLOAD_NAME,
                        strategy=strategy,
                        seed=seed,
                        workload_seed=TPCH_SEED,
                        scale=TPCH_SCALE,
                    )
                    sids.append(info["session_id"])
                    drive_polled(client, info["session_id"], oracle)

                dashboard = client.dashboard()
                totals = dashboard["totals"]
                expected = totals["events_total"]
                seen = []
                deadline = time.monotonic() + 30
                while len(seen) < expected:
                    remaining = deadline - time.monotonic()
                    assert remaining > 0, (
                        f"feed delivered {len(seen)} of {expected}"
                    )
                    event = collected.get(timeout=remaining)
                    assert event is not None, "feed ended early"
                    seen.append(event)
                feed_client.close()
                consumer.join(timeout=30)

        topics = {e["topic"] for e in seen}
        assert set(sids) <= topics
        kinds = {e["event"] for e in seen}
        assert {"session_created", "question", "answer", "done"} <= kinds
        assert totals["sessions_completed"] == 2
        assert totals["answers_total"] > 0
        assert totals["events_dropped"] == 0
        assert dashboard["by_strategy"]["TD"]["completed"] == 1
        assert dashboard["by_strategy"]["L1S"]["completed"] == 1

    def test_slow_subscriber_is_evicted_not_wedged(self, join4):
        """A service-feed socket that never reads must be aborted once
        its pending buffer passes the cap — and the bus's subscriber
        count must drop back, proving ``sink_detached`` ran."""
        with make_server() as server:
            feed = server.app.service_feed
            feed.max_buffer_bytes = 8 * 1024
            bus = server.app.manager.events
            sock = socket.create_connection(
                (server.host, server.port)
            )
            try:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_RCVBUF, 4096
                )
                sock.sendall(
                    b"GET /events/stream HTTP/1.1\r\n"
                    b"Host: test\r\nContent-Length: 0\r\n\r\n"
                )
                deadline = time.monotonic() + 10
                while (
                    bus.subscriber_counts()["service"] < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert bus.subscriber_counts()["service"] == 1
                # Never read: pump events until the eviction lands.
                payload = {"blob": "x" * 1024}
                deadline = time.monotonic() + 30
                while bus.subscriber_counts()["service"] > 0:
                    assert time.monotonic() < deadline, (
                        "non-reading subscriber was never evicted"
                    )
                    bus.publish("s1", "question", payload)
                    time.sleep(0.002)
            finally:
                sock.close()

    def test_closing_subscriber_detaches_cleanly(self, join4):
        with make_server() as server:
            bus = server.app.manager.events
            with ServiceClient(server.host, server.port) as client:
                stream = client.stream_service()
                hello = next(stream)
                assert hello["event"] == "hello"
                deadline = time.monotonic() + 10
                while (
                    bus.subscriber_counts()["service"] < 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert bus.subscriber_counts()["service"] == 1
                stream.close()  # generator close tears the socket down
                deadline = time.monotonic() + 10
                while (
                    bus.subscriber_counts()["service"] > 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert bus.subscriber_counts()["service"] == 0
                served = bus.subscriber_counts()["served"]
                assert served >= 1


class TestClientStreamGuards:
    def test_request_refuses_stream_paths(self):
        """The retrying JSON ``_request`` path must never serve a
        stream subscription: a mid-body retry would silently replay
        every event since the snapshot."""
        client = ServiceClient("localhost", 1)
        with pytest.raises(ValueError):
            client._request("GET", "/sessions/abc/stream")
        with pytest.raises(ValueError):
            client._request("GET", "/events/stream")
        client.close()

    def test_stream_does_not_retry_after_body_began(self, join4):
        """Kill the server under a live stream: the client must raise
        (or end the stream), never reconnect-and-replay on its own."""
        oracle = PerfectOracle(join4.instance, join4.goal)
        server = make_server()
        server.start()
        try:
            client = ServiceClient(server.host, server.port, retries=3)
            info = client.create_session(
                workload=WORKLOAD_NAME,
                strategy="TD",
                seed=2,
                workload_seed=TPCH_SEED,
                scale=TPCH_SCALE,
            )
            stream = client.stream_session(info["session_id"])
            hello = next(stream)
            assert hello["event"] == "hello"
        finally:
            server.close()
        # The server is gone; the already-open stream may only end or
        # raise — a silent replayed subscription would yield a second
        # hello here.
        try:
            leftovers = [event["event"] for event in stream]
        except Exception:
            leftovers = []
        assert "hello" not in leftovers
        client.close()
