"""Durable session storage: backends, journaling, demote/rehydrate,
and kill-the-process crash recovery.

The acceptance scenario: a session with ≥ 10 recorded answers in the
SQLite store survives ``kill -9`` of its hosting process, and the
recovered session proposes the **identical remaining question
sequence** as an uninterrupted in-process run — for every serving
strategy (RND/BU/TD/L1S/L2S/L3S/IG) across the packed-word boundary
Ω ∈ {63, 64, 65}.  (OPT's exponential solver needs ≈ a minute per
session at the 16-class floor a ≥ 10-answer session requires, so the
kill matrix excludes it; its store path — identical stateless-strategy
serialisation — is covered by the every-strategy reopen-recovery test
on tiny instances below.)
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core import (
    InferenceSession,
    Label,
    SignatureIndex,
    strategy_by_name,
)
from repro.core.serialize import instance_to_dict
from repro.service import (
    BadRequest,
    IndexCache,
    MemorySessionStore,
    NotFound,
    ServiceClient,
    ServiceServer,
    SessionManager,
    SqliteSessionStore,
    StoreError,
)
from repro.service.protocol import CreateSpec

from ..conftest import make_random_instance

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


# --- helpers -----------------------------------------------------------------


def make_manager(**kwargs):
    kwargs.setdefault("index_cache", IndexCache())
    kwargs.setdefault("speculate", False)
    return SessionManager(**kwargs)


def boundary_instance(left_arity, right_arity, rows=6, seed=None):
    """A random instance with Ω = left_arity * right_arity attribute
    pairs (63/64/65 for the parametrised arities below)."""
    rng = random.Random(
        seed if seed is not None else left_arity * right_arity
    )
    return make_random_instance(
        rng,
        left_arity=left_arity,
        right_arity=right_arity,
        rows=rows,
        values=3,
    )


def inline_spec(instance, strategy="TD", seed=5):
    return CreateSpec(
        {"inline": instance_to_dict(instance)},
        instance,
        strategy_by_name(strategy).name,
        seed,
        None,
    )


class BiasedCoin:
    """Mostly-negative seeded answers — long sessions, both polarities."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def label(self, tuple_pair) -> Label:
        if self._rng.random() < 0.12:
            return Label.POSITIVE
        return Label.NEGATIVE


def drive(manager, managed, oracle, limit=None):
    """Answer questions via the manager until Γ (or ``limit`` answers);
    returns the asked class ids."""
    asked = []
    while limit is None or len(asked) < limit:
        question = manager.propose_question(managed)
        if question is None:
            break
        asked.append(question.class_id)
        manager.record_answer(
            managed, question.question_id, oracle.label(question.tuple_pair)
        )
    return asked


def reference_sequence(instance, strategy, seed, oracle):
    """The uninterrupted in-process question sequence and predicate."""
    session = InferenceSession(
        instance,
        strategy_by_name(strategy),
        index=SignatureIndex(instance),
        seed=seed,
    )
    asked = []
    while not session.is_finished():
        question = session.propose()
        asked.append(question.class_id)
        session.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
    return asked, session.current_predicate()


# --- store backends ----------------------------------------------------------


BACKENDS = {
    "memory": lambda tmp_path: MemorySessionStore(),
    "sqlite": lambda tmp_path: SqliteSessionStore(
        str(tmp_path / "sessions.db")
    ),
}


def checkpoint_payload(labeled):
    """A minimal well-formed snapshot payload with these labels."""
    return {
        "kind": "session_snapshot",
        "version": 1,
        "instance": {"builtin": {"name": "x", "seed": 0, "scale": 1.0}},
        "strategy": "TD",
        "seed": 0,
        "max_questions": None,
        "labeled": [list(pair) for pair in labeled],
    }


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestStoreContract:
    def test_checkpoint_and_tail_merge(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.put_checkpoint("s1", checkpoint_payload([(3, "+")]), 1)
        store.append_answers("s1", [(2, 7, "-"), (3, 9, "+")])
        stored = store.load("s1")
        assert stored.payload["labeled"] == [[3, "+"], [7, "-"], [9, "+"]]
        assert stored.checkpoint_seq == 1
        assert stored.journal_seq == 3
        assert "s1" in store
        assert store.load("nope") is None
        assert "nope" not in store
        store.close()

    def test_checkpoint_supersedes_journal(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.put_checkpoint("s1", checkpoint_payload([]), 0)
        store.append_answers("s1", [(1, 4, "-"), (2, 5, "-")])
        store.put_checkpoint(
            "s1", checkpoint_payload([(4, "-"), (5, "-")]), 2
        )
        stored = store.load("s1")
        assert stored.checkpoint_seq == 2
        assert stored.journal_seq == 2
        assert stored.payload["labeled"] == [[4, "-"], [5, "-"]]
        store.close()

    def test_append_without_checkpoint_rejected(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        with pytest.raises(StoreError):
            store.append_answers("ghost", [(1, 0, "-")])
        store.close()

    def test_journal_gap_is_corruption(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.put_checkpoint("s1", checkpoint_payload([]), 0)
        store.append_answers("s1", [(1, 4, "-"), (3, 5, "-")])
        with pytest.raises(StoreError):
            store.load("s1")
        store.close()

    def test_delete_is_idempotent(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.put_checkpoint("s1", checkpoint_payload([]), 0)
        store.delete("s1")
        store.delete("s1")
        assert store.load("s1") is None
        assert store.session_ids() == []
        store.close()

    def test_session_ids_oldest_first(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        for name in ("a", "b", "c"):
            store.put_checkpoint(name, checkpoint_payload([]), 0)
        assert store.session_ids() == ["a", "b", "c"]
        store.close()


class TestSqliteDurability:
    def test_wal_mode_active(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        (mode,) = store._connection.execute(
            "PRAGMA journal_mode"
        ).fetchone()
        assert mode.lower() == "wal"
        store.close()

    def test_reopen_sees_committed_state(self, tmp_path):
        path = str(tmp_path / "s.db")
        first = SqliteSessionStore(path)
        first.put_checkpoint("s1", checkpoint_payload([]), 0)
        first.append_answers("s1", [(1, 2, "-")])
        # No close(): simulate the writing process dying uncleanly.
        second = SqliteSessionStore(path)
        stored = second.load("s1")
        assert stored.journal_seq == 1
        assert stored.payload["labeled"] == [[2, "-"]]
        first.close()
        second.close()

    def test_closed_store_raises(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError):
            store.load("s1")


# --- manager journaling ------------------------------------------------------


class TestManagerJournaling:
    def test_answers_journal_and_checkpoint_on_cadence(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store, checkpoint_every=2)
        instance = boundary_instance(2, 2, rows=5, seed=1)
        managed = manager.create(inline_spec(instance, "BU"))
        asked = drive(manager, managed, BiasedCoin(3), limit=5)
        assert len(asked) == 5
        manager.flush_store()
        stored = store.load(managed.session_id)
        assert stored.journal_seq == 5
        # cadence 2 → checkpoints at 2 and 4; the tail carries answer 5
        assert stored.checkpoint_seq == 4
        assert len(stored.payload["labeled"]) == 5
        assert managed.durable
        manager.close(wait=True)
        store.close()

    def test_unseeded_sessions_stay_non_durable(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        instance = boundary_instance(2, 2, rows=4, seed=2)
        managed = manager.create(
            CreateSpec(
                {"inline": instance_to_dict(instance)},
                instance, "TD", None, None,
            )
        )
        assert not managed.durable
        manager.flush_store()
        assert store.load(managed.session_id) is None
        with pytest.raises(BadRequest):
            manager.demote(managed.session_id)
        manager.close(wait=True)
        store.close()

    def test_delete_forgets_durable_state(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        managed = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=3))
        )
        drive(manager, managed, BiasedCoin(1), limit=2)
        manager.flush_store()
        assert managed.session_id in store
        manager.delete(managed.session_id)
        manager.close(wait=True)  # waits out the queued store delete
        assert managed.session_id not in store
        with pytest.raises(NotFound):
            manager.get(managed.session_id)
        store.close()

    def test_delete_of_demoted_session_skips_rehydration(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        managed = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=4))
        )
        manager.demote(managed.session_id)
        manager.delete(managed.session_id)
        manager.close(wait=True)
        assert managed.session_id not in store
        counts = manager.session_counts()
        assert counts["demoted"] == 0
        store.close()


# --- demote / rehydrate ------------------------------------------------------


class TestDemoteRehydrate:
    def test_ttl_eviction_demotes_and_touch_rehydrates(self, tmp_path):
        now = [0.0]
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(
            store=store, ttl_seconds=10.0, clock=lambda: now[0]
        )
        instance = boundary_instance(2, 3, rows=6, seed=5)
        managed = manager.create(inline_spec(instance, "L2S", seed=11))
        oracle = BiasedCoin(7)
        prefix = drive(manager, managed, oracle, limit=4)
        original_id = managed.session_id

        now[0] = 25.0
        assert manager.sweep() == [original_id]
        counts = manager.session_counts()
        assert counts == {"live": 0, "demoted": 1, "recoverable": 1}
        assert manager.stats()["expired_total"] == 0  # demoted, not lost

        rehydrated = manager.get(original_id)
        assert rehydrated.session_id == original_id
        assert rehydrated.durable
        assert rehydrated.session.state.interaction_count == 4
        remaining = drive(manager, rehydrated, oracle)
        expected, predicate = reference_sequence(
            instance, "L2S", 11, BiasedCoin(7)
        )
        assert prefix + remaining == expected
        assert rehydrated.session.current_predicate() == predicate
        assert manager.session_counts()["demoted"] == 0
        manager.close(wait=True)
        store.close()

    def test_capacity_eviction_demotes_lru_instead_of_429(self, tmp_path):
        now = [0.0]
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(
            store=store, max_sessions=2, clock=lambda: now[0]
        )
        a = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=6))
        )
        now[0] = 1.0
        b = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=7))
        )
        now[0] = 2.0
        manager.get(a.session_id)  # touch: b becomes the LRU
        now[0] = 3.0
        c = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=8))
        )
        live = {m.session_id for m in manager.list_sessions()}
        assert live == {a.session_id, c.session_id}
        counts = manager.session_counts()
        assert counts["live"] == 2 and counts["demoted"] == 1
        # the demoted LRU is still reachable — rehydrating it demotes
        # the new LRU in turn
        assert manager.get(b.session_id).session_id == b.session_id
        assert len(manager) == 2
        manager.close(wait=True)
        store.close()

    def test_rehydrate_with_zero_recorded_answers(self, tmp_path):
        """The create record alone (checkpoint at 0 answers) is enough
        to recover a session the user never answered."""
        path = str(tmp_path / "s.db")
        store = SqliteSessionStore(path)
        manager = make_manager(store=store)
        instance = boundary_instance(2, 2, rows=4, seed=12)
        managed = manager.create(inline_spec(instance, "L1S", seed=21))
        manager.flush_store()
        store2 = SqliteSessionStore(path)
        recovered = make_manager(store=store2).get(managed.session_id)
        assert recovered.session.state.interaction_count == 0
        oracle = BiasedCoin(5)
        first = recovered.session.propose()
        twin = InferenceSession(
            instance,
            strategy_by_name("L1S"),
            index=SignatureIndex(instance),
            seed=21,
        )
        assert first.class_id == twin.propose().class_id
        manager.close(wait=True)
        store.close()
        store2.close()

    def test_rehydrate_after_final_answer(self, tmp_path):
        """A session demoted *after* reaching equivalence recovers as
        finished: no question, predicate intact."""
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        instance = boundary_instance(2, 2, rows=4, seed=13)
        managed = manager.create(inline_spec(instance, "BU", seed=2))
        drive(manager, managed, BiasedCoin(9))  # to Γ
        predicate = managed.session.current_predicate()
        total = managed.session.state.interaction_count
        manager.demote(managed.session_id)
        recovered = manager.get(managed.session_id)
        assert recovered.session.is_finished()
        assert manager.propose_question(recovered) is None
        assert recovered.session.state.interaction_count == total
        assert recovered.session.current_predicate() == predicate
        manager.close(wait=True)
        store.close()

    def test_rehydrated_session_keeps_journaling(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = SqliteSessionStore(path)
        manager = make_manager(store=store, checkpoint_every=100)
        instance = boundary_instance(2, 3, rows=6, seed=9)
        managed = manager.create(inline_spec(instance, "TD", seed=2))
        oracle = BiasedCoin(11)
        drive(manager, managed, oracle, limit=3)
        manager.demote(managed.session_id)
        rehydrated = manager.get(managed.session_id)
        drive(manager, rehydrated, oracle, limit=2)
        manager.flush_store()
        stored = store.load(managed.session_id)
        assert stored.journal_seq == 5
        assert len(stored.payload["labeled"]) == 5
        manager.close(wait=True)
        store.close()


    def test_touch_at_ttl_expiry_revives_durable_in_place(self, tmp_path):
        """Touching IS the TTL reset: a durable session whose toucher
        races the sweep must not be demoted and immediately rehydrated
        (which would drop the pending question and 409 the in-flight
        answer) — it is revived where it sits."""
        now = [0.0]
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(
            store=store, ttl_seconds=10.0, clock=lambda: now[0]
        )
        instance = boundary_instance(2, 3, rows=6, seed=14)
        managed = manager.create(inline_spec(instance, "TD", seed=3))
        question = manager.propose_question(managed)
        now[0] = 25.0  # oracle thought past the TTL
        touched = manager.get(managed.session_id)
        assert touched is managed  # same object: no demote/rehydrate
        assert touched.session.pending_question is not None
        assert manager.stats()["store"]["rehydrations_total"] == 0
        # the late answer still lands on the original question
        manager.record_answer(
            managed, question.question_id, Label.NEGATIVE
        )
        manager.close(wait=True)
        store.close()

    def test_flush_failure_drops_stale_store_row(self, tmp_path):
        """A store write failure demotes the session to non-durable AND
        removes its (now trailing) row — otherwise a later eviction or
        delete would resurrect a silently rolled-back copy."""

        class FailingStore(MemorySessionStore):
            def __init__(self):
                super().__init__()
                self.fail = False

            def append_answers(self, session_id, entries):
                if self.fail:
                    raise StoreError("disk full")
                super().append_answers(session_id, entries)

        store = FailingStore()
        manager = make_manager(store=store)
        instance = boundary_instance(2, 2, rows=5, seed=15)
        managed = manager.create(inline_spec(instance, "BU", seed=4))
        manager.flush_store()
        assert managed.session_id in store

        store.fail = True
        drive(manager, managed, BiasedCoin(2), limit=1)
        manager.flush_store()  # waits out the (failing) drain
        assert not managed.durable
        assert manager.stats()["store"]["flush_errors"] == 1
        assert managed.session_id not in store
        # the session stays live and usable, just no longer durable
        drive(manager, managed, BiasedCoin(2), limit=1)
        manager.delete(managed.session_id)
        with pytest.raises(NotFound):
            manager.get(managed.session_id)
        manager.close(wait=True)


    def test_delete_during_rehydration_is_not_resurrected(self, tmp_path):
        """DELETE racing an in-flight rehydration must win: the replay
        finishes but is never admitted, and the waiter sees 404."""
        import asyncio
        import threading as _threading

        class SlowLoadStore(SqliteSessionStore):
            def __init__(self, path):
                super().__init__(path)
                self.loading = _threading.Event()
                self.release = _threading.Event()

            def load(self, session_id):
                self.loading.set()
                self.release.wait(timeout=10)
                return super().load(session_id)

        store = SlowLoadStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        instance = boundary_instance(2, 2, rows=4, seed=16)
        managed = manager.create(inline_spec(instance, "TD", seed=9))
        manager.demote(managed.session_id)
        session_id = managed.session_id

        async def scenario():
            touch = asyncio.ensure_future(
                manager.get_async(session_id)
            )
            while not store.loading.is_set():
                await asyncio.sleep(0.01)
            manager.delete(session_id)  # store row + tombstone
            store.release.set()
            with pytest.raises(NotFound):
                await touch

        asyncio.run(scenario())
        assert len(manager) == 0
        manager.close(wait=True)
        assert session_id not in store
        store.close()


# --- every strategy recovers from a reopened store ---------------------------


class TestEveryStrategyRecovers:
    """Reopen-recovery parity for the full strategy registry (incl. the
    exponential OPT, which the kill-matrix below cannot afford): write
    through one manager, reopen the SQLite file in a *fresh* manager —
    no demote, no clean close, exactly what a crashed process leaves —
    and the recovered session must continue identically."""

    @pytest.mark.parametrize(
        "strategy", ["RND", "BU", "TD", "L1S", "L2S", "L3S", "OPT", "IG"]
    )
    def test_reopened_store_continues_bit_for_bit(
        self, strategy, tmp_path
    ):
        path = str(tmp_path / "s.db")
        instance = boundary_instance(2, 2, rows=3, seed=10)
        oracle = BiasedCoin(13)
        expected, predicate = reference_sequence(
            instance, strategy, 17, BiasedCoin(13)
        )
        assert len(expected) >= 3
        cut = 2

        first_store = SqliteSessionStore(path)
        first = make_manager(store=first_store, checkpoint_every=2)
        managed = first.create(inline_spec(instance, strategy, seed=17))
        prefix = drive(first, managed, oracle, limit=cut)
        first.flush_store()
        # no close/demote — the "process" just stops here

        second_store = SqliteSessionStore(path)
        second = make_manager(store=second_store)
        recovered = second.get(managed.session_id)
        assert recovered.session.state.interaction_count == cut
        remaining = drive(second, recovered, oracle)
        assert prefix + remaining == expected
        assert recovered.session.current_predicate() == predicate
        first.close(wait=True)
        second.close(wait=True)
        first_store.close()
        second_store.close()


# --- the kill -9 acceptance matrix -------------------------------------------


CRASH_STRATEGIES = ["RND", "BU", "TD", "L1S", "L2S", "L3S", "IG"]
#: (left_arity, right_arity, rows): Ω = 63 / 64 / 65 across the packed
#: uint64 word boundary.  L3S gets smaller instances — depth-3
#: lookahead needs ~2 s per 16-class session and ~20 s per 36-class one.
CRASH_OMEGAS = [(7, 9), (8, 8), (5, 13)]
CRASH_CUT = 10

_CRASH_CHILD = """
import json, os, signal, sys

config = json.load(open(sys.argv[1]))

from repro.core import Label
from repro.core.serialize import instance_from_dict
from repro.service import SessionManager, SqliteSessionStore
from repro.service.protocol import CreateSpec

store = SqliteSessionStore(config["db"])
manager = SessionManager(
    store=store,
    checkpoint_every=config["checkpoint_every"],
    speculate=False,
)
out = []
for combo in config["combos"]:
    instance = instance_from_dict(combo["instance"])
    spec = CreateSpec(
        {"inline": combo["instance"]},
        instance,
        combo["strategy"],
        combo["seed"],
        None,
    )
    managed = manager.create(spec)
    asked = []
    for _ in range(config["cut"]):
        question = manager.propose_question(managed)
        asked.append(question.class_id)
        manager.record_answer(
            managed, question.question_id, Label.NEGATIVE
        )
    out.append(
        {
            "session_id": managed.session_id,
            "strategy": combo["strategy"],
            "omega": combo["omega"],
            "asked": asked,
        }
    )
manager.flush_store()
print(json.dumps(out), flush=True)
os.kill(os.getpid(), signal.SIGKILL)
"""


class _PrefixedOracle:
    """``prefix_len`` negatives (the journaled answers), then a biased
    coin — so the crashed prefix is deterministic and the recovered
    tail still exercises both polarities."""

    def __init__(self, prefix_len: int, seed: int):
        self._remaining = prefix_len
        self._coin = BiasedCoin(seed)

    def label(self, tuple_pair) -> Label:
        if self._remaining > 0:
            self._remaining -= 1
            return Label.NEGATIVE
        return self._coin.label(tuple_pair)


class TestKillTheProcess:
    def test_sessions_recover_identically_after_sigkill(self, tmp_path):
        """The acceptance scenario: ≥ 10 answers journaled, SIGKILL,
        recover from the SQLite file, identical remaining questions."""
        db = str(tmp_path / "crash.db")
        combos = []
        instances = {}
        for left, right in CRASH_OMEGAS:
            omega = left * right
            for strategy in CRASH_STRATEGIES:
                rows = 4 if strategy == "L3S" else 6
                key = (omega, rows)
                if key not in instances:
                    instances[key] = boundary_instance(
                        left, right, rows=rows
                    )
                assert len(instances[key].omega) == omega
                combos.append(
                    {
                        "instance": instance_to_dict(instances[key]),
                        "strategy": strategy,
                        "omega": omega,
                        "rows": rows,
                        "seed": 5,
                    }
                )
        config = tmp_path / "config.json"
        config.write_text(
            json.dumps(
                {
                    "db": db,
                    "combos": combos,
                    "cut": CRASH_CUT,
                    "checkpoint_every": 4,
                }
            )
        )
        child = tmp_path / "crash_child.py"
        child.write_text(_CRASH_CHILD)

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, str(child), str(config)],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        reports = json.loads(result.stdout)
        assert len(reports) == len(combos)

        store = SqliteSessionStore(db)
        manager = make_manager(store=store, max_sessions=1024)
        by_key = {
            (combo["omega"], combo["rows"]): instances[
                (combo["omega"], combo["rows"])
            ]
            for combo in combos
        }
        for combo, report in zip(combos, reports):
            assert report["strategy"] == combo["strategy"]
            instance = by_key[(combo["omega"], combo["rows"])]
            recovered = manager.get(report["session_id"])
            assert (
                recovered.session.state.interaction_count == CRASH_CUT
            ), f"{combo['strategy']} Ω={combo['omega']}"
            oracle = _PrefixedOracle(0, seed=combo["omega"])
            remaining = drive(manager, recovered, oracle)
            expected, predicate = reference_sequence(
                instance,
                combo["strategy"],
                combo["seed"],
                _PrefixedOracle(CRASH_CUT, seed=combo["omega"]),
            )
            assert report["asked"] == expected[:CRASH_CUT], (
                f"{combo['strategy']} Ω={combo['omega']}: crashed "
                f"prefix diverged"
            )
            assert remaining == expected[CRASH_CUT:], (
                f"{combo['strategy']} Ω={combo['omega']}: recovered "
                f"session diverged from the uninterrupted run"
            )
            assert recovered.session.current_predicate() == predicate
        manager.close(wait=True)
        store.close()


# --- end-to-end over HTTP ----------------------------------------------------


class TestServiceDurability:
    def test_demoted_session_rehydrates_over_http(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        with ServiceServer(manager=manager) as server:
            client = ServiceClient(server.host, server.port)
            info = client.create_session(
                workload="synthetic/1", strategy="L2S", seed=4
            )
            sid = info["session_id"]
            assert info["durable"]
            for _ in range(3):
                question = client.next_question(sid)
                client.post_answer(sid, question["question_id"], "-")
            server.manager.demote_all()
            overview = client.sessions_overview()
            assert overview["live"] == 0
            assert overview["demoted"] == 1
            assert overview["recoverable"] == 1
            # touching the demoted session rehydrates it transparently
            question = client.next_question(sid)
            assert question is not None
            client.post_answer(sid, question["question_id"], "-")
            info = client.session_info(sid)
            assert info["progress"]["interactions"] == 4
            stats = client.stats()
            assert stats["store"]["enabled"]
            assert stats["store"]["rehydrations_total"] == 1
            client.close()
        store.close()

    def test_server_restart_recovers_sessions_from_store(self, tmp_path):
        path = str(tmp_path / "s.db")
        first_store = SqliteSessionStore(path)
        with ServiceServer(
            manager=make_manager(store=first_store)
        ) as first:
            client = ServiceClient(first.host, first.port)
            sid = client.create_session(
                workload="synthetic/2", strategy="BU", seed=6
            )["session_id"]
            for _ in range(2):
                question = client.next_question(sid)
                client.post_answer(sid, question["question_id"], "-")
            first.manager.flush_store()
            client.close()
        first_store.close()

        second_store = SqliteSessionStore(path)
        with ServiceServer(
            manager=make_manager(store=second_store)
        ) as second:
            client = ServiceClient(second.host, second.port)
            overview = client.sessions_overview()
            assert overview["live"] == 0
            assert overview["recoverable"] == 1
            info = client.session_info(sid)  # rehydrates
            assert info["progress"]["interactions"] == 2
            assert client.sessions_overview()["live"] == 1
            client.close()
        second_store.close()

    def test_concurrent_touches_rehydrate_once(self, tmp_path):
        """Two concurrent requests against one demoted session trigger
        exactly one replay (single-flight), like cold index builds."""
        from concurrent.futures import ThreadPoolExecutor

        store = SqliteSessionStore(str(tmp_path / "s.db"))
        manager = make_manager(store=store)
        with ServiceServer(manager=manager) as server:
            control = ServiceClient(server.host, server.port)
            sid = control.create_session(
                workload="synthetic/1", strategy="TD", seed=8
            )["session_id"]
            question = control.next_question(sid)
            control.post_answer(sid, question["question_id"], "-")
            server.manager.demote_all()

            def touch(_):
                with ServiceClient(server.host, server.port) as c:
                    return c.session_info(sid)["progress"]["interactions"]

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(touch, range(4)))
            assert results == [1, 1, 1, 1]
            assert control.stats()["store"]["rehydrations_total"] == 1
            control.close()
        store.close()
