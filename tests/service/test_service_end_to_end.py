"""End-to-end tests over real HTTP: concurrent remote sessions must
reproduce exactly what the in-process Algorithm 1 loop infers.

The acceptance scenario: ≥ 32 sessions driven concurrently against one
server, all on the same TPC-H workload so a single cached signature
index serves every session; each runs to the strongest halt condition
(no informative tuple left) and its predicate must equal the in-process
``run_inference`` result for the same strategy and seed.  Snapshot +
server restart + resume must land on the identical final predicate.
"""

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    run_inference,
    strategy_by_name,
)
from repro.data import generate_tpch, tpch_workloads
from repro.service import (
    IndexCache,
    ServiceClient,
    ServiceClientError,
    ServiceServer,
    SessionManager,
)

WORKLOAD_NAME = "tpch/join4"
TPCH_SEED = 0
TPCH_SCALE = 1.0


@pytest.fixture(scope="module")
def join4():
    return tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]


@pytest.fixture(scope="module")
def join4_index(join4):
    return SignatureIndex(join4.instance)


def remote_answerer(oracle):
    """Adapt a local oracle to question payloads from the wire."""

    def answer(question):
        pair = (
            tuple(question["left"]["row"]),
            tuple(question["right"]["row"]),
        )
        return str(oracle.label(pair))

    return answer


class TestConcurrentSessions:
    def test_32_sessions_share_one_index_and_match_inprocess(
        self, join4, join4_index
    ):
        """The acceptance scenario (see module docstring)."""
        oracle = PerfectOracle(join4.instance, join4.goal)
        strategies = ["RND", "BU", "TD", "L1S", "L2S"]
        jobs = [
            (name, seed)
            for seed, name in zip(
                range(32), itertools.cycle(strategies)
            )
        ]
        manager = SessionManager(
            index_cache=IndexCache(), max_sessions=64
        )

        def drive(job):
            name, seed = job
            with ServiceClient(server.host, server.port) as client:
                info = client.create_session(
                    workload=WORKLOAD_NAME,
                    strategy=name,
                    seed=seed,
                    workload_seed=TPCH_SEED,
                    scale=TPCH_SCALE,
                )
                final = client.drive(
                    info["session_id"], remote_answerer(oracle)
                )
                return name, seed, final

        with ServiceServer(manager=manager) as server:
            with ThreadPoolExecutor(max_workers=16) as pool:
                outcomes = list(pool.map(drive, jobs))
            stats = ServiceClient(server.host, server.port).stats()

        for name, seed, final in outcomes:
            reference = run_inference(
                join4.instance,
                strategy_by_name(name),
                oracle,
                index=join4_index,
                seed=seed,
            )
            expected = [
                [str(a), str(b)]
                for a, b in reference.predicate.sorted_pairs()
            ]
            assert final["predicate"]["pairs"] == expected, (
                f"{name} seed={seed} diverged from in-process run"
            )
            assert final["progress"]["done"]
            assert (
                final["progress"]["interactions"]
                == reference.interactions
            )

        cache = stats["index_cache"]
        assert cache["entries"] == 1  # one shared TPC-H index
        assert cache["misses"] == 1
        assert cache["hit_ratio"] > 0.9
        assert stats["sessions"] == 32

    def test_interleaved_sessions_do_not_corrupt_each_other(self, join4):
        """Concurrency regression: two sessions on the same cached index,
        answered strictly interleaved, with *different* goals — each must
        end exactly where its isolated in-process twin ends."""
        goal_a = join4.goal  # orderkey = orderkey
        goal_b = join4.goal.parse(
            "orders.custkey = lineitem.suppkey"
        )
        oracle_a = PerfectOracle(join4.instance, goal_a)
        oracle_b = PerfectOracle(join4.instance, goal_b)
        with ServiceServer() as server:
            client = ServiceClient(server.host, server.port)
            sid_a = client.create_session(
                workload=WORKLOAD_NAME, strategy="BU", seed=1
            )["session_id"]
            sid_b = client.create_session(
                workload=WORKLOAD_NAME, strategy="BU", seed=1
            )["session_id"]
            managed = server.manager.get(sid_a)
            assert (
                managed.session.index
                is server.manager.get(sid_b).session.index
            )
            answer_a = remote_answerer(oracle_a)
            answer_b = remote_answerer(oracle_b)
            live = {sid_a: answer_a, sid_b: answer_b}
            while live:
                for sid, answer in list(live.items()):
                    question = client.next_question(sid)
                    if question is None:
                        del live[sid]
                        continue
                    client.post_answer(
                        sid, question["question_id"], answer(question)
                    )
            final_a = client.predicate(sid_a)
            final_b = client.predicate(sid_b)
            client.close()

        shared_index = SignatureIndex(join4.instance)
        for final, goal in ((final_a, goal_a), (final_b, goal_b)):
            reference = run_inference(
                join4.instance,
                strategy_by_name("BU"),
                PerfectOracle(join4.instance, goal),
                index=shared_index,
                seed=1,
            )
            assert final["predicate"]["pairs"] == [
                [str(a), str(b)]
                for a, b in reference.predicate.sorted_pairs()
            ]
            assert (
                final["progress"]["interactions"]
                == reference.interactions
            )

    def test_parallel_answers_against_one_session_stay_sequential(
        self, join4
    ):
        """Hammer a single session from 8 threads: exactly one answer per
        question can land (others get 409), and the session still ends in
        the correct predicate."""
        oracle = PerfectOracle(join4.instance, join4.goal)
        with ServiceServer() as server:
            control = ServiceClient(server.host, server.port)
            sid = control.create_session(
                workload=WORKLOAD_NAME, strategy="TD", seed=3
            )["session_id"]
            conflicts = []
            lock = threading.Lock()

            def hammer():
                with ServiceClient(server.host, server.port) as client:
                    while True:
                        question = client.next_question(sid)
                        if question is None:
                            return
                        try:
                            client.post_answer(
                                sid,
                                question["question_id"],
                                remote_answerer(oracle)(question),
                            )
                        except ServiceClientError as exc:
                            if exc.status != 409:
                                raise
                            with lock:
                                conflicts.append(exc.code)

            with ThreadPoolExecutor(max_workers=8) as pool:
                for _ in range(8):
                    pool.submit(hammer)
            final = control.predicate(sid)
            control.close()

        reference = run_inference(
            join4.instance,
            strategy_by_name("TD"),
            oracle,
            seed=3,
        )
        assert final["predicate"]["pairs"] == [
            [str(a), str(b)]
            for a, b in reference.predicate.sorted_pairs()
        ]
        assert final["progress"]["interactions"] == reference.interactions


class TestSnapshotRestartResume:
    def test_snapshot_survives_server_restart(self, join4):
        """Answer half the questions, snapshot, kill the server, start a
        brand-new one (empty cache), resume, finish — the final predicate
        must equal the uninterrupted in-process run."""
        oracle = PerfectOracle(join4.instance, join4.goal)
        reference = run_inference(
            join4.instance,
            strategy_by_name("L2S"),
            oracle,
            seed=13,
        )
        cut = max(1, reference.interactions // 2)

        with ServiceServer() as first:
            client = ServiceClient(first.host, first.port)
            sid = client.create_session(
                workload=WORKLOAD_NAME, strategy="L2S", seed=13
            )["session_id"]
            for _ in range(cut):
                question = client.next_question(sid)
                client.post_answer(
                    sid,
                    question["question_id"],
                    remote_answerer(oracle)(question),
                )
            snapshot = client.snapshot(sid)
            client.close()

        assert snapshot["instance"]["builtin"]["name"] == WORKLOAD_NAME
        assert len(snapshot["labeled"]) == cut

        with ServiceServer() as second:
            client = ServiceClient(second.host, second.port)
            resumed = client.resume(snapshot)
            rid = resumed["session_id"]
            assert resumed["progress"]["interactions"] == cut
            final = client.drive(rid, remote_answerer(oracle))
            client.close()

        assert final["predicate"]["pairs"] == [
            [str(a), str(b)]
            for a, b in reference.predicate.sorted_pairs()
        ]
        assert final["progress"]["interactions"] == reference.interactions

    def test_uploaded_csv_snapshot_is_self_contained(self):
        """Inline (uploaded) sessions snapshot with their data embedded,
        so resume works on a server that never saw the upload."""
        csv = {
            "left": {"name": "R", "text": "A1,A2\n0,1\n0,2\n2,2\n1,0\n"},
            "right": {"name": "P", "text": "B1,B2,B3\n1,1,0\n0,1,2\n2,0,0\n"},
        }
        with ServiceServer() as first:
            client = ServiceClient(first.host, first.port)
            sid = client.create_session(
                csv=csv, strategy="OPT", seed=0, infer_types=True
            )["session_id"]
            question = client.next_question(sid)
            client.post_answer(sid, question["question_id"], "-")
            snapshot = client.snapshot(sid)
            client.close()

        assert "inline" in snapshot["instance"]

        with ServiceServer() as second:
            client = ServiceClient(second.host, second.port)
            resumed = client.resume(snapshot)
            assert resumed["progress"]["interactions"] == 1
            final = client.drive(
                resumed["session_id"], lambda question: "-"
            )
            client.close()
        assert final["progress"]["done"]


class TestServiceHygiene:
    def test_capacity_limit_surfaces_as_429(self):
        manager = SessionManager(max_sessions=1)
        with ServiceServer(manager=manager) as server:
            client = ServiceClient(server.host, server.port)
            client.create_session(workload="synthetic/1", seed=0)
            with pytest.raises(ServiceClientError) as excinfo:
                client.create_session(workload="synthetic/1", seed=0)
            assert excinfo.value.status == 429
            client.close()

    def test_delete_frees_capacity(self):
        manager = SessionManager(max_sessions=1)
        with ServiceServer(manager=manager) as server:
            client = ServiceClient(server.host, server.port)
            sid = client.create_session(
                workload="synthetic/1", seed=0
            )["session_id"]
            client.delete_session(sid)
            client.create_session(workload="synthetic/1", seed=0)
            assert client.stats()["index_cache"]["hit_ratio"] == 0.5
            client.close()

    def test_session_listing(self):
        with ServiceServer() as server:
            client = ServiceClient(server.host, server.port)
            client.create_session(workload="synthetic/2", strategy="BU")
            client.create_session(workload="synthetic/2", strategy="TD")
            sessions = client.list_sessions()
            assert {s["strategy"] for s in sessions} == {"BU", "TD"}
            assert all(
                s["workload"]["name"] == "synthetic/2" for s in sessions
            )
            client.close()


class TestPlanCacheStats:
    def test_stats_expose_the_plan_cache_block(self):
        manager = SessionManager(speculate=False)
        with ServiceServer(manager=manager) as server:
            client = ServiceClient(server.host, server.port)
            info = client.create_session(
                workload="tpch/join2", strategy="L2S", seed=3
            )
            question = client.next_question(info["session_id"])
            client.post_answer(
                info["session_id"], question["question_id"], "-"
            )
            client.next_question(info["session_id"])
            plan = client.plan_cache_stats()
            assert plan["enabled"]
            assert plan == client.stats()["plan_cache"]
            assert plan["computes"] >= 1
            assert plan["misses"] == (
                plan["local_hits"]
                + plan["shared_hits"]
                + plan["computes"]
            )
            client.close()

    def test_disabled_cache_reports_enabled_false(self):
        manager = SessionManager(speculate=False, plan_cache=False)
        with ServiceServer(manager=manager) as server:
            client = ServiceClient(server.host, server.port)
            assert client.plan_cache_stats() == {"enabled": False}
            client.close()
