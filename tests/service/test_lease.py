"""The store's per-session lease protocol (PR 7).

The fleet's correctness rests on three store-level properties, tested
here on both backends without any subprocess machinery:

* **Mutual exclusion with takeover** — one unexpired lease per session;
  an expired lease is claimable by anyone, and a takeover bumps the
  fencing epoch.
* **Fencing** — journal writes stamped with a deposed ``(owner,
  epoch)`` raise :class:`LeaseFenced` and commit nothing, so a
  SIGKILLed worker's late flush can never corrupt its successor's
  journal.
* **Busy tolerance** — the SQLite backend retries transiently locked
  transactions (N processes share one WAL file) instead of surfacing
  ``SQLITE_BUSY`` to the serving layer.

On top sit the manager-level behaviours: sessions acquire their lease
on create, heartbeat it, release it on demote, and a manager whose
lease was taken over shreds its copy of the session without touching
the new owner's data.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro.service import (
    Conflict,
    LeaseFenced,
    MemorySessionStore,
    SqliteSessionStore,
    StoreError,
)

from .test_store import (
    BACKENDS,
    BiasedCoin,
    _PrefixedOracle,
    boundary_instance,
    checkpoint_payload,
    drive,
    inline_spec,
    make_manager,
    reference_sequence,
)

TTL = 30.0  # long: these tests drive expiry explicitly, not by waiting


# --- lease contract (both backends) ------------------------------------------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestLeaseContract:
    def test_first_acquire_grants_epoch_one(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        lease = store.acquire_lease("s1", "a", TTL)
        assert lease is not None
        assert (lease.owner, lease.epoch) == ("a", 1)
        assert not lease.expired()
        assert store.lease_of("s1").epoch == 1
        store.close()

    def test_reacquire_by_holder_keeps_epoch(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", TTL)
        again = store.acquire_lease("s1", "a", TTL)
        assert (again.owner, again.epoch) == ("a", 1)
        store.close()

    def test_unexpired_foreign_lease_denies(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", TTL)
        assert store.acquire_lease("s1", "b", TTL) is None
        assert store.stats()["lease_denied"] == 1
        store.close()

    def test_expired_lease_takeover_bumps_epoch(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", 0.01)
        time.sleep(0.02)
        taken = store.acquire_lease("s1", "b", TTL)
        assert (taken.owner, taken.epoch) == ("b", 2)
        assert store.stats()["lease_takeovers"] == 1
        store.close()

    def test_renew_extends_only_exact_owner_epoch(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", TTL)
        before = store.lease_of("s1").expires_at
        time.sleep(0.01)
        assert store.renew_lease("s1", "a", 1, TTL)
        assert store.lease_of("s1").expires_at > before
        assert not store.renew_lease("s1", "b", 1, TTL)
        assert not store.renew_lease("s1", "a", 2, TTL)
        assert not store.renew_lease("ghost", "a", 1, TTL)
        store.close()

    def test_release_expires_in_place(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", TTL)
        assert not store.release_lease("s1", "b", 1)
        assert not store.release_lease("s1", "a", 9)
        assert store.release_lease("s1", "a", 1)
        # The row stays, expired, so the epoch keeps counting: the
        # next acquire is a takeover past every write "a" ever fenced.
        released = store.lease_of("s1")
        assert released is not None and released.expired()
        assert store.acquire_lease("s1", "b", TTL).epoch == 2
        store.close()

    def test_fenced_write_round_trip(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        lease = store.acquire_lease("s1", "a", TTL)
        fence = (lease.owner, lease.epoch)
        store.put_checkpoint("s1", checkpoint_payload([]), 0, fence=fence)
        store.append_answers("s1", [(1, 4, "-")], fence=fence)
        assert store.load("s1").journal_seq == 1
        store.close()

    def test_deposed_fence_rejected_and_commits_nothing(
        self, backend, tmp_path
    ):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", 0.01)
        store.put_checkpoint("s1", checkpoint_payload([]), 0, fence=("a", 1))
        time.sleep(0.02)
        store.acquire_lease("s1", "b", TTL)  # epoch 2
        with pytest.raises(LeaseFenced):
            store.append_answers("s1", [(1, 4, "-")], fence=("a", 1))
        with pytest.raises(LeaseFenced):
            store.put_checkpoint(
                "s1", checkpoint_payload([(4, "-")]), 1, fence=("a", 1)
            )
        # The dead owner's late flush left no trace.
        stored = store.load("s1")
        assert stored.journal_seq == 0
        assert stored.payload["labeled"] == []
        assert store.stats()["fenced_writes"] == 2
        store.close()

    def test_fence_without_any_lease_rejected(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        with pytest.raises(LeaseFenced):
            store.put_checkpoint(
                "s1", checkpoint_payload([]), 0, fence=("a", 1)
            )
        store.close()

    def test_expired_but_untaken_fence_still_writes(self, backend, tmp_path):
        # Expiry alone doesn't depose: until someone else takes the
        # lease over, the (owner, epoch) pair is still current and the
        # owner's writes remain the newest truth.
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", 0.01)
        store.put_checkpoint("s1", checkpoint_payload([]), 0, fence=("a", 1))
        time.sleep(0.02)
        store.append_answers("s1", [(1, 4, "-")], fence=("a", 1))
        assert store.load("s1").journal_seq == 1
        store.close()

    def test_delete_clears_lease(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", TTL)
        store.put_checkpoint("s1", checkpoint_payload([]), 0)
        store.delete("s1")
        assert store.lease_of("s1") is None
        # With the lease row gone the epoch restarts — correct, since
        # the journal it fenced is gone too.
        assert store.acquire_lease("s1", "b", TTL).epoch == 1
        store.close()

    def test_stats_count_unexpired_leases(self, backend, tmp_path):
        store = BACKENDS[backend](tmp_path)
        store.acquire_lease("s1", "a", TTL)
        store.acquire_lease("s2", "a", 0.01)
        time.sleep(0.02)
        assert store.stats()["leases"] == 1
        store.close()


# --- SQLite busy handling ----------------------------------------------------


class TestSqliteBusyRetry:
    def _hold_lock(self, path: str, seconds: float) -> threading.Thread:
        """Hold a write transaction on ``path`` from a second
        connection for ``seconds`` — what a sibling worker's in-flight
        commit looks like."""
        ready = threading.Event()

        def hold() -> None:
            blocker = sqlite3.connect(path)
            blocker.execute("BEGIN IMMEDIATE")
            ready.set()
            time.sleep(seconds)
            blocker.rollback()
            blocker.close()

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        ready.wait(timeout=5)
        return thread

    def test_transient_lock_is_retried(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = SqliteSessionStore(path, busy_timeout=0.05)
        thread = self._hold_lock(path, 0.3)
        store.put_checkpoint("s1", checkpoint_payload([]), 0)
        thread.join()
        assert store.load("s1") is not None
        assert store.stats()["busy_retries"] >= 1
        store.close()

    def test_persistent_lock_raises_store_error(self, tmp_path):
        path = str(tmp_path / "s.db")
        store = SqliteSessionStore(path, busy_timeout=0.01)
        thread = self._hold_lock(path, 30.0)
        with pytest.raises(StoreError, match="busy"):
            store.put_checkpoint("s1", checkpoint_payload([]), 0)
        store.close()
        del thread  # daemon; rolls back on its own

    def test_busy_timeout_pragma_applied(self, tmp_path):
        store = SqliteSessionStore(
            str(tmp_path / "s.db"), busy_timeout=1.5
        )
        (value,) = store._connection.execute(
            "PRAGMA busy_timeout"
        ).fetchone()
        assert value == 1500
        store.close()


# --- manager-level lease behaviour -------------------------------------------


def leased_manager(store, owner, **kwargs):
    kwargs.setdefault("lease_ttl_seconds", 0.4)
    return make_manager(store=store, owner_id=owner, **kwargs)


class TestManagerLeasing:
    def test_create_acquires_and_demote_releases(self, tmp_path):
        store = MemorySessionStore()
        manager = leased_manager(store, "w0g1")
        managed = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=1))
        )
        drive(manager, managed, BiasedCoin(1), limit=2)
        manager.flush_store()
        lease = store.lease_of(managed.session_id)
        assert (lease.owner, lease.epoch) == ("w0g1", 1)
        assert not lease.expired()
        stats = manager.stats()["store"]["lease"]
        assert stats["owner"] == "w0g1"
        assert stats["held"] == 1

        manager.demote(managed.session_id)
        manager.flush_store()
        released = store.lease_of(managed.session_id)
        assert released.expired()
        manager.close(wait=True)

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        store = MemorySessionStore()
        manager = leased_manager(store, "w0g1", lease_ttl_seconds=0.3)
        managed = manager.create(
            inline_spec(boundary_instance(2, 2, rows=4, seed=2))
        )
        drive(manager, managed, BiasedCoin(1), limit=1)
        manager.flush_store()
        time.sleep(0.9)  # several TTLs; the heartbeat must carry it
        lease = store.lease_of(managed.session_id)
        assert lease is not None and not lease.expired()
        manager.close(wait=True)

    def test_fenced_flush_sheds_session_without_touching_store(
        self, tmp_path
    ):
        store = MemorySessionStore()
        manager = leased_manager(store, "w0g1")
        managed = manager.create(
            inline_spec(boundary_instance(2, 2, rows=5, seed=3))
        )
        sid = managed.session_id
        drive(manager, managed, BiasedCoin(1), limit=2)
        manager.flush_store()

        # Depose the manager: release as it would on demote, then let
        # an "intruder" take the session over (epoch 2).
        assert store.release_lease(sid, "w0g1", 1)
        intruder = store.acquire_lease(sid, "intruder", TTL)
        assert intruder.epoch == 2
        before = store.load(sid)

        # The deposed manager keeps serving until its next flush...
        drive(manager, managed, BiasedCoin(2), limit=2)
        manager.flush_store()
        # ...which is fenced: its copy is shed, the intruder's journal
        # is untouched, and the next touch routes to the store — where
        # the intruder's unexpired lease makes it a 409.
        assert manager.stats()["store"]["lease"]["fenced_writes"] >= 1
        after = store.load(sid)
        assert after.journal_seq == before.journal_seq
        assert store.lease_of(sid).owner == "intruder"
        with pytest.raises(Conflict):
            manager.get(sid)
        manager.close(wait=True)

    def test_takeover_resumes_identical_sequence(self, tmp_path):
        """In-process twin of the fleet acceptance test: worker A
        'crashes' (heartbeat stopped, never drains), worker B takes
        the session over after the TTL and finishes it bit-for-bit."""
        instance = boundary_instance(3, 3, rows=6, seed=4)
        cut = 4
        expected, expected_predicate = reference_sequence(
            instance, "L2S", 11, _PrefixedOracle(cut, seed=9)
        )
        assert len(expected) > cut

        store = SqliteSessionStore(str(tmp_path / "s.db"))
        worker_a = leased_manager(
            store, "w0g1", lease_ttl_seconds=0.3, checkpoint_every=3
        )
        managed = worker_a.create(inline_spec(instance, "L2S", seed=11))
        sid = managed.session_id
        prefix = drive(
            worker_a, managed, _PrefixedOracle(cut, seed=9), limit=cut
        )
        worker_a.flush_store()
        # Crash: stop the heartbeat, abandon the manager mid-session.
        worker_a._heartbeat_stop.set()

        worker_b = leased_manager(store, "w1g2", lease_ttl_seconds=0.3)
        recovered = worker_b.get(sid)  # waits out A's lease, epoch 2
        assert store.lease_of(sid).owner == "w1g2"
        assert store.lease_of(sid).epoch == 2
        suffix = drive(worker_b, recovered, _PrefixedOracle(0, seed=9))
        assert prefix + suffix == expected
        assert (
            recovered.session.current_predicate() == expected_predicate
        )
        worker_b.close(wait=True)
        worker_a.close(wait=True)
        store.close()
