"""Unit tests for the shared SQLite idiom (:mod:`repro.service.sqlite_util`).

The session store, the shared-index registry, and the plan registry all
delegate their transaction/lease mechanics here, so these tests pin the
exact retry, rollback, and epoch semantics the three rely on.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import pytest

from repro.service import sqlite_util


class BoomError(RuntimeError):
    pass


# --- connect_wal ----------------------------------------------------------


def test_connect_wal_pragmas(tmp_path):
    connection = sqlite_util.connect_wal(str(tmp_path / "db.sqlite"))
    try:
        (mode,) = connection.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        (sync,) = connection.execute("PRAGMA synchronous").fetchone()
        assert sync == 1  # NORMAL
        (busy,) = connection.execute("PRAGMA busy_timeout").fetchone()
        assert busy == 5000
        # Explicit BEGIN works only with autocommit connections.
        assert connection.isolation_level is None
    finally:
        connection.close()


def test_connect_wal_busy_timeout_and_usable_across_threads(tmp_path):
    connection = sqlite_util.connect_wal(
        str(tmp_path / "db.sqlite"), busy_timeout=0.25
    )
    try:
        (busy,) = connection.execute("PRAGMA busy_timeout").fetchone()
        assert busy == 250
        seen = []

        def probe():
            seen.append(connection.execute("SELECT 1").fetchone()[0])

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen == [1]  # check_same_thread=False
    finally:
        connection.close()


# --- is_busy_error --------------------------------------------------------


@pytest.mark.parametrize(
    "message,expected",
    [
        ("database is locked", True),
        ("database table is locked", True),
        ("SQLITE_BUSY: database busy", True),
        ("no such table: leases", False),
        ("syntax error", False),
    ],
)
def test_is_busy_error(message, expected):
    assert (
        sqlite_util.is_busy_error(sqlite3.OperationalError(message))
        is expected
    )


# --- run_immediate: commit / rollback ------------------------------------


@pytest.fixture()
def connection(tmp_path):
    connection = sqlite_util.connect_wal(str(tmp_path / "db.sqlite"))
    connection.execute("CREATE TABLE t (v INTEGER)")
    yield connection
    connection.close()


def test_run_immediate_commits_and_returns(connection):
    def work(conn):
        conn.execute("INSERT INTO t VALUES (7)")
        return "done"

    assert (
        sqlite_util.run_immediate(
            connection, work, error=BoomError, subject="test"
        )
        == "done"
    )
    assert connection.execute("SELECT v FROM t").fetchall() == [(7,)]
    assert not connection.in_transaction


def test_run_immediate_rolls_back_on_work_exception(connection):
    def work(conn):
        conn.execute("INSERT INTO t VALUES (7)")
        raise BoomError("mid-transaction failure")

    with pytest.raises(BoomError, match="mid-transaction"):
        sqlite_util.run_immediate(
            connection, work, error=RuntimeError, subject="test"
        )
    assert connection.execute("SELECT v FROM t").fetchall() == []
    assert not connection.in_transaction


def test_run_immediate_non_busy_error_propagates(connection):
    def work(conn):
        conn.execute("INSERT INTO missing_table VALUES (1)")

    with pytest.raises(sqlite3.OperationalError, match="no such table"):
        sqlite_util.run_immediate(
            connection, work, error=BoomError, subject="test"
        )
    assert not connection.in_transaction


# --- run_immediate: busy retry -------------------------------------------


class _ScriptedConnection:
    """Drives run_immediate through scripted BEGIN/COMMIT outcomes.

    ``script`` maps the statement kind to a list of outcomes consumed in
    order: an exception instance to raise, or None to succeed.
    """

    def __init__(self, script):
        self.script = script
        self.calls = []

    def execute(self, sql, *args):
        self.calls.append(sql)
        kind = sql.split()[0]
        outcomes = self.script.get(kind)
        if outcomes:
            outcome = outcomes.pop(0)
            if outcome is not None:
                raise outcome
        return None


def _busy():
    return sqlite3.OperationalError("database is locked")


def test_run_immediate_retries_busy_begin_then_succeeds():
    connection = _ScriptedConnection({"BEGIN": [_busy(), _busy(), None]})
    retries = []
    result = sqlite_util.run_immediate(
        connection,
        lambda conn: "ok",
        error=BoomError,
        subject="scripted",
        on_busy_retry=lambda: retries.append(1),
    )
    assert result == "ok"
    assert len(retries) == 2
    assert connection.calls.count("COMMIT") == 1


def test_run_immediate_retries_busy_commit_with_rollback():
    connection = _ScriptedConnection({"COMMIT": [_busy(), None]})
    result = sqlite_util.run_immediate(
        connection, lambda conn: "ok", error=BoomError, subject="scripted"
    )
    assert result == "ok"
    # The busy COMMIT was rolled back before the retry.
    assert connection.calls.count("ROLLBACK") == 1
    assert connection.calls.count("BEGIN IMMEDIATE") == 2


def test_run_immediate_exhausts_retries_and_raises_error_type():
    connection = _ScriptedConnection({"BEGIN": [_busy() for _ in range(3)]})
    retries = []
    with pytest.raises(
        BoomError, match=r"scripted: database busy after 3 attempts"
    ) as excinfo:
        sqlite_util.run_immediate(
            connection,
            lambda conn: "ok",
            error=BoomError,
            subject="scripted",
            retries=2,
            on_busy_retry=lambda: retries.append(1),
        )
    assert len(retries) == 2
    assert isinstance(excinfo.value.__cause__, sqlite3.OperationalError)


def test_run_immediate_cross_connection_contention(tmp_path):
    """A real writer holding the lock past busy_timeout is retried."""
    path = str(tmp_path / "db.sqlite")
    setup = sqlite_util.connect_wal(path)
    setup.execute("CREATE TABLE t (v INTEGER)")
    setup.close()

    blocker = sqlite_util.connect_wal(path, busy_timeout=0.001)
    writer = sqlite_util.connect_wal(path, busy_timeout=0.001)
    try:
        blocker.execute("BEGIN IMMEDIATE")
        blocker.execute("INSERT INTO t VALUES (1)")
        release = threading.Timer(
            0.05, lambda: blocker.execute("COMMIT")
        )
        release.start()
        retries = []
        result = sqlite_util.run_immediate(
            writer,
            lambda conn: conn.execute(
                "INSERT INTO t VALUES (2)"
            ).rowcount,
            error=BoomError,
            subject="writer",
            on_busy_retry=lambda: retries.append(1),
        )
        release.join()
        assert result == 1
        assert retries  # at least one busy retry happened
        rows = writer.execute("SELECT v FROM t ORDER BY v").fetchall()
        assert rows == [(1,), (2,)]
    finally:
        writer.close()
        blocker.close()


# --- decide_lease_epoch ---------------------------------------------------


def test_decide_lease_epoch_new():
    assert sqlite_util.decide_lease_epoch(None, "w1", 100.0) == ("new", 1)


def test_decide_lease_epoch_refresh_same_owner_keeps_epoch():
    held = ("w1", 4, 50.0)  # expired, but it's our own lease
    assert sqlite_util.decide_lease_epoch(held, "w1", 100.0) == (
        "refresh",
        4,
    )
    live = ("w1", 4, 200.0)
    assert sqlite_util.decide_lease_epoch(live, "w1", 100.0) == (
        "refresh",
        4,
    )


def test_decide_lease_epoch_takeover_bumps_epoch():
    held = ("w1", 4, 99.0)
    assert sqlite_util.decide_lease_epoch(held, "w2", 100.0) == (
        "takeover",
        5,
    )
    # Boundary: expires_at == now counts as expired.
    assert sqlite_util.decide_lease_epoch(
        ("w1", 4, 100.0), "w2", 100.0
    ) == ("takeover", 5)


def test_decide_lease_epoch_deny_live_foreign_lease():
    held = ("w1", 4, 101.0)
    assert sqlite_util.decide_lease_epoch(held, "w2", 100.0) == (
        "deny",
        4,
    )


def test_epoch_monotonicity_across_release_and_reacquire():
    """The release-in-place convention keeps epochs monotonic."""
    now = 100.0
    decision, epoch = sqlite_util.decide_lease_epoch(None, "w1", now)
    assert (decision, epoch) == ("new", 1)
    # w1 releases: row kept with expires_at = 0.0.
    released = ("w1", epoch, 0.0)
    decision, epoch2 = sqlite_util.decide_lease_epoch(released, "w2", now)
    assert (decision, epoch2) == ("takeover", 2)
    assert epoch2 > epoch
