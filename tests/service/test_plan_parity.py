"""Bit-for-bit serving parity with the plan cache on.

The cache memoises *score tables*, never choices: the strategy still
runs its own tie-break over the table with the session's own rng, so
the question sequence and final predicate of every session must be
identical with the cache on or off — across every serving strategy,
across the packed-word boundary Ω ∈ {63, 64, 65}, through the
speculation fast path, and through crash + rehydrate over a shared
store.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import wait as wait_futures

import pytest

from repro.core import (
    InferenceSession,
    Label,
    PerfectOracle,
    SignatureIndex,
    index_shm,
    run_inference,
    strategy_by_name,
)
from repro.core.serialize import instance_to_dict
from repro.data import generate_tpch, tpch_workloads
from repro.service import (
    IndexCache,
    SessionManager,
    SharedPlanTier,
    SqliteSessionStore,
)
from repro.service.protocol import CreateSpec

from ..conftest import make_random_instance

SERVING_STRATEGIES = ["RND", "BU", "TD", "L1S", "L2S"]
LOOKAHEADS = {"L1S", "L2S"}

#: Arity pairs putting Ω on each side of the packed-word boundary.
OMEGA_BOUNDARY = [(7, 9), (8, 8), (5, 13)]


def boundary_instance(left_arity, right_arity, rows=5, seed=None):
    rng = random.Random(
        seed if seed is not None else left_arity * right_arity
    )
    return make_random_instance(
        rng,
        left_arity=left_arity,
        right_arity=right_arity,
        rows=rows,
        values=3,
    )


def inline_spec(instance, strategy, seed):
    return CreateSpec(
        {"inline": instance_to_dict(instance)},
        instance,
        strategy_by_name(strategy).name,
        seed,
        None,
    )


class BiasedCoin:
    """Mostly-negative seeded answers — long sessions, both polarities."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def label(self, tuple_pair) -> Label:
        if self._rng.random() < 0.12:
            return Label.POSITIVE
        return Label.NEGATIVE


def drive(manager, managed, oracle, limit=None):
    asked = []
    while limit is None or len(asked) < limit:
        question = manager.propose_question(managed)
        if question is None:
            break
        asked.append(question.class_id)
        manager.record_answer(
            managed, question.question_id, oracle.label(question.tuple_pair)
        )
    return asked


def assert_identity(stats):
    """The protocol-level counter identity of the plan cache."""
    assert stats["misses"] == (
        stats["local_hits"] + stats["shared_hits"] + stats["computes"]
    ), stats


class TestCacheOnOffParity:
    @pytest.mark.parametrize("left,right", OMEGA_BOUNDARY)
    @pytest.mark.parametrize("strategy", SERVING_STRATEGIES)
    def test_word_boundary_sequences_identical(
        self, strategy, left, right, tmp_path
    ):
        instance = boundary_instance(left, right)
        assert len(instance.omega) in (63, 64, 65)
        seed = left * right

        off = SessionManager(
            index_cache=IndexCache(), speculate=False, plan_cache=False
        )
        shared = SharedPlanTier.if_available(
            tmp_path / "plan.db", "parity", ttl_seconds=5.0
        )
        on = SessionManager(
            index_cache=IndexCache(), speculate=False, shared_plan=shared
        )
        try:
            baseline = drive(
                off,
                off.create(inline_spec(instance, strategy, seed)),
                BiasedCoin(seed),
            )
            first = drive(
                on,
                on.create(inline_spec(instance, strategy, seed)),
                BiasedCoin(seed),
            )
            # Same seed again: the second session rides cached tables
            # end to end and must still match bit for bit.
            second = drive(
                on,
                on.create(inline_spec(instance, strategy, seed)),
                BiasedCoin(seed),
            )
            assert first == baseline
            assert second == baseline
            assert len(baseline) > 2
            stats = on.stats()["plan_cache"]
            assert stats["enabled"]
            assert_identity(stats)
            if strategy in LOOKAHEADS:
                assert stats["computes"] > 0
                assert stats["local_hits"] > 0  # the replayed session
            else:
                # Stateless strategies never consult the planner path.
                assert stats["misses"] == 0
        finally:
            off.close(wait=True)
            on.close(wait=True)

    def test_depth3_and_reference_mode_parity(self, tmp_path):
        """Depth-3 and the non-vectorised reference kernel follow the
        same route; the cache must be invisible there too."""
        instance = boundary_instance(3, 3, rows=7, seed=2)
        for strategy in ("L3S", "L2S"):
            off = SessionManager(
                index_cache=IndexCache(), speculate=False, plan_cache=False
            )
            on = SessionManager(index_cache=IndexCache(), speculate=False)
            try:
                baseline = drive(
                    off,
                    off.create(inline_spec(instance, strategy, 4)),
                    BiasedCoin(4),
                )
                cached = drive(
                    on,
                    on.create(inline_spec(instance, strategy, 4)),
                    BiasedCoin(4),
                )
                assert cached == baseline
                assert_identity(on.stats()["plan_cache"])
            finally:
                off.close(wait=True)
                on.close(wait=True)


class TestSpeculationParity:
    def test_speculated_session_matches_inline_inference(self):
        """Full session through forced speculation hits with the plan
        cache on: identical to the in-process run, counters add up."""
        workload = tpch_workloads(generate_tpch(scale=1.0, seed=0))[3]
        oracle = PerfectOracle(workload.instance, workload.goal)
        manager = SessionManager(
            build_workers=2, speculation_min_think_seconds=0.0
        )
        try:
            managed = manager.create(
                CreateSpec(
                    {"inline": instance_to_dict(workload.instance)},
                    workload.instance,
                    "L2S",
                    5,
                    None,
                )
            )
            asked = []
            while True:
                question = manager.propose_question(managed)
                if question is None:
                    break
                asked.append(question.class_id)
                spec = managed.speculation
                if spec is not None:
                    wait_futures(
                        [b.future for b in spec.branches.values()],
                        timeout=30,
                    )
                manager.record_answer(
                    managed,
                    question.question_id,
                    oracle.label(question.tuple_pair),
                )
            speculation = manager.stats()["speculation"]
            assert speculation["hits"] == len(asked)
            # Deeper tree levels (grandchild branches) may still be
            # routing; the counter identity settles once they finish.
            deadline = time.monotonic() + 15
            while True:
                plan = manager.stats()["plan_cache"]
                settled = plan["misses"] == (
                    plan["local_hits"]
                    + plan["shared_hits"]
                    + plan["computes"]
                )
                if settled or time.monotonic() > deadline:
                    break
                time.sleep(0.02)
            assert plan["enabled"]
            assert_identity(plan)
            assert plan["misses"] > 0  # the branch twins rode the route
        finally:
            manager.close(wait=True)

        reference = run_inference(
            workload.instance,
            strategy_by_name("L2S"),
            oracle,
            index=SignatureIndex(workload.instance),
            seed=5,
        )
        assert tuple(managed.session._history) == reference.history
        assert len(asked) == reference.interactions
        assert (
            managed.session.current_predicate() == reference.predicate
        )


class TestSpeculationFastPath:
    def _drive_with_waits(self, manager, managed, oracle):
        asked = []
        while True:
            question = manager.propose_question(managed)
            if question is None:
                break
            asked.append(question.class_id)
            spec = managed.speculation
            if spec is not None:
                wait_futures(
                    [b.future for b in spec.branches.values()],
                    timeout=30,
                )
            manager.record_answer(
                managed,
                question.question_id,
                oracle.label(question.tuple_pair),
            )
        return asked

    def _settle(self, manager):
        """Wait until every in-flight route has installed and the
        batcher queue is empty."""
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            stats = manager.stats()
            plan = stats["plan_cache"]
            done = plan["misses"] == (
                plan["local_hits"]
                + plan["shared_hits"]
                + plan["computes"]
            )
            if done and stats["kernel_batch"]["pending_jobs"] == 0:
                return stats
            time.sleep(0.02)
        return manager.stats()

    def test_warm_branches_skip_the_kernel_scheduler(self):
        """Satellite fast path: a forked branch whose key is already
        cached installs the table instead of scheduling a kernel job —
        a whole warm session (speculation included) runs zero jobs."""
        instance = boundary_instance(3, 3, rows=8, seed=6)
        # Depth 1 so every branch is awaited through spec.branches: a
        # deeper tree can abort a cold branch mid-route, leaving a key
        # the warm run would then (legitimately) have to compute.
        manager = SessionManager(
            build_workers=2,
            speculation_min_think_seconds=0.0,
            speculation_depth=1,
        )
        try:
            cold = self._drive_with_waits(
                manager,
                manager.create(inline_spec(instance, "L2S", 9)),
                BiasedCoin(9),
            )
            stats = self._settle(manager)
            jobs_before = (
                stats["kernel_batch"]["batched_jobs"]
                + stats["kernel_batch"]["fallback_jobs"]
            )
            hits_before = stats["plan_cache"]["local_hits"]

            warm = self._drive_with_waits(
                manager,
                manager.create(inline_spec(instance, "L2S", 9)),
                BiasedCoin(9),
            )
            stats = self._settle(manager)
            assert warm == cold
            jobs_after = (
                stats["kernel_batch"]["batched_jobs"]
                + stats["kernel_batch"]["fallback_jobs"]
            )
            assert jobs_after == jobs_before, (
                "warm speculation branches reached the kernel scheduler"
            )
            assert stats["plan_cache"]["local_hits"] > hits_before
            assert_identity(stats["plan_cache"])
        finally:
            manager.close(wait=True)


class TestRehydrateParity:
    @pytest.mark.parametrize("strategy", ["L1S", "L2S"])
    def test_crash_rehydrate_continues_identically(
        self, strategy, tmp_path
    ):
        """Worker A answers half the session and is abandoned without a
        drain; worker B (fresh process-level cache, same shared tier)
        rehydrates from the store and must propose the identical
        remaining sequence — seeded by A's published tables."""
        instance = boundary_instance(8, 8, rows=5, seed=3)
        seed = 21
        oracle = BiasedCoin(seed)

        off = SessionManager(
            index_cache=IndexCache(), speculate=False, plan_cache=False
        )
        try:
            baseline = drive(
                off,
                off.create(inline_spec(instance, strategy, seed)),
                BiasedCoin(seed),
            )
        finally:
            off.close(wait=True)
        assert len(baseline) > 4
        split = len(baseline) // 2

        db = tmp_path / "fleet.db"
        tier_a = SharedPlanTier.if_available(db, "wA", ttl_seconds=5.0)
        worker_a = SessionManager(
            index_cache=IndexCache(),
            speculate=False,
            store=SqliteSessionStore(str(db)),
            checkpoint_every=2,
            shared_plan=tier_a,
        )
        managed = worker_a.create(inline_spec(instance, strategy, seed))
        session_id = managed.session_id
        first_half = drive(worker_a, managed, oracle, limit=split)
        # A proposes one more question (scoring — and publishing — the
        # exact state B will resume at) but "crashes" before the answer:
        # from here on A serves nothing and B takes over from the store
        # (checkpoint + journal tail, exactly what a kill -9 leaves;
        # A's published segments outlive it until its refs expire).
        worker_a.propose_question(managed)
        worker_a.flush_store()

        tier_b = SharedPlanTier.if_available(db, "wB", ttl_seconds=5.0)
        worker_b = SessionManager(
            index_cache=IndexCache(),
            speculate=False,
            store=SqliteSessionStore(str(db)),
            checkpoint_every=2,
            shared_plan=tier_b,
        )
        try:
            rehydrated = worker_b.get(session_id)
            assert rehydrated.session.state.interaction_count == split
            rest = drive(worker_b, rehydrated, oracle)
            assert first_half + rest == baseline
            plan = worker_b.stats()["plan_cache"]
            assert_identity(plan)
            if index_shm.shared_memory_available():
                # B's first proposal lands on the exact state A last
                # scored and published: a cross-process shared hit.
                assert plan["shared_hits"] >= 1
        finally:
            worker_a.close(wait=True)
            worker_a.store.close()
            worker_b.close(wait=True)
            worker_b.store.close()
