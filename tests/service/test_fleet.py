"""The multi-process serving fleet: router, workers, kill -9 recovery.

The acceptance property: a client driving sessions through the fleet
front cannot observe a worker being SIGKILLed — beyond latency.  For
every serving strategy across the packed-word boundary Ω ∈ {63, 64,
65}, a session whose worker is killed mid-inference finishes on a
survivor with the **identical remaining question sequence and final
predicate** as an uninterrupted in-process run: the survivor waits out
the dead worker's lease, takes it over (epoch bump), and replays the
checkpoint + journal tail bit-for-bit.

These tests spawn real worker subprocesses (slow); the pure lease
protocol is covered in-process in ``test_lease.py``.
"""

from __future__ import annotations

import http.client
import socket
import threading
import zlib

import pytest

from repro.core import (
    InferenceSession,
    SignatureIndex,
    index_shm,
    strategy_by_name,
)
from repro.core.serialize import instance_to_dict
from repro.service import (
    FleetConfig,
    FleetServer,
    ServiceApp,
    ServiceClient,
    ServiceClientError,
    SqliteSessionStore,
)

from .test_store import (
    CRASH_STRATEGIES,
    _PrefixedOracle,
    boundary_instance,
    make_manager,
)

CRASH_OMEGAS = [(7, 9), (8, 8), (5, 13)]


# --- helpers -----------------------------------------------------------------


def snapshot_payload(instance, strategy, seed):
    """A zero-answer session snapshot: ``POST /sessions/resume`` with
    this payload opens a session over an arbitrary inline instance —
    how the kill matrix gets its boundary-Ω instances onto the fleet."""
    return {
        "kind": "session_snapshot",
        "version": 1,
        "instance": {"inline": instance_to_dict(instance)},
        "strategy": strategy,
        "seed": seed,
        "max_questions": None,
        "labeled": [],
    }


def reference_run(instance, strategy, seed, oracle):
    """The uninterrupted in-process run: the asked tuple pairs (JSON
    shape) and the final predicate pairs (wire shape)."""
    session = InferenceSession(
        instance,
        strategy_by_name(strategy),
        index=SignatureIndex(instance),
        seed=seed,
    )
    asked = []
    while not session.is_finished():
        question = session.propose()
        left_row, right_row = question.tuple_pair
        asked.append([list(left_row), list(right_row)])
        session.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
    predicate = session.current_predicate()
    return asked, [
        [str(a), str(b)] for a, b in predicate.sorted_pairs()
    ]


def drive_http(client, session_id, oracle, limit=None):
    """Answer questions over HTTP until Γ (or ``limit``); returns the
    asked tuple pairs in JSON shape."""
    asked = []
    while limit is None or len(asked) < limit:
        question = client.next_question(session_id)
        if question is None:
            break
        asked.append([question["left"]["row"], question["right"]["row"]])
        label = oracle.label(None)
        client.post_answer(
            session_id, question["question_id"], label.value
        )
    return asked


def fleet_config(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("lease_ttl_seconds", 1.0)
    kwargs.setdefault("speculate", False)
    return FleetConfig(
        store_path=str(tmp_path / "fleet.db"), **kwargs
    )


# --- basics ------------------------------------------------------------------


class TestFleetBasics:
    def test_serves_protocol_with_pinned_routing(self, tmp_path):
        with FleetServer(fleet_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            sids = []
            for _ in range(6):
                info = client.create_session(
                    workload="tpch/join2", strategy="TD", seed=7
                )
                sids.append(info["session_id"])
                question = client.next_question(info["session_id"])
                client.post_answer(
                    info["session_id"], question["question_id"], "-"
                )

            # Sessions land on their crc32 home slot, nowhere else.
            expected = {0: 0, 1: 0}
            for sid in sids:
                expected[zlib.crc32(sid.encode("utf-8")) % 2] += 1
            stats = client.stats()
            actual = {
                int(slot): payload["sessions"]
                for slot, payload in stats["workers"].items()
            }
            assert actual == expected
            assert stats["sessions"] == 6
            assert stats["fleet"]["alive"] == 2
            assert stats["fleet"]["failovers_total"] == 0

            overview = client.sessions_overview()
            assert sorted(
                entry["session_id"] for entry in overview["sessions"]
            ) == sorted(sids)
            assert overview["live"] == 6
            assert overview["recoverable"] == 0

            # Deletes route home too and the fleet forgets the session.
            client.delete_session(sids[0])
            assert client.stats()["sessions"] == 5

    def test_matches_single_server_run(self, tmp_path):
        instance = boundary_instance(3, 3, rows=6, seed=8)
        expected, expected_predicate = reference_run(
            instance, "L2S", 13, _PrefixedOracle(0, seed=5)
        )
        with FleetServer(fleet_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            info = client.resume(snapshot_payload(instance, "L2S", 13))
            asked = drive_http(
                client, info["session_id"], _PrefixedOracle(0, seed=5)
            )
            predicate = client.predicate(info["session_id"])
            assert asked == expected
            assert predicate["predicate"]["pairs"] == expected_predicate

    def test_fleet_endpoint_describes_slots(self, tmp_path):
        with FleetServer(fleet_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            payload = client._request("GET", "/fleet")
            assert payload["workers"] == 2
            assert payload["alive"] == 2
            slots = payload["slots"]
            assert [entry["slot"] for entry in slots] == [0, 1]
            assert all(entry["alive"] for entry in slots)
            owners = {entry["owner"] for entry in slots}
            assert len(owners) == 2

    def test_fleet_aggregates_the_plan_cache_across_workers(
        self, tmp_path
    ):
        """One full session per slot over the same instance and seed:
        whichever worker scores a state second rides the first worker's
        published tables, and ``GET /fleet`` rolls the counters up —
        sums per worker, each machine-wide shared entry counted once."""
        instance = boundary_instance(3, 3, rows=6, seed=8)
        with FleetServer(fleet_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            driven: set[int] = set()
            for _ in range(24):
                info = client.resume(
                    snapshot_payload(instance, "L2S", 13)
                )
                sid = info["session_id"]
                slot = zlib.crc32(sid.encode("utf-8")) % 2
                if slot in driven:
                    continue
                drive_http(client, sid, _PrefixedOracle(0, seed=5))
                driven.add(slot)
                if len(driven) == 2:
                    break
            assert driven == {0, 1}

            payload = client.fleet()
            plan = payload["plan_cache"]
            assert set(plan) == {
                "local_hits_total",
                "shared_hits_total",
                "computes_total",
                "publishes_total",
                "entries_total",
                "shared_entries",
                "shared_bytes",
            }
            by_slot = payload["memory"]["by_slot"]
            assert len(by_slot) == 2
            assert plan["computes_total"] == sum(
                slot["plan_computes"] for slot in by_slot.values()
            )
            assert plan["shared_hits_total"] == sum(
                slot["plan_shared_hits"] for slot in by_slot.values()
            )
            assert plan["local_hits_total"] == sum(
                slot["plan_local_hits"] for slot in by_slot.values()
            )
            assert plan["computes_total"] >= 1
            assert plan["entries_total"] >= 1
            if index_shm.shared_memory_available():
                # The second slot's identical trajectory is served from
                # the first slot's published tables.
                assert plan["shared_hits_total"] >= 1
                assert plan["publishes_total"] >= 1
                assert plan["shared_entries"] >= 1
                assert plan["shared_bytes"] > 0
                # Every worker reads the same registry, so the ready
                # totals aggregate by max: two workers mapping one
                # entry must not count it twice.
                assert plan["shared_entries"] <= plan["publishes_total"]

    def test_unknown_route_is_404(self, tmp_path):
        with FleetServer(fleet_config(tmp_path, workers=1)) as server:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceClientError) as excinfo:
                client._request("GET", "/nope")
            assert excinfo.value.status == 404


# --- control routes ----------------------------------------------------------


class TestControlRoutes:
    def run(self, coro):
        import asyncio

        return asyncio.run(coro)

    def test_disabled_by_default(self):
        manager = make_manager()
        app = ServiceApp(manager)
        status, _ = self.run(
            app.dispatch("GET", "/control/health", None)
        )
        assert status == 404
        manager.close(wait=True)

    def test_health_when_enabled(self):
        manager = make_manager()
        app = ServiceApp(manager, control=True)
        status, payload = self.run(
            app.dispatch("GET", "/control/health", None)
        )
        assert status == 200
        assert payload["ok"] is True
        assert payload["sessions"] == 0
        manager.close(wait=True)


# --- respawn and failover ----------------------------------------------------


class TestRespawn:
    def test_killed_slot_respawns_with_new_owner(self, tmp_path):
        with FleetServer(fleet_config(tmp_path)) as server:
            client = ServiceClient(server.host, server.port)
            before = client._request("GET", "/fleet")
            old = before["slots"][0]
            killed_pid = server.kill_worker(0)
            assert killed_pid == old["pid"]
            server.wait_for_slot(0)
            after = client._request("GET", "/fleet")
            fresh = after["slots"][0]
            assert after["respawns_total"] == 1
            assert fresh["pid"] != old["pid"]
            assert fresh["owner"] != old["owner"]
            assert fresh["generation"] > old["generation"]
            # The respawned fleet serves new sessions normally.
            info = client.create_session(
                workload="tpch/join2", strategy="TD"
            )
            assert client.next_question(info["session_id"]) is not None


# --- kill -9 acceptance matrix -----------------------------------------------


class TestKillTheWorker:
    CUT = 4

    def test_sessions_finish_identically_across_sigkill(self, tmp_path):
        """Every strategy × Ω ∈ {63, 64, 65}: prefix on the original
        worker, SIGKILL both slots in turn (so every session loses its
        home at least once), finish on survivors — the full question
        sequence and predicate match the uninterrupted run."""
        combos = []
        instances = {}
        for left, right in CRASH_OMEGAS:
            omega = left * right
            for strategy in CRASH_STRATEGIES:
                rows = 4 if strategy == "L3S" else 6
                key = (omega, rows)
                if key not in instances:
                    instances[key] = boundary_instance(
                        left, right, rows=rows
                    )
                combos.append((strategy, omega, instances[key]))

        config = fleet_config(tmp_path, checkpoint_every=4)
        with FleetServer(config) as server:
            client = ServiceClient(
                server.host, server.port, retries=5, retry_backoff=0.2
            )
            plans = []
            for strategy, omega, instance in combos:
                expected, expected_predicate = reference_run(
                    instance,
                    strategy,
                    5,
                    _PrefixedOracle(self.CUT, seed=omega),
                )
                assert len(expected) > self.CUT, (strategy, omega)
                info = client.resume(
                    snapshot_payload(instance, strategy, 5)
                )
                sid = info["session_id"]
                prefix = drive_http(
                    client,
                    sid,
                    _PrefixedOracle(self.CUT, seed=omega),
                    limit=self.CUT,
                )
                assert prefix == expected[: self.CUT], (strategy, omega)
                plans.append(
                    (sid, strategy, omega, expected, expected_predicate)
                )

            oracles = {
                sid: _PrefixedOracle(0, seed=omega)
                for sid, _, omega, _, _ in plans
            }
            consumed: dict[str, list] = {}

            # Both slots die in turn: every session loses its worker
            # (and failed-over sessions lose their survivor too).  A
            # question is driven into each dead slot *before* it
            # respawns, so the router's failover-to-survivor path —
            # not just respawn-then-rehydrate — carries real traffic.
            for dead_slot in (0, 1):
                server.kill_worker(dead_slot)
                victim = next(
                    sid
                    for sid, *_ in plans
                    if zlib.crc32(sid.encode("utf-8")) % 2 == dead_slot
                )
                consumed[victim] = drive_http(
                    client, victim, oracles[victim], limit=1
                )
                server.wait_for_slot(dead_slot)

            for sid, strategy, omega, expected, exp_predicate in plans:
                suffix = consumed.get(sid, []) + drive_http(
                    client, sid, oracles[sid]
                )
                assert suffix == expected[self.CUT :], (
                    f"{strategy} Ω={omega}: recovered session diverged "
                    f"from the uninterrupted run"
                )
                predicate = client.predicate(sid)
                assert predicate["predicate"]["pairs"] == exp_predicate, (
                    f"{strategy} Ω={omega}: predicate diverged"
                )

            fleet_stats = client.stats()["fleet"]
            assert fleet_stats["respawns_total"] == 2
            assert fleet_stats["failovers_total"] >= 1


# --- graceful drain ----------------------------------------------------------


class TestGracefulDrain:
    def test_close_with_drain_persists_everything(self, tmp_path):
        config = fleet_config(tmp_path)
        server = FleetServer(config).start()
        client = ServiceClient(server.host, server.port)
        sids = []
        for _ in range(4):
            info = client.create_session(
                workload="tpch/join2", strategy="TD"
            )
            sids.append(info["session_id"])
            question = client.next_question(info["session_id"])
            client.post_answer(
                info["session_id"], question["question_id"], "-"
            )
        server.close(drain=True)

        store = SqliteSessionStore(config.store_path)
        assert sorted(store.session_ids()) == sorted(sids)
        for sid in sids:
            lease = store.lease_of(sid)
            assert lease is None or lease.expired(), (
                f"{sid}: drain left a live lease behind"
            )
            stored = store.load(sid)
            assert stored is not None
            assert len(stored.payload["labeled"]) == 1
        store.close()

    def test_drained_sessions_resume_in_next_fleet(self, tmp_path):
        config = fleet_config(tmp_path)
        server = FleetServer(config).start()
        client = ServiceClient(server.host, server.port)
        info = client.create_session(
            workload="tpch/join2", strategy="TD", seed=3
        )
        sid = info["session_id"]
        question = client.next_question(sid)
        client.post_answer(sid, question["question_id"], "-")
        server.close(drain=True)

        with FleetServer(config) as successor:
            client = ServiceClient(successor.host, successor.port)
            overview = client.sessions_overview()
            assert overview["live"] == 0
            assert overview["recoverable"] == 1
            resumed = client.session_info(sid)
            assert resumed["progress"]["interactions"] == 1


# --- client retry behaviour --------------------------------------------------


class _FlakyServer:
    """Accepts connections; drops the first N without a byte of
    response (a worker SIGKILLed mid-request), then serves a canned
    HTTP response forever."""

    RESPONSE = (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 13\r\n"
        b"Connection: close\r\n"
        b"\r\n"
        b'{"ok": true}\n'
    )

    def __init__(self, drops: int):
        self._drops = drops
        self.requests = 0
        self._socket = socket.create_server(("127.0.0.1", 0))
        self.port = self._socket.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                connection, _ = self._socket.accept()
            except OSError:
                return
            with connection:
                try:
                    connection.recv(65536)
                except OSError:
                    continue
                self.requests += 1
                if self._drops > 0:
                    self._drops -= 1
                    continue  # close without responding
                connection.sendall(self.RESPONSE)

    def close(self) -> None:
        self._socket.close()


class TestClientRetries:
    def test_get_retries_through_connection_reset(self):
        flaky = _FlakyServer(drops=2)
        try:
            client = ServiceClient(
                "127.0.0.1", flaky.port, retries=3, retry_backoff=0.01
            )
            assert client._request("GET", "/stats") == {"ok": True}
            assert flaky.requests == 3
        finally:
            flaky.close()

    def test_get_gives_up_after_retry_budget(self):
        flaky = _FlakyServer(drops=10)
        try:
            client = ServiceClient(
                "127.0.0.1", flaky.port, retries=2, retry_backoff=0.01
            )
            with pytest.raises(
                (http.client.HTTPException, OSError)
            ):
                client._request("GET", "/stats")
            assert flaky.requests == 2
        finally:
            flaky.close()

    def test_post_never_retries(self):
        flaky = _FlakyServer(drops=10)
        try:
            client = ServiceClient(
                "127.0.0.1", flaky.port, retries=5, retry_backoff=0.01
            )
            with pytest.raises(
                (http.client.HTTPException, OSError)
            ):
                client._request("POST", "/sessions", {"x": 1})
            assert flaky.requests == 1
        finally:
            flaky.close()

    def test_retries_must_be_positive(self):
        with pytest.raises(ValueError):
            ServiceClient("127.0.0.1", 1, retries=0)
