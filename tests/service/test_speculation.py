"""Speculative next-question precompute — correctness and accounting.

The manager precomputes both answer branches of a pending question on
the build pool; these tests pin the contract: a precomputed branch is
**identical** to what the live session would have computed inline, a
miss falls back to the inline path without divergence, counters add up,
and cancellation paths do not leak or corrupt sessions.
"""

from __future__ import annotations

import time
from concurrent.futures import wait as wait_futures

import pytest

from repro.core import (
    Label,
    PerfectOracle,
    SignatureIndex,
    run_inference,
    strategy_by_name,
)
from repro.data import generate_tpch, tpch_workloads
from repro.service import ServiceClient, ServiceServer, SessionManager
from repro.service.protocol import parse_create_payload


def _workload():
    return tpch_workloads(generate_tpch(scale=1.0, seed=0))[3]


def _create(manager, strategy="L2S", seed=0):
    spec = parse_create_payload(
        {"workload": "tpch/join4", "strategy": strategy, "seed": seed}
    )
    return manager.create(spec)


def _await_speculation(managed):
    spec = managed.speculation
    assert spec is not None
    wait_futures([b.future for b in spec.branches.values()], timeout=30)
    return spec


class TestPrecomputeCorrectness:
    @pytest.mark.parametrize("strategy", ["L2S", "L1S"])
    def test_full_session_matches_inline_inference(self, strategy):
        """Drive a whole session through speculation hits; the question
        sequence and final predicate must equal the in-process run."""
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        # min_think 0: this test answers as fast as the branches finish,
        # which the adaptive gate would (correctly) classify as a
        # zero-think-time client.
        manager = SessionManager(
            build_workers=2, speculation_min_think_seconds=0.0
        )
        try:
            managed = _create(manager, strategy=strategy, seed=5)
            asked = []
            while True:
                question = manager.propose_question(managed)
                if question is None:
                    break
                asked.append(question.class_id)
                _await_speculation(managed)  # force the hit path
                label = oracle.label(question.tuple_pair)
                manager.record_answer(
                    managed, question.question_id, label
                )
            stats = manager.stats()["speculation"]
            assert stats["hits"] == len(asked)
            assert stats["misses"] == 0
            assert stats["hit_ratio"] == 1.0
        finally:
            manager.close(wait=True)

        reference = run_inference(
            workload.instance,
            strategy_by_name(strategy),
            oracle,
            index=SignatureIndex(workload.instance),
            seed=5,
        )
        session = managed.session
        assert tuple(session._history) == reference.history
        assert session.current_predicate() == reference.predicate
        assert session.state.interaction_count == reference.interactions

    def test_precomputed_branch_equals_fresh_proposal(self):
        """Each speculative fork's next question must equal what the
        live session proposes after answering the same label inline."""
        workload = _workload()
        manager = SessionManager(build_workers=2)
        try:
            for label in (Label.POSITIVE, Label.NEGATIVE):
                managed = _create(manager, seed=int(label is Label.POSITIVE))
                question = manager.propose_question(managed)
                spec = _await_speculation(managed)
                example, twin = spec.branches[label].future.result()

                # inline path on the live session, bypassing speculation
                managed.speculation.cancel()
                managed.speculation = None
                inline_example = managed.session.answer(
                    question.question_id, label
                )
                fresh = managed.session.propose()

                assert example == inline_example
                assert twin.pending_question == fresh
                assert (
                    twin.state.labeled_classes()
                    == managed.session.state.labeled_classes()
                )
                assert twin.rng.getstate() == managed.session.rng.getstate()
        finally:
            manager.close(wait=True)

    def test_miss_falls_back_inline(self):
        import threading

        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        manager = SessionManager(build_workers=1)
        release = threading.Event()
        try:
            managed = _create(manager, seed=9)
            # Occupy the single build worker so both branch jobs stay
            # queued: the answer must arrive before speculation ran.
            manager._executor().submit(release.wait)
            question = manager.propose_question(managed)
            label = oracle.label(question.tuple_pair)
            example = manager.record_answer(
                managed, question.question_id, label
            )
            assert example.label is label
            assert managed.speculation is None
            stats = manager.stats()["speculation"]
            assert stats["misses"] == 1
            assert stats["hits"] == 0
            # the queued branches were cancelled outright
            assert managed.session.state.interaction_count == 1
        finally:
            release.set()
            manager.close(wait=True)


class TestSpeculativeHint:
    def test_cheap_strategies_skip_speculation(self):
        """RND/BU/TD proposals cost less than a fork — no branches."""
        manager = SessionManager(build_workers=2)
        try:
            for strategy in ("RND", "BU", "TD"):
                managed = _create(manager, strategy=strategy, seed=1)
                assert manager.propose_question(managed) is not None
                assert managed.speculation is None
            assert manager.stats()["speculation"]["submitted"] == 0
        finally:
            manager.close(wait=True)

    def test_session_fork_clones_rng_for_random_strategy(self):
        """The fork machinery itself must stay correct for rng-consuming
        strategies (shared instance, cloned rng): a fork answered like
        the original proposes the identical next question."""
        workload = _workload()
        manager = SessionManager(build_workers=2)
        try:
            managed = _create(manager, strategy="RND", seed=11)
            question = manager.propose_question(managed)
            twin = managed.session.fork()
            twin.answer(question.question_id, Label.NEGATIVE)
            managed.session.answer(question.question_id, Label.NEGATIVE)
            assert twin.propose() == managed.session.propose()
        finally:
            manager.close(wait=True)


class TestAdaptiveThinkGate:
    def test_fast_oracles_stop_speculating(self):
        """A client answering instantly has no think-time to exploit:
        after the first measured gap the session stops speculating."""
        now = [0.0]
        manager = SessionManager(
            build_workers=2,
            clock=lambda: now[0],
            speculation_min_think_seconds=0.05,
        )
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        try:
            managed = _create(manager, seed=2)
            first = manager.propose_question(managed)
            assert managed.speculation is not None  # optimistic start
            now[0] += 0.001  # the "user" answered within a millisecond
            manager.record_answer(
                managed, first.question_id, oracle.label(first.tuple_pair)
            )
            assert managed.think_ewma == pytest.approx(0.001)
            second = manager.propose_question(managed)
            assert second is not None
            assert managed.speculation is None  # gate closed
            assert manager.stats()["speculation"]["skipped_think"] == 1
        finally:
            manager.close(wait=True)

    def test_slow_oracles_keep_speculating(self):
        now = [0.0]
        manager = SessionManager(
            build_workers=2,
            clock=lambda: now[0],
            speculation_min_think_seconds=0.05,
        )
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        try:
            managed = _create(manager, seed=2)
            first = manager.propose_question(managed)
            now[0] += 3.0  # a thinking human
            manager.record_answer(
                managed, first.question_id, oracle.label(first.tuple_pair)
            )
            assert manager.propose_question(managed) is not None
            assert managed.speculation is not None
            assert manager.stats()["speculation"]["skipped_think"] == 0
        finally:
            manager.close(wait=True)


class TestCapacityAndCancellation:
    def test_capacity_cap_skips_speculation(self):
        manager = SessionManager(build_workers=1, speculation_slots=0)
        try:
            managed = _create(manager)
            question = manager.propose_question(managed)
            assert question is not None
            assert managed.speculation is None
            stats = manager.stats()["speculation"]
            assert stats["skipped_capacity"] == 1
            assert stats["submitted"] == 0
        finally:
            manager.close(wait=True)

    def test_pending_build_preempts_speculation(self, monkeypatch):
        """Speculation must never queue ahead of a cold index build."""
        manager = SessionManager(build_workers=2)
        try:
            managed = _create(manager)
            monkeypatch.setattr(
                type(manager.index_cache),
                "pending_builds",
                lambda self: [{"key": "cold"}],
            )
            assert manager.propose_question(managed) is not None
            assert managed.speculation is None
            assert manager.stats()["speculation"]["skipped_capacity"] == 1
        finally:
            manager.close(wait=True)

    def test_cold_build_cancels_inflight_speculation(self):
        """A cold create must not queue behind running branch jobs:
        submitting the build cancels every in-flight speculation."""
        import asyncio

        manager = SessionManager(build_workers=2)
        try:
            managed = _create(manager)
            manager.propose_question(managed)
            spec = managed.speculation
            assert spec is not None

            async def create_cold():
                cold = parse_create_payload(
                    {"workload": "synthetic/1", "strategy": "TD", "seed": 0}
                )
                await manager.create_async(cold)

            asyncio.run(create_cold())
            assert managed.speculation is None
            for branch in spec.branches.values():
                assert branch.abort.is_set()
        finally:
            manager.close(wait=True)

    def test_speculation_disabled(self):
        manager = SessionManager(speculate=False)
        try:
            managed = _create(manager)
            assert manager.propose_question(managed) is not None
            assert managed.speculation is None
            assert manager.stats()["speculation"]["enabled"] is False
        finally:
            manager.close(wait=True)

    def test_repeated_fetch_reuses_speculation(self):
        manager = SessionManager(build_workers=2)
        try:
            managed = _create(manager)
            first = manager.propose_question(managed)
            spec = managed.speculation
            second = manager.propose_question(managed)
            assert first == second
            assert managed.speculation is spec
            assert manager.stats()["speculation"]["submitted"] == 1
        finally:
            manager.close(wait=True)

    def test_delete_cancels_speculation(self):
        manager = SessionManager(build_workers=2)
        try:
            managed = _create(manager)
            manager.propose_question(managed)
            spec = managed.speculation
            manager.delete(managed.session_id)
            assert managed.speculation is None
            for branch in spec.branches.values():
                assert branch.abort.is_set()
        finally:
            manager.close(wait=True)

    def test_wrong_question_id_keeps_speculation(self):
        from repro.core.session import QuestionProtocolError

        manager = SessionManager(build_workers=2)
        try:
            managed = _create(manager)
            manager.propose_question(managed)
            with pytest.raises(QuestionProtocolError):
                manager.record_answer(managed, 999, Label.NEGATIVE)
            assert managed.speculation is not None
        finally:
            manager.close(wait=True)


class TestOverHttp:
    def test_speculation_hits_surface_in_stats(self):
        """End-to-end: a think-time-paced client should land on the
        precomputed branch, and /stats must say so."""
        workload = _workload()
        oracle = PerfectOracle(workload.instance, workload.goal)
        manager = SessionManager(build_workers=2)
        with ServiceServer(manager=manager) as server:
            with ServiceClient(server.host, server.port) as client:
                info = client.create_session(
                    workload="tpch/join4", strategy="L2S", seed=3
                )
                session_id = info["session_id"]
                while (q := client.next_question(session_id)) is not None:
                    # a (fast) thinking user — enough for the tiny
                    # branch computations to finish
                    deadline = time.monotonic() + 5.0
                    while time.monotonic() < deadline:
                        managed = manager.get(session_id)
                        spec = managed.speculation
                        if spec is not None and all(
                            b.future.done()
                            for b in spec.branches.values()
                        ):
                            break
                        time.sleep(0.005)
                    pair = (
                        tuple(q["left"]["row"]),
                        tuple(q["right"]["row"]),
                    )
                    client.post_answer(
                        session_id,
                        q["question_id"],
                        str(oracle.label(pair)),
                    )
                final = client.predicate(session_id)
                stats = client.stats()

        speculation = stats["speculation"]
        assert speculation["enabled"] is True
        assert speculation["hits"] > 0
        assert speculation["hit_ratio"] > 0.5

        reference = run_inference(
            workload.instance,
            strategy_by_name("L2S"),
            oracle,
            index=SignatureIndex(workload.instance),
            seed=3,
        )
        expected = [
            [str(a), str(b)]
            for a, b in reference.predicate.sorted_pairs()
        ]
        assert final["predicate"]["pairs"] == expected
        assert final["progress"]["interactions"] == reference.interactions
