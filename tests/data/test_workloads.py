"""TPC-H workload definitions (§5.1's five joins)."""

import pytest

from repro.core import PerfectOracle, TopDownStrategy, run_inference
from repro.data import WORKLOAD_NAMES, generate_tpch, tpch_workloads


@pytest.fixture(scope="module")
def tables():
    return generate_tpch(scale=1.0, seed=7)


class TestWorkloadDefinitions:
    def test_five_workloads(self, tables):
        workloads = tpch_workloads(tables)
        assert [w.name for w in workloads] == list(WORKLOAD_NAMES)

    def test_goal_sizes(self, tables):
        """Joins 1–4 have size 1; Join 5 has size 2 (§5.1)."""
        sizes = {w.name: w.goal_size for w in tpch_workloads(tables)}
        assert sizes == {
            "join1": 1,
            "join2": 1,
            "join3": 1,
            "join4": 1,
            "join5": 2,
        }

    def test_goal_predicates_match_key_fk(self, tables):
        workloads = {w.name: w for w in tpch_workloads(tables)}
        assert "partkey" in str(workloads["join1"].goal)
        assert "suppkey" in str(workloads["join2"].goal)
        assert "custkey" in str(workloads["join3"].goal)
        assert "orderkey" in str(workloads["join4"].goal)

    def test_trimmed_reduces_omega(self, tables):
        trimmed = tpch_workloads(tables, trimmed=True)
        full = tpch_workloads(tables, trimmed=False)
        for small, big in zip(trimmed, full):
            assert len(small.instance.omega) < len(big.instance.omega)

    def test_trimmed_keeps_goal_valid(self, tables):
        for workload in tpch_workloads(tables, trimmed=True):
            workload.goal.validate_for(workload.instance)

    def test_descriptions_mention_tables(self, tables):
        for workload in tpch_workloads(tables):
            assert "[" in workload.description


class TestEndToEndInference:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_td_recovers_each_goal(self, tables, name):
        workload = next(
            w for w in tpch_workloads(tables) if w.name == name
        )
        result = run_inference(
            workload.instance,
            TopDownStrategy(),
            PerfectOracle(workload.instance, workload.goal),
            seed=0,
        )
        assert result.matches_goal(workload.instance, workload.goal)

    def test_size1_joins_found_quickly(self, tables):
        """The paper's headline: key/FK joins of size 1 need only a
        handful of interactions regardless of data size.  TD's visit
        order among ⊆-maximal classes is arbitrary (§4.3), so the exact
        constant varies; it must stay far below the class count."""
        from repro.core import SignatureIndex

        for workload in tpch_workloads(tables):
            if workload.goal_size != 1:
                continue
            index = SignatureIndex(workload.instance)
            result = run_inference(
                workload.instance,
                TopDownStrategy(),
                PerfectOracle(workload.instance, workload.goal),
                index=index,
                seed=0,
            )
            assert result.interactions <= max(20, len(index) // 4), (
                workload.name
            )
