"""Mini TPC-H generator: schema, integrity, domain overlaps."""

import pytest

from repro.data import TABLE_NAMES, generate_tpch


@pytest.fixture(scope="module")
def tables():
    return generate_tpch(scale=1.0, seed=42)


class TestShapes:
    def test_fixed_tables(self, tables):
        assert len(tables.region) == 5
        assert len(tables.nation) == 25

    def test_scaled_row_counts(self, tables):
        assert len(tables.part) == 20
        assert len(tables.supplier) == 10
        assert len(tables.partsupp) == 80  # 4 suppliers per part
        assert len(tables.customer) == 15
        assert len(tables.orders) == 30
        assert len(tables.lineitem) >= 30  # ≥ 1 line per order

    def test_scale_parameter(self):
        small = generate_tpch(scale=0.5, seed=1)
        assert len(small.part) == 10
        assert len(small.partsupp) == 40

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_tpch(scale=0)

    def test_table_lookup(self, tables):
        assert tables.table("part") is tables.part
        with pytest.raises(KeyError):
            tables.table("warehouse")

    def test_all_tables_order(self, tables):
        assert [t.name for t in tables.all_tables()] == list(TABLE_NAMES)

    def test_seed_determinism(self):
        assert generate_tpch(seed=3).lineitem == generate_tpch(
            seed=3
        ).lineitem


class TestReferentialIntegrity:
    def test_nation_region_fk(self, tables):
        region_keys = set(tables.region.column("regionkey"))
        assert set(tables.nation.column("regionkey")) <= region_keys

    def test_supplier_nation_fk(self, tables):
        nation_keys = set(tables.nation.column("nationkey"))
        assert set(tables.supplier.column("nationkey")) <= nation_keys

    def test_partsupp_fks(self, tables):
        part_keys = set(tables.part.column("partkey"))
        supp_keys = set(tables.supplier.column("suppkey"))
        assert set(tables.partsupp.column("partkey")) <= part_keys
        assert set(tables.partsupp.column("suppkey")) <= supp_keys

    def test_orders_customer_fk(self, tables):
        cust_keys = set(tables.customer.column("custkey"))
        assert set(tables.orders.column("custkey")) <= cust_keys

    def test_lineitem_fks(self, tables):
        order_keys = set(tables.orders.column("orderkey"))
        assert set(tables.lineitem.column("orderkey")) <= order_keys

    def test_lineitem_partsupp_composite_fk(self, tables):
        """Join 5's composite key: every lineitem (partkey, suppkey) pair
        exists in partsupp."""
        partsupp_pairs = {
            (row[0], row[1]) for row in tables.partsupp
        }
        lineitem_pairs = {
            (row[1], row[2]) for row in tables.lineitem
        }
        assert lineitem_pairs <= partsupp_pairs

    def test_primary_keys_unique(self, tables):
        for table, column in [
            (tables.part, "partkey"),
            (tables.supplier, "suppkey"),
            (tables.customer, "custkey"),
            (tables.orders, "orderkey"),
        ]:
            keys = table.column(column)
            assert len(keys) == len(set(keys))


class TestDomainOverlaps:
    """§5.1: 'a value 15 may as well represent a key, a size, a price, or
    a quantity' — the generator must create these ambiguities."""

    def test_part_size_overlaps_partkey(self, tables):
        sizes = set(tables.part.column("size"))
        keys = set(tables.part.column("partkey"))
        assert sizes & keys

    def test_lineitem_quantity_overlaps_keys(self, tables):
        quantities = set(tables.lineitem.column("quantity"))
        order_keys = set(tables.lineitem.column("orderkey"))
        assert quantities & order_keys

    def test_status_flags_overlap_across_tables(self, tables):
        order_status = set(tables.orders.column("orderstatus"))
        line_status = set(tables.lineitem.column("linestatus"))
        assert order_status & line_status

    def test_join_ratios_in_table1_band(self, tables):
        """Table 1 reports TPC-H join ratios between 1 and ~2.4."""
        from repro.core import SignatureIndex
        from repro.data import tpch_workloads

        for workload in tpch_workloads(tables):
            ratio = SignatureIndex(workload.instance).join_ratio()
            assert 1.0 <= ratio <= 3.0, workload.name

    def test_goal_joins_are_selective(self, tables):
        """Key/FK joins select far less than the Cartesian product."""
        from repro.relational import equijoin
        from repro.data import tpch_workloads

        for workload in tpch_workloads(tables):
            selected = len(equijoin(workload.instance, workload.goal))
            assert 0 < selected < workload.instance.cartesian_size / 2
