"""Synthetic dataset generator tests (§5.2)."""

import pytest

from repro.data import PAPER_CONFIGS, SyntheticConfig, generate_synthetic


class TestConfig:
    def test_label_format(self):
        assert SyntheticConfig(3, 3, 50, 100).label == "(3,3,50,100)"

    def test_omega_size(self):
        assert SyntheticConfig(2, 5, 50, 100).omega_size == 10

    def test_paper_configs_match_section52(self):
        labels = [config.label for config in PAPER_CONFIGS]
        assert labels == [
            "(3,3,100,100)",
            "(3,3,50,100)",
            "(3,4,50,100)",
            "(2,5,50,100)",
            "(2,4,50,50)",
            "(2,4,50,100)",
        ]

    def test_scaled_preserves_everything_but_rows(self):
        config = SyntheticConfig(3, 4, 50, 100).scaled(10)
        assert (config.left_arity, config.right_arity) == (3, 4)
        assert config.rows == 10
        assert config.values == 100

    @pytest.mark.parametrize(
        "bad",
        [
            dict(left_arity=0, right_arity=1, rows=1, values=1),
            dict(left_arity=1, right_arity=0, rows=1, values=1),
            dict(left_arity=1, right_arity=1, rows=0, values=1),
            dict(left_arity=1, right_arity=1, rows=1, values=0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SyntheticConfig(**bad)


class TestGeneration:
    def test_shapes(self):
        config = SyntheticConfig(3, 4, 20, 100)
        instance = generate_synthetic(config, seed=1)
        assert instance.left.arity == 3
        assert instance.right.arity == 4
        # Collisions are unlikely at v=100 but set semantics may dedupe.
        assert len(instance.left) <= 20
        assert len(instance.right) <= 20

    def test_value_domain(self):
        config = SyntheticConfig(2, 2, 30, 5)
        instance = generate_synthetic(config, seed=2)
        values = {
            value for row in instance.left for value in row
        } | {value for row in instance.right for value in row}
        assert values <= set(range(5))

    def test_seed_determinism(self):
        config = SyntheticConfig(3, 3, 25, 50)
        assert generate_synthetic(config, seed=7) == generate_synthetic(
            config, seed=7
        )

    def test_different_seeds_differ(self):
        config = SyntheticConfig(3, 3, 25, 50)
        assert generate_synthetic(config, seed=1) != generate_synthetic(
            config, seed=2
        )

    def test_attribute_names_follow_paper(self):
        instance = generate_synthetic(SyntheticConfig(2, 3, 5, 9), seed=0)
        assert [a.name for a in instance.left.schema] == ["A1", "A2"]
        assert [b.name for b in instance.right.schema] == ["B1", "B2", "B3"]

    def test_join_ratio_in_papers_range(self):
        """Table 1 reports ratios 1.3–1.7 for the paper's configurations;
        allow a generous band around that."""
        from repro.core import SignatureIndex

        config = SyntheticConfig(3, 3, 50, 100)
        ratios = [
            SignatureIndex(
                generate_synthetic(config, seed=seed)
            ).join_ratio()
            for seed in range(5)
        ]
        mean_ratio = sum(ratios) / len(ratios)
        assert 1.0 <= mean_ratio <= 2.2
