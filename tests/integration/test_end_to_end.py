"""End-to-end integration across packages."""

import random

import pytest

from repro.core import (
    OptimalStrategy,
    PerfectOracle,
    SignatureIndex,
    default_strategies,
    run_inference,
)
from repro.data import (
    PAPER_CONFIGS,
    generate_synthetic,
    generate_tpch,
    tpch_workloads,
)
from repro.relational import JoinPredicate, equijoin
from repro.relational.sqlite_backend import (
    connect_memory,
    sql_equijoin,
    store_instance,
)


class TestTpchPipeline:
    @pytest.fixture(scope="class")
    def workloads(self):
        return tpch_workloads(generate_tpch(scale=0.8, seed=3))

    def test_all_strategies_all_joins(self, workloads):
        for workload in workloads:
            index = SignatureIndex(workload.instance)
            for strategy in default_strategies():
                result = run_inference(
                    workload.instance,
                    strategy,
                    PerfectOracle(workload.instance, workload.goal),
                    index=index,
                    seed=2,
                )
                assert result.matches_goal(
                    workload.instance, workload.goal
                ), f"{strategy.name} on {workload.name}"

    def test_inferred_join_executes_identically_in_sqlite(self, workloads):
        """The predicate inferred from labels evaluates to the same rows
        as the hidden key/FK join — checked on a real SQL engine."""
        workload = workloads[0]
        result = run_inference(
            workload.instance,
            default_strategies()[2],
            PerfectOracle(workload.instance, workload.goal),
            seed=0,
        )
        conn = connect_memory()
        store_instance(conn, workload.instance)
        assert sql_equijoin(
            conn, workload.instance, result.predicate
        ) == sql_equijoin(conn, workload.instance, workload.goal)
        conn.close()

    def test_interaction_count_stable_across_scales(self):
        """The paper's SF=1 vs SF=100000 observation: interaction counts
        depend on signature structure, not on cardinality."""
        from repro.core import TopDownStrategy

        counts = {}
        for scale in (1.0, 3.0):
            workload = tpch_workloads(
                generate_tpch(scale=scale, seed=0)
            )[0]
            result = run_inference(
                workload.instance,
                TopDownStrategy(),
                PerfectOracle(workload.instance, workload.goal),
                seed=0,
            )
            counts[scale] = result.interactions
        assert abs(counts[1.0] - counts[3.0]) <= 4


class TestSyntheticPipeline:
    def test_every_paper_config_runs(self):
        for config in PAPER_CONFIGS:
            instance = generate_synthetic(
                config.scaled(15), seed=hash(config.label) & 0xFFFF
            )
            index = SignatureIndex(instance)
            goal = JoinPredicate([instance.omega[0]])
            for strategy in default_strategies():
                result = run_inference(
                    instance,
                    strategy,
                    PerfectOracle(instance, goal),
                    index=index,
                    seed=0,
                )
                assert result.matches_goal(instance, goal)


class TestOptimalOnSmallInstances:
    def test_practical_strategies_respect_minimax_bound(self):
        rng = random.Random(5)
        from ..conftest import make_random_instance

        for _ in range(3):
            instance = make_random_instance(
                rng, left_arity=2, right_arity=2, rows=3, values=3
            )
            index = SignatureIndex(instance, backend="python")
            if len(index) > 10:
                continue
            optimal = OptimalStrategy()
            bound = optimal.worst_case_interactions(index)
            from repro.core import non_nullable_predicates

            goals = non_nullable_predicates(index) + [
                JoinPredicate(instance.omega)
            ]
            for strategy in default_strategies():
                worst = max(
                    run_inference(
                        instance,
                        strategy,
                        PerfectOracle(instance, goal),
                        index=index,
                        seed=1,
                    ).interactions
                    for goal in goals
                )
                assert worst >= bound


class TestCrossValidationWithSQL:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_inferred_predicates_match_sql(self, seed):
        from ..conftest import make_random_instance
        from repro.core import TopDownStrategy

        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=3, rows=6, values=4
        )
        goal = JoinPredicate(
            rng.sample(instance.omega, rng.randrange(0, 3))
        )
        result = run_inference(
            instance,
            TopDownStrategy(),
            PerfectOracle(instance, goal),
            seed=seed,
        )
        conn = connect_memory()
        store_instance(conn, instance)
        assert sql_equijoin(conn, instance, result.predicate) == set(
            equijoin(instance, goal)
        )
        conn.close()
