"""CLI integration tests (in-process via cli.main)."""

import io

import pytest

from repro.cli import build_parser, main
from repro.relational import Relation, write_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_infer_arguments(self):
        args = build_parser().parse_args(
            ["infer", "a.csv", "b.csv", "--strategy", "L1S"]
        )
        assert args.strategy == "L1S"

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig9"])


class TestGenerate:
    def test_tpch(self, tmp_path, capsys):
        assert main(
            [
                "generate",
                "tpch",
                "--scale",
                "0.5",
                "--out-dir",
                str(tmp_path),
            ]
        ) == 0
        written = {p.name for p in tmp_path.glob("*.csv")}
        assert "part.csv" in written and "lineitem.csv" in written
        assert "wrote" in capsys.readouterr().out

    def test_synthetic(self, tmp_path, capsys):
        assert main(
            [
                "generate",
                "synthetic",
                "--config",
                "(2,3,8,5)",
                "--out-dir",
                str(tmp_path),
            ]
        ) == 0
        assert (tmp_path / "R.csv").exists()
        assert (tmp_path / "P.csv").exists()

    def test_bad_config(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "generate",
                    "synthetic",
                    "--config",
                    "nonsense",
                    "--out-dir",
                    str(tmp_path),
                ]
            )


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Flight" in out
        assert "questions" in out


class TestInfer:
    def _write_tables(self, tmp_path):
        left = Relation.build(
            "Products",
            ["sku", "cat"],
            [(1, 10), (2, 20)],
        )
        right = Relation.build(
            "Categories",
            ["code", "tax"],
            [(10, 1), (20, 2)],
        )
        left_path = tmp_path / "products.csv"
        right_path = tmp_path / "categories.csv"
        write_csv(left, left_path)
        write_csv(right, right_path)
        return left_path, right_path

    def test_infer_with_scripted_stdin(self, tmp_path, capsys, monkeypatch):
        left_path, right_path = self._write_tables(tmp_path)
        # Answer "yes" when sku/cat matches code positionally, else "no";
        # just feed a deterministic script long enough for any strategy.
        answers = io.StringIO("\n".join(["n"] * 30) + "\n")
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": answers.readline().strip()
        )
        assert main(
            [
                "infer",
                str(left_path),
                str(right_path),
                "--strategy",
                "BU",
                "--infer-types",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Inferred join predicate" in out

    def test_infer_saves_transcript(self, tmp_path, capsys, monkeypatch):
        left_path, right_path = self._write_tables(tmp_path)
        answers = io.StringIO("\n".join(["n"] * 30) + "\n")
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": answers.readline().strip()
        )
        transcript = tmp_path / "session.json"
        assert main(
            [
                "infer",
                str(left_path),
                str(right_path),
                "--strategy",
                "BU",
                "--infer-types",
                "--save-transcript",
                str(transcript),
            ]
        ) == 0
        from repro.core import loads
        from repro.core.session import InferenceResult

        restored = loads(transcript.read_text())
        assert isinstance(restored, InferenceResult)
        assert restored.interactions == len(restored.history)

    def test_infer_max_questions(self, tmp_path, capsys, monkeypatch):
        left_path, right_path = self._write_tables(tmp_path)
        answers = io.StringIO("\n".join(["y"] * 5) + "\n")
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": answers.readline().strip()
        )
        assert main(
            [
                "infer",
                str(left_path),
                str(right_path),
                "--max-questions",
                "1",
                "--infer-types",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "(1 questions asked)" in out


class TestExperimentCommand:
    def test_table1_smoke(self, capsys, monkeypatch):
        """Patch the heavy harness functions for a fast smoke run."""
        import repro.cli as cli_module
        from repro.core import strategy_by_name
        from repro.data import SyntheticConfig

        def fake_experiment(args):
            from repro.experiments import (
                figure7,
                render_figure7,
            )

            cells = figure7(
                configs=(SyntheticConfig(2, 2, 8, 5),),
                goal_sizes=(0,),
                runs=1,
                strategies=[strategy_by_name("BU")],
                seed=0,
            )
            print(render_figure7(cells))
            return 0

        monkeypatch.setattr(cli_module, "_cmd_experiment", fake_experiment)
        assert main(["experiment", "table1"]) == 0
        assert "interactions" in capsys.readouterr().out
