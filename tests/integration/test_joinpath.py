"""Join-path inference (§7 future work)."""

import pytest

from repro.core import CallbackOracle, Label, PerfectOracle
from repro.data import generate_tpch
from repro.joinpath import (
    evaluate_join_path,
    infer_join_path,
)
from repro.relational import JoinPredicate, Relation
from repro.relational.algebra import project


@pytest.fixture(scope="module")
def chain():
    tables = generate_tpch(scale=0.6, seed=1)
    customer = project(tables.customer, ["custkey", "nationkey", "acctbal"])
    orders = project(tables.orders, ["orderkey", "custkey", "totalprice"])
    lineitem = project(tables.lineitem, ["orderkey", "partkey", "quantity"])
    goals = [
        JoinPredicate.parse("customer.custkey = orders.custkey"),
        JoinPredicate.parse("orders.orderkey = lineitem.orderkey"),
    ]
    return [customer, orders, lineitem], goals


class TestInference:
    def test_recovers_both_hops(self, chain):
        relations, goals = chain
        result = infer_join_path(relations, goals=goals, seed=0)
        assert len(result.hops) == 2
        truth = evaluate_join_path(relations, goals)
        inferred = evaluate_join_path(relations, result.predicates)
        assert set(truth) == set(inferred)

    def test_total_interactions_is_hop_sum(self, chain):
        relations, goals = chain
        result = infer_join_path(relations, goals=goals, seed=0)
        assert result.total_interactions == sum(
            hop.interactions for hop in result.hops
        )
        assert result.total_interactions >= 2

    def test_hop_names(self, chain):
        relations, goals = chain
        result = infer_join_path(relations, goals=goals, seed=0)
        assert result.hops[0].left_name == "customer"
        assert result.hops[1].right_name == "lineitem"

    def test_oracle_based_api(self, chain):
        relations, goals = chain
        from repro.relational import Instance

        oracles = [
            PerfectOracle(
                Instance(relations[i], relations[i + 1]), goals[i]
            )
            for i in range(2)
        ]
        result = infer_join_path(relations, oracles=oracles, seed=0)
        assert evaluate_join_path(
            relations, result.predicates
        ) == evaluate_join_path(relations, goals)


class TestValidation:
    def test_needs_two_relations(self):
        with pytest.raises(ValueError):
            infer_join_path(
                [Relation.build("R", ["a"], [(1,)])], goals=[]
            )

    def test_oracles_xor_goals(self, chain):
        relations, goals = chain
        with pytest.raises(ValueError):
            infer_join_path(relations)
        with pytest.raises(ValueError):
            infer_join_path(relations, goals=goals, oracles=[None, None])

    def test_goal_count_checked(self, chain):
        relations, goals = chain
        with pytest.raises(ValueError):
            infer_join_path(relations, goals=goals[:1])

    def test_predicate_count_checked(self, chain):
        relations, goals = chain
        with pytest.raises(ValueError):
            evaluate_join_path(relations, goals[:1])


class TestEvaluation:
    def test_two_hop_chain_semantics(self):
        a = Relation.build("A", ["x"], [(1,), (2,)])
        b = Relation.build("B", ["x", "y"], [(1, 10), (2, 20), (2, 30)])
        c = Relation.build("C", ["y"], [(10,), (30,)])
        theta1 = JoinPredicate.parse("A.x = B.x")
        theta2 = JoinPredicate.parse("B.y = C.y")
        chains = evaluate_join_path([a, b, c], [theta1, theta2])
        assert set(chains) == {
            ((1,), (1, 10), (10,)),
            ((2,), (2, 30), (30,)),
        }

    def test_empty_predicates_are_cartesian(self):
        a = Relation.build("A", ["x"], [(1,)])
        b = Relation.build("B", ["y"], [(2,), (3,)])
        chains = evaluate_join_path(
            [a, b], [JoinPredicate.empty()]
        )
        assert len(chains) == 2

    def test_interactive_chain_with_scripted_user(self):
        """A human-style run: the oracle for each hop is a callback that
        consults the (hidden) goal; the API never sees the goal."""
        a = Relation.build("A", ["x"], [(1,), (2,)])
        b = Relation.build("B", ["x2", "z"], [(1, 5), (2, 6)])
        c = Relation.build("C", ["z2"], [(5,), (7,)])
        hidden = [
            JoinPredicate.parse("A.x = B.x2"),
            JoinPredicate.parse("B.z = C.z2"),
        ]

        def oracle_for(hop):
            from repro.relational import Instance, selects

            instance = Instance([a, b, c][hop], [a, b, c][hop + 1])

            def answer(tuple_pair):
                if selects(instance, hidden[hop], tuple_pair):
                    return Label.POSITIVE
                return Label.NEGATIVE

            return CallbackOracle(answer)

        result = infer_join_path(
            [a, b, c], oracles=[oracle_for(0), oracle_for(1)], seed=0
        )
        assert evaluate_join_path(
            [a, b, c], result.predicates
        ) == evaluate_join_path([a, b, c], hidden)
