"""Crowdsourcing extension: majority voting, cost/accuracy."""

import pytest

from repro.core import (
    Label,
    NoisyOracle,
    PerfectOracle,
    ScriptedOracle,
    TopDownStrategy,
)
from repro.crowd import (
    MajorityOracle,
    majority_error_rate,
    panel_size_for_target,
    run_crowd_inference,
)


class TestMajorityOracle:
    def test_unanimous_panel(self, example21):
        e = example21
        goal = e.theta(("A2", "B3"))
        truth = PerfectOracle(e.instance, goal)
        panel = MajorityOracle([truth, truth, truth])
        for t in e.instance.cartesian_product():
            assert panel.label(t) is truth.label(t)

    def test_majority_outvotes_one_liar(self, example21):
        e = example21
        t = (e.t2, e.u2)
        honest = ScriptedOracle({t: Label.POSITIVE})
        liar = ScriptedOracle({t: Label.NEGATIVE})
        panel = MajorityOracle([honest, liar, honest])
        assert panel.label(t) is Label.POSITIVE

    def test_query_cost_tracked(self, example21):
        e = example21
        truth = PerfectOracle(e.instance, e.theta(("A1", "B1")))
        panel = MajorityOracle([truth] * 5)
        panel.label((e.t1, e.u1))
        panel.label((e.t1, e.u2))
        assert panel.total_queries == 10

    def test_reset_clears_cost(self, example21):
        e = example21
        truth = PerfectOracle(e.instance, e.theta(("A1", "B1")))
        panel = MajorityOracle([truth])
        panel.label((e.t1, e.u1))
        panel.reset()
        assert panel.total_queries == 0

    def test_even_panel_rejected(self, example21):
        truth = PerfectOracle(
            example21.instance, example21.theta(("A1", "B1"))
        )
        with pytest.raises(ValueError):
            MajorityOracle([truth, truth])

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError):
            MajorityOracle([])


class TestMajorityErrorRate:
    def test_single_worker(self):
        assert majority_error_rate(1, 0.2) == pytest.approx(0.2)

    def test_three_workers(self):
        # P(≥2 of 3 wrong) = 3p²(1−p) + p³
        p = 0.2
        expected = 3 * p**2 * (1 - p) + p**3
        assert majority_error_rate(3, p) == pytest.approx(expected)

    def test_perfect_workers(self):
        assert majority_error_rate(5, 0.0) == 0.0

    def test_monotone_in_panel_for_good_workers(self):
        errors = [majority_error_rate(k, 0.2) for k in (1, 3, 5, 7)]
        assert errors == sorted(errors, reverse=True)

    def test_coin_flip_workers_never_improve(self):
        assert majority_error_rate(9, 0.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_error_rate(2, 0.1)
        with pytest.raises(ValueError):
            majority_error_rate(3, 1.5)


class TestPanelSizing:
    def test_known_value(self):
        # For p=0.1: k=5 gives 0.00856 < 0.01 (and k=3 gives 0.028).
        assert panel_size_for_target(0.1, 0.01) == 5

    def test_hopeless_workers(self):
        assert panel_size_for_target(0.5, 0.01, max_panel=21) is None

    def test_target_validation(self):
        with pytest.raises(ValueError):
            panel_size_for_target(0.1, 0.0)


class TestCrowdInference:
    def test_perfect_workers_always_correct(self, example21):
        e = example21
        report = run_crowd_inference(
            e.instance,
            TopDownStrategy(),
            e.theta(("A2", "B3")),
            worker_error=0.0,
            panel_size=3,
            seed=0,
        )
        assert report.correct
        assert report.worker_answers == report.interactions * 3

    def test_noise_hurts_single_worker_accuracy(self, example21):
        e = example21
        goal = e.theta(("A1", "B1"))
        wrong = sum(
            not run_crowd_inference(
                e.instance,
                TopDownStrategy(),
                goal,
                worker_error=0.4,
                panel_size=1,
                seed=seed,
            ).correct
            for seed in range(15)
        )
        assert wrong > 0

    def test_panels_help_on_average(self, example21):
        e = example21
        goal = e.theta(("A1", "B1"))

        def accuracy(panel_size: int) -> float:
            hits = sum(
                run_crowd_inference(
                    e.instance,
                    TopDownStrategy(),
                    goal,
                    worker_error=0.25,
                    panel_size=panel_size,
                    seed=seed,
                ).correct
                for seed in range(20)
            )
            return hits / 20

        assert accuracy(5) >= accuracy(1)

    def test_report_fields(self, example21):
        e = example21
        report = run_crowd_inference(
            e.instance,
            TopDownStrategy(),
            e.theta(("A1", "B1")),
            worker_error=0.1,
            panel_size=3,
            seed=1,
        )
        assert report.panel_size == 3
        assert report.worker_error == 0.1
        assert report.interactions >= 1


class TestNoisyOracleIntegration:
    def test_majority_of_noisy_workers(self, example21):
        e = example21
        goal = e.theta(("A2", "B3"))
        truth = PerfectOracle(e.instance, goal)
        workers = [
            NoisyOracle(truth, error_rate=0.2, seed=i) for i in range(5)
        ]
        panel = MajorityOracle(workers)
        flips = sum(
            panel.label(t) is not truth.label(t)
            for t in e.instance.cartesian_product()
        )
        # 5-worker majority at p=0.2 errs ~6% of the time; 12 tuples
        # should almost never see more than a few flips.
        assert flips <= 4
