"""Oracles: perfect, noisy, scripted, callback."""

import pytest

from repro.core import (
    CallbackOracle,
    Label,
    NoisyOracle,
    PerfectOracle,
    ScriptedOracle,
)
from repro.relational import SchemaError, equijoin


class TestPerfectOracle:
    def test_labels_follow_goal(self, example21):
        e = example21
        goal = e.theta(("A2", "B3"))
        oracle = PerfectOracle(e.instance, goal)
        selected = set(equijoin(e.instance, goal))
        for t in e.instance.cartesian_product():
            expected = Label.POSITIVE if t in selected else Label.NEGATIVE
            assert oracle.label(t) is expected

    def test_empty_goal_labels_everything_positive(self, example21):
        from repro.relational import JoinPredicate

        e = example21
        oracle = PerfectOracle(e.instance, JoinPredicate.empty())
        assert all(
            oracle.label(t) is Label.POSITIVE
            for t in e.instance.cartesian_product()
        )

    def test_goal_validated_against_instance(self, example21):
        from repro.relational import Attribute, JoinPredicate

        bad_goal = JoinPredicate(
            [(Attribute("Nope", "X"), Attribute("P0", "B1"))]
        )
        with pytest.raises(SchemaError):
            PerfectOracle(example21.instance, bad_goal)

    def test_goal_property(self, example21):
        goal = example21.theta(("A1", "B1"))
        assert PerfectOracle(example21.instance, goal).goal == goal


class TestNoisyOracle:
    def test_zero_error_is_perfect(self, example21):
        e = example21
        goal = e.theta(("A2", "B3"))
        perfect = PerfectOracle(e.instance, goal)
        noisy = NoisyOracle(perfect, error_rate=0.0, seed=1)
        for t in e.instance.cartesian_product():
            assert noisy.label(t) is perfect.label(t)

    def test_full_error_always_flips(self, example21):
        e = example21
        goal = e.theta(("A2", "B3"))
        perfect = PerfectOracle(e.instance, goal)
        noisy = NoisyOracle(perfect, error_rate=1.0, seed=1)
        for t in e.instance.cartesian_product():
            assert noisy.label(t) is perfect.label(t).opposite

    def test_error_rate_validated(self, example21):
        perfect = PerfectOracle(
            example21.instance, example21.theta(("A1", "B1"))
        )
        with pytest.raises(ValueError):
            NoisyOracle(perfect, error_rate=1.5)

    def test_reset_replays_noise(self, example21):
        e = example21
        perfect = PerfectOracle(e.instance, e.theta(("A2", "B3")))
        noisy = NoisyOracle(perfect, error_rate=0.5, seed=42)
        tuples = list(e.instance.cartesian_product())
        first = [noisy.label(t) for t in tuples]
        noisy.reset()
        second = [noisy.label(t) for t in tuples]
        assert first == second

    def test_intermediate_error_rate_flips_some(self, example21):
        e = example21
        perfect = PerfectOracle(e.instance, e.theta(("A2", "B3")))
        noisy = NoisyOracle(perfect, error_rate=0.5, seed=7)
        tuples = list(e.instance.cartesian_product()) * 20
        flips = sum(
            noisy.label(t) is not perfect.label(t) for t in tuples
        )
        assert 0 < flips < len(tuples)


class TestScriptedOracle:
    def test_replays_script(self, example21):
        e = example21
        oracle = ScriptedOracle.positives(
            positive=[(e.t2, e.u2)], negative=[(e.t3, e.u2)]
        )
        assert oracle.label((e.t2, e.u2)) is Label.POSITIVE
        assert oracle.label((e.t3, e.u2)) is Label.NEGATIVE

    def test_unknown_tuple_raises(self, example21):
        e = example21
        oracle = ScriptedOracle({})
        with pytest.raises(KeyError):
            oracle.label((e.t1, e.u1))


class TestCallbackOracle:
    def test_invokes_function(self, example21):
        e = example21
        oracle = CallbackOracle(lambda t: Label.POSITIVE)
        assert oracle.label((e.t1, e.u1)) is Label.POSITIVE
