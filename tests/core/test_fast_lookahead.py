"""Vectorised lookahead must match the reference bit-for-bit."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Label, SignatureIndex, entropy_k_of_class
from repro.core.fast_lookahead import (
    entropies_for_informative,
    supports_fast_path,
)
from repro.core.state import InferenceState

from ..conftest import make_random_instance


def _random_state(seed: int) -> InferenceState:
    rng = random.Random(seed)
    instance = make_random_instance(
        rng,
        left_arity=rng.randrange(1, 4),
        right_arity=rng.randrange(1, 4),
        rows=rng.randrange(2, 10),
        values=rng.randrange(2, 5),
    )
    index = SignatureIndex(instance, backend="python")
    state = InferenceState(index)
    for _ in range(rng.randrange(0, 4)):
        informative = state.informative_class_ids()
        if not informative:
            break
        state.record(
            rng.choice(informative),
            rng.choice([Label.POSITIVE, Label.NEGATIVE]),
        )
    return state


class TestParity:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000), st.sampled_from([1, 2]))
    def test_matches_reference(self, seed, depth):
        state = _random_state(seed)
        fast = entropies_for_informative(state, depth)
        reference = {
            class_id: entropy_k_of_class(state, class_id, depth)
            for class_id in state.informative_class_ids()
        }
        assert fast == reference

    def test_example21_figure5(self, example21_index):
        """The Figure 5 entropies through the vectorised path."""
        state = InferenceState(example21_index)
        fast = entropies_for_informative(state, 1)
        reference = {
            class_id: entropy_k_of_class(state, class_id, 1)
            for class_id in state.informative_class_ids()
        }
        assert fast == reference

    def test_entropy2_walkthrough(self, example21, example21_index):
        """§4.4's entropy² values through the vectorised path."""
        e = example21
        state = InferenceState(example21_index)
        state.record(
            example21_index.class_of_tuple((e.t1, e.u3)).class_id,
            Label.POSITIVE,
        )
        state.record(
            example21_index.class_of_tuple((e.t3, e.u1)).class_id,
            Label.NEGATIVE,
        )
        fast = entropies_for_informative(state, 2)
        target = example21_index.class_of_tuple((e.t2, e.u1)).class_id
        assert fast[target] == (3, 3)


class TestDispatch:
    def test_supports_small_omega(self, example21_index):
        state = InferenceState(example21_index)
        assert supports_fast_path(state, 1)
        assert supports_fast_path(state, 2)
        assert not supports_fast_path(state, 3)

    def test_wide_omega_stays_on_fast_path(self):
        """Ω > 64 bits packs into multiple words — no fallback needed."""
        from repro.relational import Instance, Relation

        rng = random.Random(0)
        left = Relation.build(
            "R",
            [f"A{i}" for i in range(9)],
            [tuple(rng.randrange(3) for _ in range(9)) for _ in range(4)],
        )
        right = Relation.build(
            "P",
            [f"B{j}" for j in range(8)],
            [tuple(rng.randrange(3) for _ in range(8)) for _ in range(4)],
        )
        instance = Instance(left, right)
        assert len(instance.omega) > 63
        state = InferenceState(SignatureIndex(instance, backend="python"))
        assert supports_fast_path(state, 1)
        assert supports_fast_path(state, 2)
        for depth in (1, 2):
            fast = entropies_for_informative(state, depth)
            reference = {
                class_id: entropy_k_of_class(state, class_id, depth)
                for class_id in state.informative_class_ids()
            }
            assert fast == reference

    def test_depth3_fallback_matches_reference(self):
        state = _random_state(7)
        fast = entropies_for_informative(state, 3)
        reference = {
            class_id: entropy_k_of_class(state, class_id, 3)
            for class_id in state.informative_class_ids()
        }
        assert fast == reference

    def test_no_informative_classes(self, example21_index):
        state = InferenceState(example21_index)
        cid = example21_index.class_of_mask(0).class_id
        state.record(cid, Label.POSITIVE)  # pins everything
        assert entropies_for_informative(state, 2) == {}
