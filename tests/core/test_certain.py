"""Certain / informative tuples (§3.4): lemma tests vs naive definitions."""

import random

import pytest

from repro.core import (
    Example,
    Label,
    Sample,
    certain_examples,
    certain_label,
    certain_negative,
    certain_positive,
    informative_tuples,
    is_certain_negative,
    is_certain_positive,
    is_informative,
)
from repro.core.naive import (
    certain_negative_naive,
    certain_positive_naive,
    is_informative_naive,
    uninformative_examples_naive,
)

from ..conftest import make_random_instance


@pytest.fixture()
def section34_sample(example21):
    """§3.4's sample: S+ = {(t2,u2)}, S− = {(t1,u3)}."""
    e = example21
    sample = Sample()
    sample.label_tuple((e.t2, e.u2), Label.POSITIVE)
    sample.label_tuple((e.t1, e.u3), Label.NEGATIVE)
    return sample


@pytest.fixture()
def section44_sample(example21):
    """§4.4's walk-through sample: S+ = {(t1,u3)}, S− = {(t3,u1)}."""
    e = example21
    sample = Sample()
    sample.label_tuple((e.t1, e.u3), Label.POSITIVE)
    sample.label_tuple((e.t3, e.u1), Label.NEGATIVE)
    return sample


class TestSection34Example:
    """§3.4 text: with goal {(A2,B3)} and S as above, ((t4,u1),+) and
    ((t2,u1),−) are uninformative."""

    def test_t4_u1_certain_positive(self, example21, section34_sample):
        e = example21
        assert is_certain_positive(
            e.instance, section34_sample, (e.t4, e.u1)
        )

    def test_t2_u1_certain_negative(self, example21, section34_sample):
        e = example21
        assert is_certain_negative(
            e.instance, section34_sample, (e.t2, e.u1)
        )

    def test_forced_labels(self, example21, section34_sample):
        e = example21
        assert certain_label(
            e.instance, section34_sample, (e.t4, e.u1)
        ) is Label.POSITIVE
        assert certain_label(
            e.instance, section34_sample, (e.t2, e.u1)
        ) is Label.NEGATIVE


class TestSection44Example:
    """§4.4's walk-through: Uninf(S) holds exactly five unlabeled examples
    and five informative tuples remain."""

    def test_uninformative_set(self, example21, section44_sample):
        e = example21
        certain = certain_examples(e.instance, section44_sample)
        unlabeled_certain = {
            ex
            for ex in certain
            if not section44_sample.is_labeled(ex.tuple_pair)
        }
        expected = {
            Example((e.t2, e.u3), Label.POSITIVE),
            Example((e.t1, e.u2), Label.NEGATIVE),
            Example((e.t2, e.u2), Label.NEGATIVE),
            Example((e.t3, e.u3), Label.NEGATIVE),
            Example((e.t4, e.u3), Label.NEGATIVE),
        }
        assert unlabeled_certain == expected

    def test_five_informative_tuples(self, example21, section44_sample):
        e = example21
        informative = set(informative_tuples(e.instance, section44_sample))
        assert informative == {
            (e.t1, e.u1),
            (e.t2, e.u1),
            (e.t3, e.u2),
            (e.t4, e.u1),
            (e.t4, e.u2),
        }

    def test_after_negative_t2_u1_only_two_informative(
        self, example21, section44_sample
    ):
        """§4.4: labeling (t2,u1) negative leaves (t4,u1),(t4,u2)."""
        e = example21
        extended = section44_sample.with_example(
            Example((e.t2, e.u1), Label.NEGATIVE)
        )
        assert set(informative_tuples(e.instance, extended)) == {
            (e.t4, e.u1),
            (e.t4, e.u2),
        }

    def test_after_positive_t2_u1_nothing_informative(
        self, example21, section44_sample
    ):
        """§4.4: labeling (t2,u1) positive ends the inference."""
        e = example21
        extended = section44_sample.with_example(
            Example((e.t2, e.u1), Label.POSITIVE)
        )
        assert informative_tuples(e.instance, extended) == []


class TestLatticePruningNarrative:
    """§4.2's narrative around Figure 4 (empty sample, tuple (t1,u3))."""

    def test_positive_label_prunes_superset_tuple(self, example21):
        e = example21
        sample = Sample([Example((e.t1, e.u3), Label.POSITIVE)])
        assert is_certain_positive(e.instance, sample, (e.t2, e.u3))

    def test_negative_label_prunes_subset_tuples(self, example21):
        e = example21
        sample = Sample([Example((e.t1, e.u3), Label.NEGATIVE)])
        assert is_certain_negative(e.instance, sample, (e.t2, e.u1))
        assert is_certain_negative(e.instance, sample, (e.t3, e.u1))


class TestEmptySample:
    def test_nothing_certain_for_example21(self, example21):
        e = example21
        sample = Sample()
        assert certain_positive(e.instance, sample) == set()
        assert certain_negative(e.instance, sample) == set()

    def test_all_tuples_informative(self, example21):
        e = example21
        assert len(informative_tuples(e.instance, Sample())) == 12

    def test_tuple_agreeing_everywhere_certain_positive(self):
        """With S = ∅, T(S+) = Ω, so only all-agreeing tuples are Cert+."""
        from repro.relational import Instance, Relation

        instance = Instance(
            Relation.build("R", ["A1"], [(5,), (6,)]),
            Relation.build("P", ["B1"], [(5,)]),
        )
        assert certain_positive(instance, Sample()) == {((5,), (5,))}


class TestLabeledTuplesAreCertain:
    def test_positive_example_is_certain_positive(self, example21):
        e = example21
        sample = Sample([Example((e.t2, e.u2), Label.POSITIVE)])
        assert is_certain_positive(e.instance, sample, (e.t2, e.u2))
        assert not is_informative(e.instance, sample, (e.t2, e.u2))

    def test_negative_example_is_certain_negative(self, example21):
        e = example21
        sample = Sample([Example((e.t2, e.u2), Label.NEGATIVE)])
        assert is_certain_negative(e.instance, sample, (e.t2, e.u2))


class TestAgainstNaiveDefinitions:
    """Lemmas 3.2–3.4: the PTIME characterisations equal the
    definition-level (C(S)-enumerating) reference implementations."""

    def _random_consistent_sample(self, instance, rng, max_labels=4):
        from repro.core import PerfectOracle
        from repro.relational import JoinPredicate

        omega = instance.omega
        goal = JoinPredicate(
            rng.sample(omega, rng.randrange(0, min(3, len(omega)) + 1))
        )
        oracle = PerfectOracle(instance, goal)
        tuples = list(instance.cartesian_product())
        sample = Sample()
        for t in rng.sample(tuples, k=min(max_labels, len(tuples))):
            sample.label_tuple(t, oracle.label(t))
        return sample

    @pytest.mark.parametrize("seed", range(6))
    def test_certain_sets_match_naive(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=4, values=3
        )
        sample = self._random_consistent_sample(instance, rng)
        assert certain_positive(instance, sample) == certain_positive_naive(
            instance, sample
        )
        assert certain_negative(instance, sample) == certain_negative_naive(
            instance, sample
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_lemma32_uninformative_equals_certain(self, seed):
        """Lemma 3.2: Uninf(S) = Cert(S) (as example sets)."""
        rng = random.Random(50 + seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=3, values=2
        )
        sample = self._random_consistent_sample(instance, rng, max_labels=3)
        naive = uninformative_examples_naive(instance, sample)
        lemma_based = certain_examples(instance, sample)
        assert naive == lemma_based

    @pytest.mark.parametrize("seed", range(6))
    def test_informative_matches_naive(self, seed):
        rng = random.Random(90 + seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=3, values=3
        )
        sample = self._random_consistent_sample(instance, rng, max_labels=3)
        for t in instance.cartesian_product():
            assert is_informative(instance, sample, t) == (
                is_informative_naive(instance, sample, t)
            ), f"disagreement on {t}"
