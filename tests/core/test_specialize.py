"""Tests for the most-specific-predicate operator T (§3, Figure 3)."""


from repro.core import (
    bits_from_pairs,
    most_specific_for_set,
    most_specific_predicate,
    pairs_from_bits,
    signature_bits,
)
from repro.relational import JoinPredicate, selects


class TestFigure3:
    """Every T value printed in Figure 3 of the paper."""

    def test_all_twelve_signatures(self, example21, figure3_signatures):
        for tuple_pair, pairs in figure3_signatures.items():
            expected = example21.theta(*pairs)
            assert (
                most_specific_predicate(example21.instance, tuple_pair)
                == expected
            ), f"T({tuple_pair}) should be {expected}"

    def test_signature_of_t3_u1_is_empty(self, example21):
        e = example21
        assert most_specific_predicate(e.instance, (e.t3, e.u1)) == (
            JoinPredicate.empty()
        )


class TestMostSpecificProperties:
    def test_t_selects_its_own_tuple(self, example21):
        e = example21
        for t in e.instance.cartesian_product():
            theta = most_specific_predicate(e.instance, t)
            assert selects(e.instance, theta, t)

    def test_t_is_most_specific(self, example21):
        """Any θ selecting t satisfies θ ⊆ T(t)."""
        e = example21
        omega = e.instance.omega
        t = (e.t2, e.u2)
        t_of_t = most_specific_predicate(e.instance, t)
        from itertools import combinations

        for size in range(len(omega) + 1):
            for pairs in combinations(omega, size):
                theta = JoinPredicate(pairs)
                if selects(e.instance, theta, t):
                    assert theta <= t_of_t

    def test_selection_iff_subset_of_t(self, example21):
        """The key fact: t ∈ R⋈θP iff θ ⊆ T(t)."""
        e = example21
        theta = e.theta(("A1", "B1"), ("A2", "B3"))
        for t in e.instance.cartesian_product():
            t_of_t = most_specific_predicate(e.instance, t)
            assert selects(e.instance, theta, t) == (theta <= t_of_t)


class TestMostSpecificForSet:
    def test_empty_set_yields_omega(self, example21):
        instance = example21.instance
        assert most_specific_for_set(instance, []) == JoinPredicate(
            instance.omega
        )

    def test_singleton_set_is_t(self, example21):
        e = example21
        t = (e.t4, e.u1)
        assert most_specific_for_set(e.instance, [t]) == (
            most_specific_predicate(e.instance, t)
        )

    def test_intersection_of_two(self, example21):
        """Example 3.1: T({(t2,u2),(t4,u1)}) = {(A1,B1),(A2,B3)}."""
        e = example21
        result = most_specific_for_set(
            e.instance, [(e.t2, e.u2), (e.t4, e.u1)]
        )
        assert result == e.theta(("A1", "B1"), ("A2", "B3"))

    def test_monotone_decreasing_in_set_size(self, example21):
        e = example21
        tuples = list(e.instance.cartesian_product())
        for k in range(1, len(tuples)):
            bigger = most_specific_for_set(e.instance, tuples[: k + 1])
            smaller = most_specific_for_set(e.instance, tuples[:k])
            assert bigger <= smaller

    def test_disagreeing_tuples_intersect_to_empty(self, example21):
        e = example21
        result = most_specific_for_set(
            e.instance, [(e.t3, e.u1), (e.t4, e.u1)]
        )
        assert result == JoinPredicate.empty()


class TestBitEncoding:
    def test_round_trip_all_tuples(self, example21):
        e = example21
        for t in e.instance.cartesian_product():
            bits = signature_bits(e.instance, t)
            assert pairs_from_bits(e.instance, bits) == (
                most_specific_predicate(e.instance, t)
            )

    def test_bits_from_pairs_inverse(self, example21):
        e = example21
        theta = e.theta(("A1", "B2"), ("A2", "B1"))
        bits = bits_from_pairs(e.instance, theta)
        assert pairs_from_bits(e.instance, bits) == theta

    def test_empty_predicate_is_zero(self, example21):
        assert bits_from_pairs(example21.instance, JoinPredicate.empty()) == 0

    def test_bit_count_matches_predicate_size(self, example21):
        e = example21
        for t in e.instance.cartesian_product():
            bits = signature_bits(e.instance, t)
            assert bits.bit_count() == len(
                most_specific_predicate(e.instance, t)
            )

    def test_subset_test_on_bits_matches_predicates(self, example21):
        e = example21
        tuples = list(e.instance.cartesian_product())
        for t in tuples:
            for s in tuples:
                bits_t = signature_bits(e.instance, t)
                bits_s = signature_bits(e.instance, s)
                subset_bits = bits_t & ~bits_s == 0
                subset_preds = most_specific_predicate(
                    e.instance, t
                ) <= most_specific_predicate(e.instance, s)
                assert subset_bits == subset_preds
