"""The version-space information-gain strategy (§7 future work)."""

import random

import pytest

from repro.core import (
    Label,
    PerfectOracle,
    SignatureIndex,
    VersionSpaceStrategy,
    run_inference,
    strategy_by_name,
)
from repro.core.lattice import LatticeTooLargeError
from repro.core.state import InferenceState
from repro.relational import Instance, JoinPredicate, Relation

from ..conftest import make_random_instance


class TestVersionSpace:
    def test_initial_space_is_all_non_nullable_plus_omega(
        self, example21_index
    ):
        from repro.core import non_nullable_masks

        state = InferenceState(example21_index)
        strategy = VersionSpaceStrategy()
        alive = set(strategy.alive_candidates(state))
        expected = non_nullable_masks(example21_index) | {
            example21_index.omega_mask
        }
        assert alive == expected

    def test_positive_label_prunes_non_subsets(
        self, example21, example21_index
    ):
        e = example21
        state = InferenceState(example21_index)
        strategy = VersionSpaceStrategy()
        cid = example21_index.class_of_tuple((e.t2, e.u1)).class_id
        state.record(cid, Label.POSITIVE)
        mask = example21_index[cid].mask
        for candidate in strategy.alive_candidates(state):
            assert candidate & ~mask == 0

    def test_negative_label_prunes_subsets(
        self, example21, example21_index
    ):
        e = example21
        state = InferenceState(example21_index)
        strategy = VersionSpaceStrategy()
        cid = example21_index.class_of_tuple((e.t1, e.u3)).class_id
        state.record(cid, Label.NEGATIVE)
        mask = example21_index[cid].mask
        for candidate in strategy.alive_candidates(state):
            assert candidate & ~mask != 0  # not a subset


class TestProbabilityMatchesCertainty:
    """p = 1 iff certain-positive and p = 0 iff certain-negative — the
    version space reproves Lemmas 3.3/3.4 under a uniform prior."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_on_random_states(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=5, values=3
        )
        index = SignatureIndex(instance, backend="python")
        state = InferenceState(index)
        strategy = VersionSpaceStrategy()
        for _ in range(rng.randrange(0, 4)):
            informative = state.informative_class_ids()
            if not informative:
                break
            state.record(
                rng.choice(informative),
                rng.choice([Label.POSITIVE, Label.NEGATIVE]),
            )
        for cls in index:
            p = strategy.positive_probability(state, cls.class_id)
            assert (p == 1.0) == state.is_certain_positive(cls.class_id)
            assert (p == 0.0) == state.is_certain_negative(cls.class_id)


class TestInference:
    @pytest.mark.parametrize(
        "goal_pairs",
        [(), (("A2", "B3"),), (("A1", "B1"), ("A2", "B3"))],
    )
    def test_recovers_goals_on_example21(self, example21, goal_pairs):
        e = example21
        goal = e.theta(*goal_pairs)
        result = run_inference(
            e.instance,
            VersionSpaceStrategy(),
            PerfectOracle(e.instance, goal),
            seed=0,
        )
        assert result.matches_goal(e.instance, goal)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=3, rows=6, values=3
        )
        goal = JoinPredicate(
            rng.sample(instance.omega, rng.randrange(0, 3))
        )
        result = run_inference(
            instance,
            VersionSpaceStrategy(),
            PerfectOracle(instance, goal),
            seed=seed,
        )
        assert result.matches_goal(instance, goal)

    def test_factory_name(self):
        assert isinstance(strategy_by_name("IG"), VersionSpaceStrategy)

    def test_competitive_with_lookahead_on_average(self, example21):
        """Not a strict claim — just that IG is in the same league as
        L1S on the running example across all size-1 goals."""
        e = example21
        from repro.core import SignatureIndex, predicates_of_size

        index = SignatureIndex(e.instance, backend="python")
        goals = predicates_of_size(index, 1)
        totals = {}
        for name in ("IG", "L1S"):
            totals[name] = sum(
                run_inference(
                    e.instance,
                    strategy_by_name(name),
                    PerfectOracle(e.instance, goal),
                    index=index,
                    seed=0,
                ).interactions
                for goal in goals
            )
        assert totals["IG"] <= totals["L1S"] * 1.5


class TestCapFallback:
    def test_falls_back_to_l1s_when_capped(self):
        left = Relation.build("R", [f"A{i}" for i in range(8)], [(0,) * 8])
        right = Relation.build(
            "P", [f"B{i}" for i in range(3)], [(0, 0, 0), (1, 1, 1)]
        )
        instance = Instance(left, right)
        strategy = VersionSpaceStrategy(max_candidates=10)
        goal = JoinPredicate([instance.omega[0]])
        result = run_inference(
            instance,
            strategy,
            PerfectOracle(instance, goal),
            seed=0,
        )
        assert result.matches_goal(instance, goal)

    def test_alive_candidates_raises_when_capped(self):
        left = Relation.build("R", [f"A{i}" for i in range(8)], [(0,) * 8])
        right = Relation.build(
            "P", [f"B{i}" for i in range(3)], [(0, 0, 0)]
        )
        instance = Instance(left, right)
        index = SignatureIndex(instance, backend="python")
        strategy = VersionSpaceStrategy(max_candidates=10)
        with pytest.raises(LatticeTooLargeError):
            strategy.alive_candidates(InferenceState(index))
