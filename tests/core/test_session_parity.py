"""Incremental-vs-from-scratch parity over full interactive sessions.

The planner refactor must be invisible end-to-end: for every strategy,
the sequence of proposed questions (and therefore the inferred
predicate) of a session driven through the observe/propose lifecycle
must be identical to the from-scratch per-step computation — across
answer polarities (adversarial all-negative and random oracles), and
across the packed-word boundary (Ω ∈ {63, 64, 65}).
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    InferenceSession,
    Label,
    LookaheadSkylineStrategy,
    SignatureIndex,
)
from repro.core.oracle import Oracle
from repro.core.strategies import (
    BottomUpStrategy,
    RandomStrategy,
    TopDownStrategy,
)

from ..conftest import make_random_instance


class AdversarialOracle(Oracle):
    """Always answers negative — the longest consistent session."""

    def label(self, tuple_pair):
        return Label.NEGATIVE


class CoinOracle(Oracle):
    """Seeded random answers, independent of the tuple asked."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def label(self, tuple_pair):
        return self._rng.choice([Label.POSITIVE, Label.NEGATIVE])


def _question_sequence(instance, index, strategy, oracle, seed):
    session = InferenceSession(
        instance, strategy, oracle, index=index, seed=seed
    )
    asked = []
    while not session.is_finished():
        question = session.propose()
        asked.append(question.class_id)
        label = oracle.label(question.tuple_pair)
        session.answer(question.question_id, label)
    return asked, session.state.result_mask()


def _small_instance(seed, left_arity=None, right_arity=None):
    rng = random.Random(seed)
    return make_random_instance(
        rng,
        left_arity=left_arity or rng.randrange(1, 4),
        right_arity=right_arity or rng.randrange(1, 4),
        rows=rng.randrange(3, 9),
        values=rng.randrange(2, 5),
    )


ORACLES = {
    "adversarial": lambda seed: AdversarialOracle(),
    "random": CoinOracle,
}


class TestLookaheadSequenceParity:
    @pytest.mark.parametrize("oracle_kind", sorted(ORACLES))
    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_incremental_equals_scratch(self, depth, oracle_kind, seed):
        instance = _small_instance(seed)
        index = SignatureIndex(instance, backend="python")
        make_oracle = ORACLES[oracle_kind]
        incremental = _question_sequence(
            instance,
            index,
            LookaheadSkylineStrategy(depth=depth),
            make_oracle(seed),
            seed,
        )
        scratch = _question_sequence(
            instance,
            index,
            LookaheadSkylineStrategy(depth=depth, incremental=False),
            make_oracle(seed),
            seed,
        )
        assert incremental == scratch
        if depth <= 2 and len(index) <= 12:
            reference = _question_sequence(
                instance,
                index,
                LookaheadSkylineStrategy(depth=depth, vectorised=False),
                make_oracle(seed),
                seed,
            )
            assert incremental == reference

    @pytest.mark.parametrize("left,right", [(7, 9), (8, 8), (5, 13)])
    @pytest.mark.parametrize("oracle_kind", sorted(ORACLES))
    def test_word_boundary_omegas(self, left, right, oracle_kind):
        """Ω ∈ {63, 64, 65}: parity must hold across the packed-word
        boundary for both lookahead depths."""
        instance = _small_instance(
            left * right, left_arity=left, right_arity=right
        )
        assert len(instance.omega) in (63, 64, 65)
        index = SignatureIndex(instance, backend="python")
        make_oracle = ORACLES[oracle_kind]
        for depth in (1, 2):
            incremental = _question_sequence(
                instance,
                index,
                LookaheadSkylineStrategy(depth=depth),
                make_oracle(depth),
                depth,
            )
            scratch = _question_sequence(
                instance,
                index,
                LookaheadSkylineStrategy(depth=depth, incremental=False),
                make_oracle(depth),
                depth,
            )
            assert incremental == scratch


class TestStatelessStrategiesUnchanged:
    """The lifecycle refactor must not perturb the stateless strategies:
    driving them through observe/propose yields the same sequence as
    consulting ``choose`` on a bare state."""

    @pytest.mark.parametrize(
        "make_strategy",
        [RandomStrategy, BottomUpStrategy, TopDownStrategy],
        ids=lambda s: s.__name__,
    )
    @pytest.mark.parametrize("oracle_kind", sorted(ORACLES))
    @pytest.mark.parametrize("seed", [1, 13])
    def test_session_equals_bare_state(
        self, make_strategy, oracle_kind, seed
    ):
        from repro.core.state import InferenceState

        instance = _small_instance(seed)
        index = SignatureIndex(instance, backend="python")
        make_oracle = ORACLES[oracle_kind]
        via_session, _ = _question_sequence(
            instance, index, make_strategy(), make_oracle(seed), seed
        )

        state = InferenceState(index)
        strategy = make_strategy()
        rng = random.Random(seed)
        oracle = make_oracle(seed)
        bare = []
        while state.has_informative():
            class_id = strategy.choose(state, rng)
            bare.append(class_id)
            label = oracle.label(index[class_id].representative)
            state.record(class_id, label)
        assert via_session == bare


class TestDepth3PlannerRouting:
    """Regression for the depth > 2 bypass: LkS(depth=3) must run
    through the planner lifecycle (cross-step state), not silently fall
    back to stateless recomputation."""

    def test_depth3_keeps_planner_in_sync(self):
        instance = _small_instance(3)
        index = SignatureIndex(instance, backend="python")
        strategy = LookaheadSkylineStrategy(depth=3)
        oracle = AdversarialOracle()
        session = InferenceSession(
            instance, strategy, oracle, index=index, seed=0
        )
        steps = 0
        while not session.is_finished():
            question = session.propose()
            assert strategy._planner is not None
            assert strategy._planner.in_sync(session.state)
            assert strategy._planner.depth == 3
            session.answer(question.question_id, Label.NEGATIVE)
            # the observe lifecycle advanced the planner — same object,
            # still synced, no rebuild
            if not session.is_finished():
                assert strategy._planner is not None
                assert strategy._planner.in_sync(session.state)
            steps += 1
        assert steps > 1
