"""Batched cross-session kernels must match the per-session path
bit-for-bit.

``batched_entropies`` stacks many planners' L1S/L2S computations into
padded 3-D contractions; every test here pins the scattered per-session
results to :meth:`IncrementalLookaheadPlanner.entropies` (itself
property-tested against the from-scratch and recursive references) over
ragged session mixes, multi-word Ω, the required batch sizes, and
mid-batch cancellation through the scheduler.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Label, SignatureIndex
from repro.core.entropy import entropy_k_of_class
from repro.core.fast_lookahead import entropies_for_informative
from repro.core.kernel_batch import (
    KernelBatchScheduler,
    batched_entropies,
)
from repro.core.planner import IncrementalLookaheadPlanner
from repro.core.state import InferenceState

from ..conftest import make_random_instance


def _random_index(seed: int, arities: tuple[int, int] | None = None):
    # Enough rows/values that the informative set survives a few labels
    # — tiny instances collapse after one answer and cannot seed a
    # ragged batch.
    rng = random.Random(seed)
    left, right = arities if arities else (
        rng.randrange(2, 4),
        rng.randrange(2, 4),
    )
    instance = make_random_instance(
        rng,
        left_arity=left,
        right_arity=right,
        rows=rng.randrange(20, 40),
        values=rng.randrange(5, 9),
    )
    return SignatureIndex(instance, backend="python")


def _planner_at(
    index: SignatureIndex, depth: int, labels: int, seed: int
) -> IncrementalLookaheadPlanner | None:
    """A planner driven ``labels`` random answers into a session, still
    tracking a live informative set (None when the session collapsed)."""
    state = InferenceState(index)
    state.informative_ids_array()
    planner = IncrementalLookaheadPlanner(
        state, depth, scratch_floor_cells=0
    )
    rng = random.Random(seed)
    for _ in range(labels):
        if not state.has_informative():
            return None
        class_id = rng.choice(state.informative_class_ids())
        label = rng.choice([Label.POSITIVE, Label.NEGATIVE])
        delta = state.record(class_id, label)
        assert planner.advance(delta, state)
    if not state.has_informative():
        return None
    return planner


def _ragged_planners(
    depths: list[int], count: int, seed: int
) -> list[IncrementalLookaheadPlanner]:
    """``count`` planners over a handful of distinct indexes, at ragged
    progress points (different |N|, |U| and negative sets per job)."""
    indexes = [_random_index(seed * 7 + i) for i in range(3)]
    planners = []
    attempt = 0
    while len(planners) < count:
        attempt += 1
        assert attempt <= 50 * count, "instances keep collapsing"
        planner = _planner_at(
            indexes[attempt % len(indexes)],
            depths[attempt % len(depths)],
            labels=1 + attempt % 3,
            seed=seed * 131 + attempt,
        )
        if planner is not None:
            planners.append(planner)
    return planners


class TestBatchedParity:
    @pytest.mark.parametrize("batch_size", [1, 2, 7, 64])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_ragged_batch_matches_per_session(self, batch_size, depth):
        planners = _ragged_planners([depth], batch_size, seed=batch_size)
        jobs = [planner.export_batch_job() for planner in planners]
        assert all(job is not None for job in jobs)
        tables = batched_entropies(jobs)
        for planner, table in zip(planners, tables):
            assert table == planner.entropies()
            assert table == entropies_for_informative(
                planner._state, depth
            )

    def test_mixed_depth_batch(self):
        planners = _ragged_planners([1, 2], 9, seed=5)
        jobs = [planner.export_batch_job() for planner in planners]
        tables = batched_entropies(jobs)
        for planner, table in zip(planners, tables):
            assert table == planner.entropies()

    @pytest.mark.parametrize("left,right", [(7, 9), (8, 8), (5, 13)])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_multi_word_omega(self, left, right, depth):
        """Ω ∈ {63, 64, 65}: packed masks cross the word boundary."""
        planners = []
        for seed in range(4):
            index = _random_index(seed, arities=(left, right))
            assert len(index.instance.omega) == left * right
            planner = _planner_at(index, depth, labels=1 + seed % 2, seed=seed)
            if planner is not None:
                planners.append(planner)
        assert len(planners) >= 2
        tables = batched_entropies(
            [planner.export_batch_job() for planner in planners]
        )
        for planner, table in zip(planners, tables):
            assert table == planner.entropies()

    def test_matches_pure_python_reference(self):
        """One anchor straight to the recursive reference, not just the
        (already property-tested) vectorised paths."""
        planners = _ragged_planners([2], 3, seed=17)
        tables = batched_entropies(
            [planner.export_batch_job() for planner in planners]
        )
        for planner, table in zip(planners, tables):
            state = planner._state
            expected = {
                class_id: entropy_k_of_class(state, class_id, 2)
                for class_id in state.informative_class_ids()
            }
            assert table == expected

    def test_rejects_unbatchable_depth(self):
        planner = _ragged_planners([2], 1, seed=23)[0]
        job = planner.export_batch_job()
        job.depth = 3
        with pytest.raises(ValueError):
            batched_entropies([job])


class TestExportRules:
    def test_scratch_planner_declines(self):
        index = _random_index(7)
        state = InferenceState(index)
        planner = IncrementalLookaheadPlanner(state, 2)  # default floor
        assert planner._scratch
        assert planner.export_batch_job() is None

    def test_transient_first_propose_declines_then_exports(self):
        """Depth 2 defers its tables past the build step: the very
        first propose stays per-session, the first post-shrink export
        materialises the resident tables exactly like entropies()."""
        planner = None
        seed = 0
        while planner is None:
            seed += 1
            state = InferenceState(_random_index(seed))
            state.informative_ids_array()
            planner = IncrementalLookaheadPlanner(
                state, 2, scratch_floor_cells=0
            )
            if not state.has_informative():
                planner = None
        assert planner.export_batch_job() is None  # transient step
        state = planner._state
        class_id = state.informative_class_ids()[0]
        delta = state.record(class_id, Label.NEGATIVE)
        if planner.advance(delta, state) and state.has_informative():
            job = planner.export_batch_job()
            assert job is not None
            assert planner.sub_u is not None  # tables now resident
            assert batched_entropies([job, job]) == [
                planner.entropies(),
                planner.entropies(),
            ]

    def test_depth1_exports_immediately(self):
        planner = _planner_at(_random_index(3), 1, labels=0, seed=3)
        assert planner is not None
        job = planner.export_batch_job()
        assert job is not None and job.depth == 1


class TestScheduler:
    def _planners(self, count, seed=29):
        return _ragged_planners([2], count, seed=seed)

    def test_coalesces_concurrent_jobs(self):
        planners = self._planners(7)
        scheduler = KernelBatchScheduler(window_seconds=0.2, max_batch=64)
        try:
            futures = [
                scheduler.submit("idx", planner) for planner in planners
            ]
            for planner, future in zip(planners, futures):
                assert future.result(timeout=30) == planner.entropies()
            stats = scheduler.stats()
            assert stats["batches"] == 1
            assert stats["batched_jobs"] == 7
            assert stats["batch_size_histogram"] == {"7": 1}
        finally:
            scheduler.close()

    def test_singleton_falls_back_per_session(self):
        planner = self._planners(1)[0]
        scheduler = KernelBatchScheduler(window_seconds=0.0)
        try:
            table = scheduler.entropies("idx", planner)
            assert table == planner.entropies()
            stats = scheduler.stats()
            assert stats["batches"] == 0
            assert stats["fallback_jobs"] == 1
        finally:
            scheduler.close()

    def test_keys_batch_independently(self):
        planners = self._planners(4)
        scheduler = KernelBatchScheduler(window_seconds=0.2)
        try:
            futures = [
                scheduler.submit(f"idx{i % 2}", planner)
                for i, planner in enumerate(planners)
            ]
            for planner, future in zip(planners, futures):
                assert future.result(timeout=30) == planner.entropies()
            assert scheduler.stats()["batch_size_histogram"] == {"2": 2}
        finally:
            scheduler.close()

    def test_mid_batch_cancellation(self):
        """A job cancelled while queued (evicted session, aborted
        speculation) is dropped at flush without running any kernel —
        and the rest of the batch still matches per-session."""
        planners = self._planners(4)
        scheduler = KernelBatchScheduler(window_seconds=0.2)
        try:
            futures = [
                scheduler.submit("idx", planner) for planner in planners
            ]
            assert futures[1].cancel()
            for i, (planner, future) in enumerate(zip(planners, futures)):
                if i == 1:
                    assert future.cancelled()
                else:
                    assert future.result(timeout=30) == planner.entropies()
            stats = scheduler.stats()
            assert stats["cancelled_jobs"] == 1
            assert stats["batched_jobs"] == 3
        finally:
            scheduler.close()

    def test_threaded_submissions_all_resolve(self):
        planners = self._planners(12)
        scheduler = KernelBatchScheduler(window_seconds=0.01)
        try:
            with ThreadPoolExecutor(max_workers=6) as pool:
                tables = list(
                    pool.map(
                        lambda planner: scheduler.entropies(
                            "idx", planner
                        ),
                        planners,
                    )
                )
            for planner, table in zip(planners, tables):
                assert table == planner.entropies()
        finally:
            scheduler.close()

    def test_submit_after_close_raises(self):
        scheduler = KernelBatchScheduler()
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit("idx", object())

    def test_broken_planner_does_not_poison_batch(self):
        class Broken:
            def export_batch_job(self):
                raise RuntimeError("boom")

        planners = self._planners(2)
        scheduler = KernelBatchScheduler(window_seconds=0.2)
        try:
            futures = [
                scheduler.submit("idx", planners[0]),
                scheduler.submit("idx", Broken()),
                scheduler.submit("idx", planners[1]),
            ]
            with pytest.raises(RuntimeError):
                futures[1].result(timeout=30)
            assert futures[0].result(timeout=30) == planners[0].entropies()
            assert futures[2].result(timeout=30) == planners[1].entropies()
        finally:
            scheduler.close()

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            KernelBatchScheduler(window_seconds=-1)
        with pytest.raises(ValueError):
            KernelBatchScheduler(max_batch=0)
