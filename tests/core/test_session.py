"""Algorithm 1: the interactive inference session."""

import pytest

from repro.core import (
    InconsistentSampleError,
    InferenceSession,
    Label,
    MaxInteractions,
    NoisyOracle,
    PerfectOracle,
    run_inference,
)
from repro.core.strategies import (
    BottomUpStrategy,
    TopDownStrategy,
    default_strategies,
)
from repro.relational import JoinPredicate


class TestBasicRuns:
    @pytest.mark.parametrize(
        "goal_pairs",
        [
            (),
            (("A1", "B1"),),
            (("A2", "B3"),),
            (("A1", "B1"), ("A2", "B3")),
            (("A1", "B2"), ("A1", "B3"), ("A2", "B1")),
        ],
    )
    def test_every_strategy_recovers_every_goal(self, example21, goal_pairs):
        e = example21
        goal = e.theta(*goal_pairs)
        for strategy in default_strategies():
            result = run_inference(
                e.instance, strategy, PerfectOracle(e.instance, goal), seed=5
            )
            assert result.matches_goal(e.instance, goal), (
                f"{strategy.name} failed to recover {goal}"
            )

    def test_nullable_goal_recovered_up_to_equivalence(self, example21):
        """A goal selecting nothing is indistinguishable from Ω."""
        e = example21
        goal = e.theta(("A2", "B1"), ("A2", "B2"), ("A2", "B3"))  # nullable
        result = run_inference(
            e.instance, TopDownStrategy(), PerfectOracle(e.instance, goal)
        )
        assert result.matches_goal(e.instance, goal)
        assert result.predicate == JoinPredicate(e.instance.omega)

    def test_interactions_counted(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, e.theta(("A2", "B3"))),
        )
        assert result.interactions == len(result.history)
        assert result.interactions >= 1

    def test_history_alternates_with_sample(self, example21):
        e = example21
        session = InferenceSession(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
        )
        result = session.run()
        assert len(session.sample) == result.interactions
        for example in result.history:
            assert session.sample.label_of(example.tuple_pair) is (
                example.label
            )

    def test_empty_goal_bottom_up_one_interaction(self, example21):
        """§5.3: BU infers the empty goal with a single interaction."""
        e = example21
        result = run_inference(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, JoinPredicate.empty()),
        )
        assert result.interactions == 1
        assert result.predicate == JoinPredicate.empty()

    def test_all_negative_user_yields_omega(self, example21):
        """§3.3: rejecting everything returns Ω; TD does it without
        labeling the whole product (|maximal classes| = 7 < 12)."""
        e = example21
        from repro.core import CallbackOracle

        result = run_inference(
            e.instance,
            TopDownStrategy(),
            CallbackOracle(lambda t: Label.NEGATIVE),
        )
        assert result.predicate == JoinPredicate(e.instance.omega)
        assert result.interactions == 7

    def test_bottom_up_all_negative_labels_every_class(self, example21):
        """BU's worst case (§4.3): one question per signature class."""
        from repro.core import CallbackOracle

        e = example21
        result = run_inference(
            e.instance,
            BottomUpStrategy(),
            CallbackOracle(lambda t: Label.NEGATIVE),
        )
        assert result.interactions == 12


class TestStepAPI:
    def test_step_returns_example(self, example21):
        e = example21
        session = InferenceSession(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, JoinPredicate.empty()),
        )
        example = session.step()
        assert example.label is Label.POSITIVE  # BU asks T=∅ first

    def test_current_predicate_tracks_t_plus(self, example21):
        e = example21
        session = InferenceSession(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
        )
        assert session.current_predicate() == JoinPredicate(e.instance.omega)
        session.run()
        assert session.current_predicate() == e.theta(("A1", "B1"))

    def test_bad_oracle_return_type(self, example21):
        from repro.core import CallbackOracle

        e = example21
        session = InferenceSession(
            e.instance, BottomUpStrategy(), CallbackOracle(lambda t: "+")
        )
        with pytest.raises(TypeError):
            session.step()


class TestHaltConditions:
    def test_max_interactions_halts_early(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"), ("A2", "B3"))),
            halt_condition=MaxInteractions(2),
        )
        assert result.interactions <= 2
        assert result.halted_early

    def test_zero_budget(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
            halt_condition=MaxInteractions(0),
        )
        assert result.interactions == 0
        assert result.predicate == JoinPredicate(e.instance.omega)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            MaxInteractions(-1)

    def test_full_run_not_marked_early(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            BottomUpStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
        )
        assert not result.halted_early


class TestInconsistentOracle:
    def test_adversarial_oracle_raises(self, example21):
        """An oracle ignoring its own previous answers trips lines 6–7 of
        Algorithm 1."""
        from repro.core import CallbackOracle

        e = example21
        flip = {"value": Label.POSITIVE}

        def contradictory(t):
            # First answer positive on the ∅-signature tuple (selects all
            # predicates as consistent), then claim a certain-positive
            # tuple is negative.
            label = flip["value"]
            flip["value"] = Label.NEGATIVE
            return label

        session = InferenceSession(
            e.instance, BottomUpStrategy(), CallbackOracle(contradictory)
        )
        session.step()  # (t3,u1) labeled +  → everything certain positive
        # The sample is complete; no informative tuples remain.
        assert not session.state.has_informative()

    def test_noisy_oracle_never_trips_consistency(self, example21):
        """§4.1: strategies ask about informative tuples only, and both
        labels of an informative tuple are consistent — so even a coin-flip
        oracle produces a *consistent* (if wrong) sample, and Algorithm 1's
        lines 6–7 never fire."""
        e = example21
        goal = e.theta(("A1", "B1"))
        wrong_inferences = 0
        for seed in range(20):
            oracle = NoisyOracle(
                PerfectOracle(e.instance, goal), error_rate=0.5, seed=seed
            )
            session = InferenceSession(
                e.instance, BottomUpStrategy(), oracle, seed=seed
            )
            result = session.run()  # must not raise
            from repro.core import is_consistent

            assert is_consistent(e.instance, session.sample)
            if not result.matches_goal(e.instance, goal):
                wrong_inferences += 1
        # Noise does corrupt the outcome, just never the consistency.
        assert wrong_inferences > 0

    def test_consistency_guard_fires_for_uninformative_proposals(
        self, example21
    ):
        """Lines 6–7 of Algorithm 1 protect against strategies that ask
        about certain tuples: a contradicting answer is rejected."""
        from repro.core import CallbackOracle
        from repro.core.strategies.base import StatelessStrategy

        e = example21
        index_holder = {}

        class AskCertainStrategy(StatelessStrategy):
            """First asks (t1,u3); then deliberately proposes a tuple the
            sample has already pinned (certain-negative)."""

            name = "BAD"

            def choose(self, state, rng):
                index = state.index
                first = index.class_of_tuple((e.t1, e.u3)).class_id
                if state.label_of_class(first) is None:
                    return first
                # (t2,u1) has T = {(A1,B3)} ⊆ T((t1,u3)) — certain-negative
                # once (t1,u3) is labeled negative (Lemma 3.4).
                return index.class_of_tuple((e.t2, e.u1)).class_id

        answers = iter([Label.NEGATIVE, Label.POSITIVE])
        session = InferenceSession(
            e.instance,
            AskCertainStrategy(),
            CallbackOracle(lambda t: next(answers)),
        )
        session.step()  # (t1,u3) labeled negative
        assert session.state.is_certain_negative(
            session.index.class_of_tuple((e.t2, e.u1)).class_id
        )
        with pytest.raises(InconsistentSampleError):
            # The strategy proposes the certain-negative tuple; the oracle
            # answers positive — contradiction, lines 6–7 fire.
            session.step()


class TestSeededReproducibility:
    def test_random_strategy_reproducible(self, example21):
        from repro.core.strategies import RandomStrategy

        e = example21
        goal = e.theta(("A1", "B1"))
        first = run_inference(
            e.instance, RandomStrategy(), PerfectOracle(e.instance, goal),
            seed=99,
        )
        second = run_inference(
            e.instance, RandomStrategy(), PerfectOracle(e.instance, goal),
            seed=99,
        )
        assert [ex.tuple_pair for ex in first.history] == [
            ex.tuple_pair for ex in second.history
        ]


class TestAskAnswerProtocol:
    """The non-blocking propose/answer protocol (service-facing)."""

    def _session(self, example21, strategy=None, **kwargs):
        return InferenceSession(
            example21.instance,
            strategy or TopDownStrategy(),
            seed=0,
            **kwargs,
        )

    def test_propose_is_idempotent_until_answered(self, example21):
        session = self._session(example21)
        first = session.propose()
        assert session.propose() is first
        session.answer(first.question_id, Label.NEGATIVE)
        second = session.propose()
        assert second.question_id == first.question_id + 1

    def test_answer_requires_matching_question_id(self, example21):
        from repro.core import QuestionProtocolError

        session = self._session(example21)
        question = session.propose()
        with pytest.raises(QuestionProtocolError):
            session.answer(question.question_id + 1, Label.POSITIVE)
        with pytest.raises(QuestionProtocolError):
            # Nothing proposed yet on a fresh session.
            self._session(example21).answer(0, Label.POSITIVE)

    def test_answer_without_label_type_raises(self, example21):
        session = self._session(example21)
        session.propose()
        with pytest.raises(TypeError):
            session.answer(0, "+")

    def test_step_without_oracle_raises(self, example21):
        session = self._session(example21)
        with pytest.raises(RuntimeError):
            session.step()

    def test_propose_answer_loop_matches_run(self, example21):
        e = example21
        goal = e.theta(("A1", "B1"), ("A2", "B3"))
        oracle = PerfectOracle(e.instance, goal)
        for strategy in default_strategies():
            reference = run_inference(
                e.instance, strategy, oracle, seed=9
            )
            session = InferenceSession(e.instance, strategy, seed=9)
            while (question := session.propose()) is not None:
                session.answer(
                    question.question_id, oracle.label(question.tuple_pair)
                )
            assert session.current_predicate() == reference.predicate
            assert (
                session.state.interaction_count == reference.interactions
            )
            assert session.is_finished()

    def test_failed_answer_keeps_question_pending(self, example21):
        from repro.core import QuestionProtocolError

        session = self._session(example21)
        question = session.propose()
        with pytest.raises(QuestionProtocolError):
            session.answer(question.question_id + 7, Label.POSITIVE)
        assert session.pending_question is question
        session.answer(question.question_id, Label.NEGATIVE)
        assert session.pending_question is None

    def test_max_interactions_halts_propose(self, example21):
        session = self._session(
            example21, halt_condition=MaxInteractions(1)
        )
        question = session.propose()
        session.answer(question.question_id, Label.NEGATIVE)
        assert session.propose() is None
        assert session.is_finished()
