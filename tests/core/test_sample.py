"""Tests for examples and samples."""

import pytest

from repro.core import Example, Label, Sample
from repro.core.sample import ConflictingLabelError


T1 = ((0, 1), (1, 1, 0))
T2 = ((0, 2), (0, 1, 2))


class TestLabel:
    def test_str(self):
        assert str(Label.POSITIVE) == "+"
        assert str(Label.NEGATIVE) == "-"

    def test_opposite(self):
        assert Label.POSITIVE.opposite is Label.NEGATIVE
        assert Label.NEGATIVE.opposite is Label.POSITIVE


class TestExample:
    def test_polarity_flags(self):
        assert Example(T1, Label.POSITIVE).is_positive
        assert not Example(T1, Label.POSITIVE).is_negative
        assert Example(T1, Label.NEGATIVE).is_negative

    def test_frozen_and_hashable(self):
        assert Example(T1, Label.POSITIVE) == Example(T1, Label.POSITIVE)
        assert len({Example(T1, Label.POSITIVE)} | {
            Example(T1, Label.POSITIVE)
        }) == 1


class TestSample:
    def test_empty(self):
        sample = Sample()
        assert len(sample) == 0
        assert sample.positives == [] and sample.negatives == []

    def test_positives_negatives_split(self):
        sample = Sample()
        sample.label_tuple(T1, Label.POSITIVE)
        sample.label_tuple(T2, Label.NEGATIVE)
        assert sample.positives == [T1]
        assert sample.negatives == [T2]

    def test_relabeling_same_label_is_idempotent(self):
        sample = Sample()
        sample.label_tuple(T1, Label.POSITIVE)
        sample.label_tuple(T1, Label.POSITIVE)
        assert len(sample) == 1

    def test_conflicting_label_rejected(self):
        sample = Sample()
        sample.label_tuple(T1, Label.POSITIVE)
        with pytest.raises(ConflictingLabelError):
            sample.label_tuple(T1, Label.NEGATIVE)

    def test_label_of(self):
        sample = Sample()
        sample.label_tuple(T1, Label.NEGATIVE)
        assert sample.label_of(T1) is Label.NEGATIVE
        assert sample.label_of(T2) is None

    def test_is_labeled(self):
        sample = Sample()
        sample.label_tuple(T1, Label.POSITIVE)
        assert sample.is_labeled(T1)
        assert not sample.is_labeled(T2)

    def test_with_example_does_not_mutate_original(self):
        sample = Sample()
        extended = sample.with_example(Example(T1, Label.POSITIVE))
        assert len(sample) == 0
        assert len(extended) == 1

    def test_contains_checks_label_too(self):
        sample = Sample([Example(T1, Label.POSITIVE)])
        assert Example(T1, Label.POSITIVE) in sample
        assert Example(T1, Label.NEGATIVE) not in sample
        assert "not an example" not in sample

    def test_iteration_yields_examples(self):
        sample = Sample([Example(T1, Label.POSITIVE)])
        assert list(sample) == [Example(T1, Label.POSITIVE)]

    def test_equality(self):
        first = Sample([Example(T1, Label.POSITIVE)])
        second = Sample([Example(T1, Label.POSITIVE)])
        assert first == second

    def test_constructor_rejects_conflicts(self):
        with pytest.raises(ConflictingLabelError):
            Sample(
                [Example(T1, Label.POSITIVE), Example(T1, Label.NEGATIVE)]
            )

    def test_repr(self):
        sample = Sample([Example(T1, Label.POSITIVE)])
        assert "S+" in repr(sample)
