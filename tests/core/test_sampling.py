"""Sampled signature indexes (big-instance approximation)."""


import pytest

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    TopDownStrategy,
    coverage_probability,
    run_inference,
    sampled_signature_index,
)
from repro.data import SyntheticConfig, generate_synthetic
from repro.relational import Instance, JoinPredicate, Relation


class TestCoverageProbability:
    def test_certain_when_frequency_one(self):
        assert coverage_probability(1.0, 1) == 1.0

    def test_zero_frequency_never_covered(self):
        assert coverage_probability(0.0, 1000) == 0.0

    def test_monotone_in_sample_size(self):
        values = [coverage_probability(0.01, n) for n in (10, 100, 1000)]
        assert values == sorted(values)

    def test_known_value(self):
        assert coverage_probability(0.5, 2) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_probability(1.5, 10)
        with pytest.raises(ValueError):
            coverage_probability(0.5, -1)


class TestSampledIndex:
    @pytest.fixture(scope="class")
    def instance(self):
        return generate_synthetic(SyntheticConfig(3, 3, 60, 30), seed=5)

    def test_signatures_are_subset_of_exact(self, instance):
        exact = SignatureIndex(instance)
        sampled = sampled_signature_index(instance, n_pairs=500, seed=1)
        exact_masks = {cls.mask for cls in exact}
        sampled_masks = {cls.mask for cls in sampled}
        assert sampled_masks <= exact_masks

    def test_total_weight_approximates_product(self, instance):
        sampled = sampled_signature_index(instance, n_pairs=800, seed=2)
        assert (
            0.5 * instance.cartesian_size
            <= sampled.total_weight
            <= 1.5 * instance.cartesian_size
        )

    def test_common_signatures_found(self, instance):
        """Signatures covering ≥ 5% of the product are found w.h.p."""
        exact = SignatureIndex(instance)
        total = instance.cartesian_size
        sampled = sampled_signature_index(instance, n_pairs=600, seed=3)
        sampled_masks = {cls.mask for cls in sampled}
        for cls in exact:
            if cls.count / total >= 0.05:
                assert cls.mask in sampled_masks

    def test_oversampling_returns_exact_index(self, instance):
        sampled = sampled_signature_index(
            instance, n_pairs=instance.cartesian_size * 2, seed=0
        )
        exact = SignatureIndex(instance)
        assert [(c.mask, c.count) for c in sampled] == [
            (c.mask, c.count) for c in exact
        ]

    def test_inference_on_sampled_index(self, instance):
        """Inference over the sampled quotient still recovers goals whose
        signatures are common."""
        goal = JoinPredicate([instance.omega[0]])
        sampled = sampled_signature_index(instance, n_pairs=1500, seed=4)
        result = run_inference(
            instance,
            TopDownStrategy(),
            PerfectOracle(instance, goal),
            index=sampled,
            seed=0,
        )
        # The predicate is consistent with every given label by
        # construction; on this dense goal it is also exact.
        assert result.matches_goal(instance, goal)

    def test_empty_relation_falls_back(self):
        instance = Instance(
            Relation.build("R", ["A"]), Relation.build("P", ["B"], [(1,)])
        )
        sampled = sampled_signature_index(instance, n_pairs=10, seed=0)
        assert len(sampled) == 0

    def test_invalid_sample_size(self, instance):
        with pytest.raises(ValueError):
            sampled_signature_index(instance, n_pairs=0)

    def test_deterministic_under_seed(self, instance):
        first = sampled_signature_index(instance, n_pairs=300, seed=9)
        second = sampled_signature_index(instance, n_pairs=300, seed=9)
        assert [(c.mask, c.count) for c in first] == [
            (c.mask, c.count) for c in second
        ]

    def test_maximal_ids_recomputed(self, instance):
        sampled = sampled_signature_index(instance, n_pairs=400, seed=6)
        masks = [cls.mask for cls in sampled]
        for class_id in sampled.maximal_class_ids:
            mask = sampled[class_id].mask
            assert not any(
                other != mask and mask & ~other == 0 for other in masks
            )
