"""Inference state: the bitmask twin of the certain-tuple machinery."""

import pytest

from repro.core import (
    Label,
    Sample,
    SignatureIndex,
    certain_negative,
    certain_positive,
)
from repro.core.state import InferenceState


@pytest.fixture()
def state(example21_index):
    return InferenceState(example21_index)


def tuple_class(index, t):
    return index.class_of_tuple(t).class_id


class TestRecording:
    def test_initial_state(self, state, example21_index):
        assert state.t_plus_mask == example21_index.omega_mask
        assert state.negative_masks == ()
        assert not state.has_positive
        assert state.interaction_count == 0

    def test_positive_label_shrinks_t_plus(self, state, example21):
        e = example21
        cid = tuple_class(state.index, (e.t2, e.u2))
        state.record(cid, Label.POSITIVE)
        assert state.t_plus_mask == state.index[cid].mask
        assert state.has_positive

    def test_two_positives_intersect(self, state, example21):
        e = example21
        first = tuple_class(state.index, (e.t2, e.u2))
        second = tuple_class(state.index, (e.t4, e.u1))
        state.record(first, Label.POSITIVE)
        state.record(second, Label.POSITIVE)
        assert state.t_plus_mask == (
            state.index[first].mask & state.index[second].mask
        )

    def test_negative_label_appends_mask(self, state, example21):
        e = example21
        cid = tuple_class(state.index, (e.t1, e.u3))
        state.record(cid, Label.NEGATIVE)
        assert state.negative_masks == (state.index[cid].mask,)
        assert not state.has_positive

    def test_conflicting_relabel_rejected(self, state):
        state.record(0, Label.POSITIVE)
        with pytest.raises(ValueError):
            state.record(0, Label.NEGATIVE)

    def test_label_of_class(self, state):
        assert state.label_of_class(0) is None
        state.record(0, Label.NEGATIVE)
        assert state.label_of_class(0) is Label.NEGATIVE

    def test_copy_is_independent(self, state):
        twin = state.copy()
        twin.record(0, Label.NEGATIVE)
        assert state.interaction_count == 0
        assert twin.interaction_count == 1


class TestCertaintyAgainstSetImplementation:
    """The mask-level tests must agree with the JoinPredicate-level ones."""

    def _apply(self, instance, index, labels):
        state = InferenceState(index)
        sample = Sample()
        for t, label in labels:
            state.record(index.class_of_tuple(t).class_id, label)
            sample.label_tuple(t, label)
        return state, sample

    def test_section44_state(self, example21, example21_index):
        e = example21
        state, sample = self._apply(
            e.instance,
            example21_index,
            [((e.t1, e.u3), Label.POSITIVE), ((e.t3, e.u1), Label.NEGATIVE)],
        )
        expected_pos = certain_positive(e.instance, sample)
        expected_neg = certain_negative(e.instance, sample)
        for cls in example21_index:
            t = cls.representative
            assert state.is_certain_positive(cls.class_id) == (
                t in expected_pos
            )
            assert state.is_certain_negative(cls.class_id) == (
                t in expected_neg
            )

    def test_informative_ids_match(self, example21, example21_index):
        e = example21
        state, sample = self._apply(
            e.instance,
            example21_index,
            [((e.t1, e.u3), Label.POSITIVE), ((e.t3, e.u1), Label.NEGATIVE)],
        )
        from repro.core import informative_tuples

        expected = set(informative_tuples(e.instance, sample))
        got = {
            example21_index[cid].representative
            for cid in state.informative_class_ids()
        }
        assert got == expected
        assert state.has_informative()

    def test_forced_label(self, example21, example21_index):
        e = example21
        state, _ = self._apply(
            e.instance,
            example21_index,
            [((e.t1, e.u3), Label.POSITIVE)],
        )
        cid = tuple_class(example21_index, (e.t2, e.u3))
        assert state.forced_label(cid) is Label.POSITIVE
        unlabeled = tuple_class(example21_index, (e.t4, e.u1))
        assert state.forced_label(unlabeled) is None

    def test_consistency_guard(self, example21, example21_index):
        e = example21
        state, _ = self._apply(
            e.instance,
            example21_index,
            [((e.t1, e.u3), Label.POSITIVE)],
        )
        superset_cid = tuple_class(example21_index, (e.t2, e.u3))
        assert state.is_consistent_with(superset_cid, Label.POSITIVE)
        assert not state.is_consistent_with(superset_cid, Label.NEGATIVE)


class TestNewlyCertainWeight:
    def test_empty_extras_is_zero(self, state):
        assert state.newly_certain_weight([]) == 0

    def test_positive_on_empty_signature_pins_everything(
        self, state, example21
    ):
        e = example21
        cid = tuple_class(state.index, (e.t3, e.u1))  # T = ∅
        assert state.newly_certain_weight([(cid, Label.POSITIVE)]) == 11

    def test_negative_on_empty_signature_pins_nothing_else(
        self, state, example21
    ):
        e = example21
        cid = tuple_class(state.index, (e.t3, e.u1))
        assert state.newly_certain_weight([(cid, Label.NEGATIVE)]) == 0

    def test_respects_class_counts(self):
        """With multiplicities, the gain counts tuples, not classes."""
        from repro.relational import Instance, Relation

        # Ω = {(A1,B1),(A2,B1)}; no tuple agrees on everything, so both
        # classes start informative.
        left = Relation.build("R", ["A1", "A2"], [(1, 9), (2, 9)])
        right = Relation.build("P", ["B1"], [(1,), (3,)])
        index = SignatureIndex(Instance(left, right), backend="python")
        state = InferenceState(index)
        empty_class = index.class_of_mask(0)
        assert empty_class is not None and empty_class.count == 3
        singleton = index.class_of_mask(1)  # {(A1,B1)}, count 1
        assert singleton is not None and singleton.count == 1
        # Labeling the singleton class negative pins all 3 tuples of the
        # ∅ class (Lemma 3.4) but only 1 − 1 = 0 net tuples of its own.
        assert state.newly_certain_weight(
            [(singleton.class_id, Label.NEGATIVE)]
        ) == 3
        # Labeling it positive pins no other class: no superset signature
        # exists and there are no negative examples.
        assert state.newly_certain_weight(
            [(singleton.class_id, Label.POSITIVE)]
        ) == 0

    def test_full_agreement_class_starts_certain(self):
        """A tuple agreeing on all of Ω is certain-positive even under the
        empty sample (T(S+) = Ω ⊆ T(t))."""
        from repro.relational import Instance, Relation

        left = Relation.build("R", ["A"], [(1,), (2,)])
        right = Relation.build("P", ["B"], [(1,)])
        index = SignatureIndex(Instance(left, right), backend="python")
        state = InferenceState(index)
        full = index.class_of_mask(index.omega_mask)
        assert full is not None
        assert state.is_certain_positive(full.class_id)
        assert state.informative_class_ids() == [
            index.class_of_mask(0).class_id
        ]
