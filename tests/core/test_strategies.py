"""Strategy-specific behaviour (Algorithms 2, 3, 4, 6 + OPT)."""

import random

import pytest

from repro.core import (
    Label,
    PerfectOracle,
    run_inference,
)
from repro.core.state import InferenceState
from repro.core.strategies import (
    BottomUpStrategy,
    LookaheadSkylineStrategy,
    NoInformativeTupleError,
    OptimalStrategy,
    RandomStrategy,
    TopDownStrategy,
    default_strategies,
    one_step_lookahead,
    strategy_by_name,
    two_step_lookahead,
)
from repro.relational import JoinPredicate


@pytest.fixture()
def fresh_state(example21_index):
    return InferenceState(example21_index)


class TestBottomUp:
    def test_first_pick_is_empty_signature(self, example21, fresh_state):
        """§4.3: BU asks (t3,u1) — the tuple with T = ∅ — first."""
        e = example21
        cid = BottomUpStrategy().choose(fresh_state, random.Random(0))
        assert fresh_state.index[cid].representative == (e.t3, e.u1)

    def test_second_pick_after_negative_is_singleton(
        self, example21, fresh_state
    ):
        """§4.3: after a negative answer BU moves to {(A1,B3)} = (t2,u1)."""
        e = example21
        first = BottomUpStrategy().choose(fresh_state, random.Random(0))
        fresh_state.record(first, Label.NEGATIVE)
        second = BottomUpStrategy().choose(fresh_state, random.Random(0))
        assert fresh_state.index[second].representative == (e.t2, e.u1)

    def test_positive_on_empty_ends_inference(self, example21, fresh_state):
        """§4.3: a positive on the ∅ node prunes the whole lattice."""
        first = BottomUpStrategy().choose(fresh_state, random.Random(0))
        fresh_state.record(first, Label.POSITIVE)
        assert not fresh_state.has_informative()

    def test_raises_when_nothing_informative(self, example21, fresh_state):
        first = BottomUpStrategy().choose(fresh_state, random.Random(0))
        fresh_state.record(first, Label.POSITIVE)
        with pytest.raises(NoInformativeTupleError):
            BottomUpStrategy().choose(fresh_state, random.Random(0))


class TestTopDown:
    def test_first_pick_is_maximal(self, fresh_state):
        cid = TopDownStrategy().choose(fresh_state, random.Random(0))
        assert cid in fresh_state.index.maximal_class_ids

    def test_switches_to_bottom_up_after_positive(
        self, example21, fresh_state
    ):
        e = example21
        strategy = TopDownStrategy()
        first = strategy.choose(fresh_state, random.Random(0))
        fresh_state.record(first, Label.POSITIVE)
        if fresh_state.has_informative():
            second = strategy.choose(fresh_state, random.Random(0))
            informative = fresh_state.informative_class_ids()
            min_size = min(
                fresh_state.index[cid].size for cid in informative
            )
            assert fresh_state.index[second].size == min_size

    def test_all_negatives_visit_only_maximal_classes(
        self, example21, fresh_state
    ):
        strategy = TopDownStrategy()
        asked = []
        while fresh_state.has_informative():
            cid = strategy.choose(fresh_state, random.Random(0))
            asked.append(cid)
            fresh_state.record(cid, Label.NEGATIVE)
        assert set(asked) <= set(fresh_state.index.maximal_class_ids)
        assert len(asked) == len(fresh_state.index.maximal_class_ids)


class TestLookahead:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            LookaheadSkylineStrategy(depth=0)

    def test_names(self):
        assert one_step_lookahead().name == "L1S"
        assert two_step_lookahead().name == "L2S"
        assert LookaheadSkylineStrategy(depth=3).name == "L3S"

    def test_vectorised_and_reference_choose_identically(
        self, example21, fresh_state
    ):
        """The two code paths must pick the same class at every depth."""
        for depth in (1, 2):
            fast = LookaheadSkylineStrategy(depth=depth)
            slow = LookaheadSkylineStrategy(depth=depth, vectorised=False)
            assert fast.choose(fresh_state, random.Random(0)) == (
                slow.choose(fresh_state, random.Random(0))
            )

    def test_l1s_first_pick_on_example21(self, example21, fresh_state):
        """§4.4 reports the L1S tie set {(t1,u3), (t2,u1)}; with the
        corrected Figure 5 arithmetic the unique winner is (t2,u1)."""
        e = example21
        cid = one_step_lookahead().choose(fresh_state, random.Random(0))
        assert fresh_state.index[cid].representative == (e.t2, e.u1)

    def test_l2s_terminates_in_three_more_after_walkthrough(
        self, example21, example21_index
    ):
        """Following §4.4: from S = {((t1,u3),+), ((t3,u1),−)} labeling
        (t2,u1) positive ends the inference immediately."""
        e = example21
        state = InferenceState(example21_index)
        state.record(
            example21_index.class_of_tuple((e.t1, e.u3)).class_id,
            Label.POSITIVE,
        )
        state.record(
            example21_index.class_of_tuple((e.t3, e.u1)).class_id,
            Label.NEGATIVE,
        )
        cid = two_step_lookahead().choose(state, random.Random(0))
        # entropy2 of (t2,u1) is (3,3); all other informative tuples have
        # strictly worse guaranteed gain, so L2S picks it.
        assert example21_index[cid].representative == (e.t2, e.u1)


class TestRandom:
    def test_seed_determinism(self, fresh_state):
        first = RandomStrategy().choose(fresh_state, random.Random(4))
        second = RandomStrategy().choose(fresh_state, random.Random(4))
        assert first == second

    def test_only_informative_choices(self, example21, fresh_state):
        strategy = RandomStrategy()
        rng = random.Random(0)
        while fresh_state.has_informative():
            cid = strategy.choose(fresh_state, rng)
            assert cid in fresh_state.informative_class_ids()
            fresh_state.record(cid, Label.NEGATIVE)


class TestOptimal:
    def test_worst_case_at_most_every_practical_strategy(self, example21):
        """The minimax value is a lower bound on every strategy's
        worst-case interaction count over all goals."""
        e = example21
        optimal = OptimalStrategy()
        from repro.core import SignatureIndex

        index = SignatureIndex(e.instance, backend="python")
        opt_value = optimal.worst_case_interactions(index)
        from repro.core import non_nullable_predicates

        goals = non_nullable_predicates(index) + [
            JoinPredicate(e.instance.omega)
        ]
        for strategy in default_strategies():
            worst = max(
                run_inference(
                    e.instance,
                    strategy,
                    PerfectOracle(e.instance, goal),
                    index=index,
                    seed=0,
                ).interactions
                for goal in goals
            )
            assert worst >= opt_value, strategy.name

    def test_optimal_achieves_its_value(self, example21):
        """Running OPT against every goal never exceeds the minimax value."""
        e = example21
        from repro.core import SignatureIndex, non_nullable_predicates

        index = SignatureIndex(e.instance, backend="python")
        optimal = OptimalStrategy()
        opt_value = optimal.worst_case_interactions(index)
        goals = non_nullable_predicates(index) + [
            JoinPredicate(e.instance.omega)
        ]
        worst = max(
            run_inference(
                e.instance,
                optimal,
                PerfectOracle(e.instance, goal),
                index=index,
                seed=0,
            ).interactions
            for goal in goals
        )
        assert worst == opt_value

    def test_class_limit(self, example21):
        optimal = OptimalStrategy(max_classes=2)
        from repro.core import SignatureIndex

        index = SignatureIndex(example21.instance, backend="python")
        with pytest.raises(ValueError):
            optimal.worst_case_interactions(index)


class TestStrategyFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("RND", RandomStrategy),
            ("BU", BottomUpStrategy),
            ("TD", TopDownStrategy),
            ("OPT", OptimalStrategy),
            ("L1S", LookaheadSkylineStrategy),
            ("L2S", LookaheadSkylineStrategy),
            ("l2s", LookaheadSkylineStrategy),
        ],
    )
    def test_by_name(self, name, cls):
        assert isinstance(strategy_by_name(name), cls)

    def test_lookahead_depth_parsed(self):
        assert strategy_by_name("L3S").depth == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            strategy_by_name("SUPER")
        with pytest.raises(ValueError):
            strategy_by_name("LxS")

    def test_default_strategies_roster(self):
        names = [s.name for s in default_strategies()]
        assert names == ["RND", "BU", "TD", "L1S", "L2S"]
