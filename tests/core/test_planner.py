"""The incremental planner must match the from-scratch path bit-for-bit.

The planner maintains the lookahead matrices across steps (the tentpole
of the cross-step-reuse refactor); every test here pins its output to
:func:`repro.core.fast_lookahead.entropies_for_informative` — itself
property-tested against the recursive reference — after *every* label of
full sessions, over both answer polarities, resyncs, forks, and
multi-word Ω.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Label, SignatureIndex
from repro.core.fast_lookahead import entropies_for_informative
from repro.core.planner import IncrementalLookaheadPlanner
from repro.core.state import InferenceState, StateDelta

from ..conftest import make_random_instance


def _random_index(seed: int) -> SignatureIndex:
    rng = random.Random(seed)
    instance = make_random_instance(
        rng,
        left_arity=rng.randrange(1, 4),
        right_arity=rng.randrange(1, 4),
        rows=rng.randrange(2, 10),
        values=rng.randrange(2, 5),
    )
    return SignatureIndex(instance, backend="python")


def _drive_and_check(index: SignatureIndex, depth: int, seed: int) -> int:
    """Run a full random session, asserting planner == scratch at every
    step; returns the number of labels recorded.

    ``scratch_floor_cells=0`` pins the planner to the incremental path:
    test instances are small enough that the production floor would
    demote them to (trivially identical) scratch mode, which is exactly
    the machinery these tests must NOT skip.
    """
    state = InferenceState(index)
    state.informative_ids_array()
    planner = IncrementalLookaheadPlanner(state, depth, scratch_floor_cells=0)
    rng = random.Random(seed)
    steps = 0
    while state.has_informative():
        assert planner.in_sync(state)
        assert planner.entropies() == entropies_for_informative(
            state, depth
        )
        class_id = rng.choice(state.informative_class_ids())
        label = rng.choice([Label.POSITIVE, Label.NEGATIVE])
        delta = state.record(class_id, label)
        assert planner.advance(delta, state)
        steps += 1
    assert planner.entropies() == {}
    return steps


class TestParity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000), st.sampled_from([1, 2]))
    def test_full_session_matches_scratch(self, seed, depth):
        _drive_and_check(_random_index(seed), depth, seed * 31 + depth)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000))
    def test_depth3_matches_scratch(self, seed):
        _drive_and_check(_random_index(seed), 3, seed * 31 + 3)

    @pytest.mark.parametrize("left,right", [(7, 9), (8, 8), (5, 13)])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_multi_word_omega(self, left, right, depth):
        """Ω ∈ {63, 64, 65}: packed rows cross the one-word boundary."""
        rng = random.Random(left * right)
        instance = make_random_instance(
            rng, left_arity=left, right_arity=right, rows=4, values=3
        )
        assert len(instance.omega) == left * right
        index = SignatureIndex(instance, backend="python")
        _drive_and_check(index, depth, seed=left * right + depth)


class TestLifecycle:
    def test_advance_rejects_untracked_state(self):
        index = _random_index(3)
        state = InferenceState(index)
        planner = IncrementalLookaheadPlanner(state, 2, scratch_floor_cells=0)
        other = InferenceState(index)
        informative = other.informative_class_ids()
        delta = other.record(informative[0], Label.NEGATIVE)
        assert not planner.advance(delta, other)

    def test_advance_rejects_missed_labels(self):
        """Two records with a single advance must force a resync."""
        index = _random_index(5)
        state = InferenceState(index)
        planner = IncrementalLookaheadPlanner(state, 1, scratch_floor_cells=0)
        state.record(state.informative_class_ids()[0], Label.NEGATIVE)
        if not state.has_informative():
            return
        delta = state.record(
            state.informative_class_ids()[0], Label.NEGATIVE
        )
        assert not planner.advance(delta, state)  # planner is 2 behind

    def test_copy_evolves_independently(self):
        index = _random_index(11)
        state = InferenceState(index)
        state.informative_ids_array()
        planner = IncrementalLookaheadPlanner(state, 2, scratch_floor_cells=0)
        twin_state = state.copy()
        twin = planner.copy(twin_state)
        # advance only the twin; the original stays in sync and correct
        class_id = twin_state.informative_class_ids()[0]
        delta = twin_state.record(class_id, Label.NEGATIVE)
        assert twin.advance(delta, twin_state)
        assert twin.entropies() == entropies_for_informative(twin_state, 2)
        assert planner.in_sync(state)
        assert planner.entropies() == entropies_for_informative(state, 2)

    def test_delta_without_removed_forces_resync(self):
        """``removed=None`` means the informative set was never
        materialised — impossible for the tracked state (building the
        planner materialises it), so such a delta signals a resync."""
        index = _random_index(17)
        state = InferenceState(index)
        state.informative_ids_array()
        planner = IncrementalLookaheadPlanner(state, 2, scratch_floor_cells=0)
        class_id = state.informative_class_ids()[0]
        real = state.record(class_id, Label.NEGATIVE)
        blind = StateDelta(
            class_id=real.class_id, label=real.label, removed=None
        )
        assert not planner.advance(blind, state)
        # a rebuilt planner recovers the same entropies regardless
        rebuilt = IncrementalLookaheadPlanner(
            state, 2, scratch_floor_cells=0
        )
        assert rebuilt.entropies() == entropies_for_informative(state, 2)


class TestScratchDemotion:
    def test_small_instances_demote_but_stay_correct(self):
        """With the production floor, tiny matrices run in scratch mode
        — same results, no resident structures."""
        index = _random_index(7)
        state = InferenceState(index)
        planner = IncrementalLookaheadPlanner(state, 2)  # default floor
        assert planner._scratch  # test instances sit below the floor
        assert planner.entropies() == entropies_for_informative(state, 2)
        class_id = state.informative_class_ids()[0]
        delta = state.record(class_id, Label.NEGATIVE)
        assert planner.advance(delta, state)
        assert planner.in_sync(state)
        assert planner.entropies() == entropies_for_informative(state, 2)

    def test_demotion_mid_session(self):
        """A planner above the floor demotes once the informative set
        shrinks below it, and keeps producing identical entropies."""
        index = _random_index(11)
        n = len(state_ids := InferenceState(index).informative_class_ids())
        state = InferenceState(index)
        floor = n * n * index.n_words  # demote after the first shrink
        planner = IncrementalLookaheadPlanner(
            state, 1, scratch_floor_cells=floor - 1
        )
        assert not planner._scratch
        rng = random.Random(0)
        while state.has_informative():
            assert planner.entropies() == entropies_for_informative(
                state, 1
            )
            delta = state.record(
                rng.choice(state.informative_class_ids()), Label.NEGATIVE
            )
            assert planner.advance(delta, state)
        assert planner._scratch


class TestStateDelta:
    def test_removed_lists_labeled_and_newly_certain(self):
        index = _random_index(23)
        state = InferenceState(index)
        before = set(state.informative_class_ids())
        class_id = state.informative_class_ids()[0]
        delta = state.record(class_id, Label.POSITIVE)
        after = set(state.informative_class_ids())
        assert delta.class_id == class_id
        assert delta.label is Label.POSITIVE
        assert set(int(x) for x in delta.removed) == before - after

    def test_removed_is_none_before_materialisation(self):
        index = _random_index(23)
        state = InferenceState(index)
        delta = state.record(0, Label.NEGATIVE)
        assert delta.removed is None
