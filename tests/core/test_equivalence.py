"""Instance-equivalence of predicates (§3.3)."""

from repro.core import (
    instance_equivalent,
    selected_class_ids,
)
from repro.relational import (
    Instance,
    JoinPredicate,
    Relation,
    equijoin,
)


class TestSection33Examples:
    def test_poor_instance_equivalence(self):
        """§3.3's R1/P1: every predicate is equivalent over the instance."""
        r1 = Relation.build("R1", ["A1", "A2"], [(1, 1)])
        p1 = Relation.build("P1", ["B1"], [(1,)])
        instance = Instance(r1, p1)
        goal = JoinPredicate.parse("R1.A1 = P1.B1")
        returned = JoinPredicate.parse("R1.A1 = P1.B1 AND R1.A2 = P1.B1")
        assert instance_equivalent(instance, goal, returned)
        assert instance_equivalent(
            instance, JoinPredicate.empty(), returned
        )

    def test_nullable_predicates_equivalent_to_omega(self, example21):
        e = example21
        nullable = e.theta(("A2", "B1"), ("A2", "B2"), ("A2", "B3"))
        omega = JoinPredicate(e.instance.omega)
        assert instance_equivalent(e.instance, nullable, omega)


class TestEquivalenceSemantics:
    def test_reflexive(self, example21):
        theta = example21.theta(("A1", "B1"))
        assert instance_equivalent(example21.instance, theta, theta)

    def test_matches_join_results(self, example21):
        """Equivalence iff the two equijoins coincide, by definition."""
        e = example21
        predicates = [
            JoinPredicate.empty(),
            e.theta(("A1", "B1")),
            e.theta(("A2", "B3")),
            e.theta(("A1", "B1"), ("A2", "B3")),
            JoinPredicate(e.instance.omega),
        ]
        for first in predicates:
            for second in predicates:
                expected = set(equijoin(e.instance, first)) == set(
                    equijoin(e.instance, second)
                )
                assert (
                    instance_equivalent(e.instance, first, second)
                    == expected
                )

    def test_reuses_provided_index(self, example21, example21_index):
        e = example21
        assert instance_equivalent(
            e.instance,
            e.theta(("A1", "B1")),
            e.theta(("A1", "B1")),
            index=example21_index,
        )

    def test_selected_class_ids(self, example21, example21_index):
        e = example21
        theta = e.theta(("A2", "B3"))
        ids = selected_class_ids(example21_index, theta)
        expected = {
            example21_index.class_of_tuple(t).class_id
            for t in equijoin(e.instance, theta)
        }
        assert ids == expected

    def test_empty_predicate_selects_all_classes(self, example21_index):
        ids = selected_class_ids(example21_index, JoinPredicate.empty())
        assert len(ids) == len(example21_index)
