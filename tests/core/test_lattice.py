"""Lattice of join predicates (§4.2, Figure 4) and goal sampling."""

import random
from itertools import combinations

import pytest

from repro.core import (
    SignatureIndex,
    nodes_with_tuples,
    non_nullable_masks,
    non_nullable_predicates,
    predicates_of_size,
    sample_goal_of_size,
)
from repro.core.lattice import LatticeTooLargeError
from repro.relational import Instance, JoinPredicate, Relation, equijoin


class TestExample21Lattice:
    def test_non_nullable_count_matches_brute_force(
        self, example21, example21_index
    ):
        """Enumerate all 2^6 predicates and check emptiness directly."""
        e = example21
        omega = e.instance.omega
        expected = set()
        for size in range(len(omega) + 1):
            for pairs in combinations(omega, size):
                theta = JoinPredicate(pairs)
                if equijoin(e.instance, theta):
                    expected.add(theta)
        got = set(non_nullable_predicates(example21_index))
        assert got == expected

    def test_non_nullable_size_histogram(self, example21_index):
        """1 node of size 0, 6 of size 1, 12 of size 2, 3 of size 3.

        (Figure 4 draws only 7 of the 12 size-2 nodes; the paper's figure
        omits non-signature pairs such as {(A1,B1),(A1,B2)} that are
        nevertheless non-nullable as subsets of signature triples.)
        """
        sizes = {}
        for mask in non_nullable_masks(example21_index):
            sizes[mask.bit_count()] = sizes.get(mask.bit_count(), 0) + 1
        assert sizes == {0: 1, 1: 6, 2: 12, 3: 3}

    def test_boxed_nodes_are_the_signatures(self, example21_index):
        """Figure 4's boxed nodes = nodes with corresponding tuples."""
        boxed = nodes_with_tuples(example21_index)
        assert len(boxed) == 12
        assert all(count == 1 for count in boxed.values())

    def test_every_signature_subset_is_non_nullable(self, example21_index):
        nodes = non_nullable_masks(example21_index)
        for cls in example21_index:
            assert cls.mask in nodes

    def test_omega_is_nullable_here(self, example21_index):
        assert example21_index.omega_mask not in non_nullable_masks(
            example21_index
        )


class TestPredicatesOfSize:
    def test_size_zero_is_empty_predicate(self, example21_index):
        assert predicates_of_size(example21_index, 0) == [
            JoinPredicate.empty()
        ]

    def test_size_one_count(self, example21_index):
        assert len(predicates_of_size(example21_index, 1)) == 6

    def test_oversize_returns_nothing(self, example21_index):
        assert predicates_of_size(example21_index, 5) == []

    def test_all_returned_are_non_nullable(self, example21, example21_index):
        for size in range(4):
            for theta in predicates_of_size(example21_index, size):
                assert equijoin(example21.instance, theta), (
                    f"{theta} should select at least one tuple"
                )


class TestSampleGoal:
    def test_sample_is_from_pool(self, example21_index):
        rng = random.Random(3)
        for size in range(4):
            goal = sample_goal_of_size(example21_index, size, rng)
            assert goal in predicates_of_size(example21_index, size)

    def test_sample_impossible_size_is_none(self, example21_index):
        rng = random.Random(3)
        assert sample_goal_of_size(example21_index, 6, rng) is None

    def test_sampling_is_seed_deterministic(self, example21_index):
        first = sample_goal_of_size(
            example21_index, 2, random.Random(11)
        )
        second = sample_goal_of_size(
            example21_index, 2, random.Random(11)
        )
        assert first == second


class TestCap:
    def test_lattice_cap_triggers(self):
        """A tuple agreeing everywhere on a wide Ω explodes the power set."""
        left = Relation.build("R", [f"A{i}" for i in range(25)], [(0,) * 25])
        right = Relation.build("P", [f"B{i}" for i in range(2)], [(0, 0)])
        index = SignatureIndex(Instance(left, right), backend="python")
        with pytest.raises(LatticeTooLargeError):
            non_nullable_masks(index, cap=1000)
