"""The plan cache: canonical state keys, the shared-tier codec, and the
two-tier cache's LRU/counter behaviour.

The key properties:

* **answer-order invariance** — two sessions that answered the same
  questions in different orders share one canonical key, and a session
  rehydrated from a snapshot lands on the same key as before the crash.
* **no collisions** — distinct indexes, depths, or labeled states never
  share a key (checked across all six Figure 7 configurations and
  across the packed-word boundary Ω ∈ {63, 64, 65}).
* **exact decode** — a table through the codec compares equal, entry
  for entry and *type* for type, to the planner's original.
* **counter identity** — under the get-before-install protocol,
  ``misses == local_hits + shared_hits + computes``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    InferenceSession,
    Label,
    LookaheadSkylineStrategy,
    PlanCache,
    PlanCacheError,
    SignatureIndex,
    canonical_state_key,
    decode_table,
    encode_table,
    plan_key_for_planner,
    resume_session,
    snapshot_session,
)
from repro.core.state import InferenceState
from repro.data.synthetic import PAPER_CONFIGS, generate_synthetic
from repro.service import instance_fingerprint

from ..conftest import make_random_instance

FP = "f" * 64
OTHER_FP = "e" * 64


def _labeled_after(index, answers):
    """Drive a bare state through ``answers`` (class_id, label) pairs."""
    state = InferenceState(index)
    for class_id, label in answers:
        state.record(class_id, label)
    return state


class TestCanonicalStateKey:
    def test_answer_order_does_not_matter(self):
        forward = [(3, Label.POSITIVE), (7, Label.NEGATIVE), (1, Label.NEGATIVE)]
        assert canonical_state_key(FP, "L2S", forward) == canonical_state_key(
            FP, "L2S", reversed(forward)
        )

    def test_label_objects_and_strings_agree(self):
        assert canonical_state_key(
            FP, "L1S", [(2, Label.POSITIVE), (5, Label.NEGATIVE)]
        ) == canonical_state_key(FP, "L1S", [(2, "+"), (5, "-")])

    def test_strategy_fingerprint_and_state_separate_keys(self):
        base = canonical_state_key(FP, "L2S", [(1, "+")])
        assert canonical_state_key(FP, "L1S", [(1, "+")]) != base
        assert canonical_state_key(OTHER_FP, "L2S", [(1, "+")]) != base
        assert canonical_state_key(FP, "L2S", [(1, "-")]) != base
        assert canonical_state_key(FP, "L2S", [(2, "+")]) != base
        assert canonical_state_key(FP, "L2S", []) != base

    def test_no_collisions_across_fig7_sessions(self):
        """Every (config, step) of an adversarial session over each
        Figure 7 configuration gets its own key."""
        seen: set[str] = set()
        for position, config in enumerate(PAPER_CONFIGS):
            instance = generate_synthetic(config.scaled(16), seed=position)
            index = SignatureIndex(instance, backend="python")
            fingerprint = instance_fingerprint(instance)
            state = InferenceState(index)
            keys = [
                canonical_state_key(
                    fingerprint, "L2S", state.labeled_classes()
                )
            ]
            while state.has_informative():
                class_id = state.informative_class_ids()[0]
                state.record(class_id, Label.NEGATIVE)
                keys.append(
                    canonical_state_key(
                        fingerprint, "L2S", state.labeled_classes()
                    )
                )
            assert len(set(keys)) == len(keys)
            assert not seen.intersection(keys)
            seen.update(keys)
        assert len(seen) > len(PAPER_CONFIGS)

    @pytest.mark.parametrize("left,right", [(7, 9), (8, 8), (5, 13)])
    def test_word_boundary_omegas_permutation_invariant(self, left, right):
        """Ω ∈ {63, 64, 65}: keys are stable under answer permutation
        on either side of the packed-word boundary."""
        rng = random.Random(left * right)
        instance = make_random_instance(
            rng, left_arity=left, right_arity=right, rows=6, values=3
        )
        assert len(instance.omega) in (63, 64, 65)
        index = SignatureIndex(instance, backend="python")
        fingerprint = instance_fingerprint(instance)
        class_ids = InferenceState(index).informative_class_ids()[:4]
        answers = [
            (cid, Label.POSITIVE if i % 2 else Label.NEGATIVE)
            for i, cid in enumerate(class_ids)
        ]
        shuffled = list(answers)
        rng.shuffle(shuffled)
        forward = _labeled_after(index, answers)
        scrambled = _labeled_after(index, shuffled)
        assert canonical_state_key(
            fingerprint, "L2S", forward.labeled_classes()
        ) == canonical_state_key(
            fingerprint, "L2S", scrambled.labeled_classes()
        )

    def test_snapshot_rehydrate_lands_on_the_same_key(self):
        rng = random.Random(11)
        instance = make_random_instance(rng, 3, 3, rows=8, values=3)
        index = SignatureIndex(instance, backend="python")
        strategy = LookaheadSkylineStrategy(depth=2)
        session = InferenceSession(
            instance, strategy, oracle=None, index=index, seed=5
        )
        for _ in range(3):
            if session.is_finished():
                break
            question = session.propose()
            session.answer(question.question_id, Label.NEGATIVE)
        fingerprint = instance_fingerprint(instance)
        before = plan_key_for_planner(
            strategy.planner_for(session.state), fingerprint
        )
        resumed = resume_session(snapshot_session(session), index=index)
        after = plan_key_for_planner(
            resumed.strategy.planner_for(resumed.state), fingerprint
        )
        assert before == after

    def test_planner_key_matches_bare_key(self):
        rng = random.Random(3)
        instance = make_random_instance(rng, 2, 2, rows=6, values=3)
        index = SignatureIndex(instance, backend="python")
        state = InferenceState(index)
        state.record(state.informative_class_ids()[0], Label.NEGATIVE)
        strategy = LookaheadSkylineStrategy(depth=2)
        planner = strategy.planner_for(state)
        assert plan_key_for_planner(planner, FP) == canonical_state_key(
            FP, "L2S", state.labeled_classes()
        )


class TestCodec:
    def test_roundtrip_reproduces_exact_values_and_types(self):
        table = {
            0: (0, 3),
            5: (2, 2),
            9: (math.inf, math.inf),
            123456789: (7, math.inf),
        }
        decoded = decode_table(encode_table(table))
        assert decoded == table
        for original, back in zip(table.values(), decoded.values()):
            for a, b in zip(original, back):
                assert type(a) is type(b), (a, b)

    def test_roundtrip_empty_table(self):
        assert decode_table(encode_table({})) == {}

    def test_real_planner_table_roundtrips(self):
        rng = random.Random(17)
        instance = make_random_instance(rng, 3, 3, rows=8, values=3)
        index = SignatureIndex(instance, backend="python")
        strategy = LookaheadSkylineStrategy(depth=2)
        planner = strategy.planner_for(InferenceState(index))
        table = planner.entropies()
        assert decode_table(encode_table(table)) == table

    def test_truncated_payload_rejected(self):
        with pytest.raises(PlanCacheError, match="truncated"):
            decode_table(b"\x00" * 4)

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_table({1: (2, 3)}))
        payload[:8] = b"NOTAPLAN"
        with pytest.raises(PlanCacheError, match="magic"):
            decode_table(bytes(payload))

    def test_size_mismatch_rejected(self):
        payload = encode_table({1: (2, 3), 2: (4, 5)})
        with pytest.raises(PlanCacheError, match="size mismatch"):
            decode_table(payload[:-8])


class FakeSharedTier:
    """In-memory stand-in for SharedPlanTier (same duck type)."""

    def __init__(self):
        self.payloads: dict[str, bytes] = {}
        self.released: list[str] = []
        self.published: list[str] = []
        self.closed = False

    def get(self, key):
        return self.payloads.get(key)

    def publish(self, key, payload):
        self.payloads[key] = payload
        self.published.append(key)
        return True

    def release(self, key):
        self.released.append(key)

    def stats(self):
        return {"entries": len(self.payloads)}

    def close(self):
        self.closed = True


TABLE = {1: (0, 2), 2: (math.inf, math.inf)}


class TestPlanCache:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(0)

    def test_get_install_get_counter_identity(self):
        cache = PlanCache(8)
        assert cache.get("k") is None  # miss -> caller computes
        cache.install("k", TABLE)
        assert cache.get("k") == TABLE  # local hit
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["misses"] == (
            stats["local_hits"]
            + stats["shared_hits"]
            + stats["computes"]
        )
        assert stats["local_hits"] == 1
        assert stats["computes"] == 1
        assert stats["entries"] == 1
        assert stats["resident_bytes"] == len(encode_table(TABLE))

    def test_lru_evicts_least_recently_used(self):
        cache = PlanCache(2)
        for key in ("a", "b"):
            cache.get(key)
            cache.install(key, TABLE)
        assert cache.get("a") is not None  # refresh "a": "b" is now LRU
        cache.get("c")
        cache.install("c", TABLE)
        assert len(cache) == 2
        assert cache.get("b", probe_shared=False) is None
        assert cache.get("a", probe_shared=False) is not None
        assert cache.stats()["evictions"] == 1

    def test_shared_hit_decodes_and_caches_locally(self):
        shared = FakeSharedTier()
        shared.payloads["k"] = encode_table(TABLE)
        cache = PlanCache(8, shared=shared)
        assert cache.get("k") == TABLE
        stats = cache.stats()
        assert stats["shared_hits"] == 1
        assert stats["computes"] == 0
        # Now resident locally: the next hit never touches the tier.
        shared.payloads.clear()
        assert cache.get("k") == TABLE
        assert cache.stats()["local_hits"] == 1
        assert cache.stats()["shared"] == shared.stats()

    def test_probe_shared_false_skips_the_tier(self):
        shared = FakeSharedTier()
        shared.payloads["k"] = encode_table(TABLE)
        cache = PlanCache(8, shared=shared)
        assert cache.get("k", probe_shared=False) is None
        assert cache.stats()["shared_hits"] == 0

    def test_install_publishes_and_publish_false_does_not(self):
        shared = FakeSharedTier()
        cache = PlanCache(8, shared=shared)
        cache.get("a")
        cache.install("a", TABLE)
        cache.get("b")
        cache.install("b", TABLE, publish=False)
        assert shared.published == ["a"]
        assert cache.stats()["publishes"] == 1

    def test_eviction_releases_the_shared_ref(self):
        shared = FakeSharedTier()
        cache = PlanCache(1, shared=shared)
        cache.get("a")
        cache.install("a", TABLE)
        cache.get("b")
        cache.install("b", TABLE)
        assert shared.released == ["a"]

    def test_corrupt_shared_payload_degrades_to_miss(self):
        shared = FakeSharedTier()
        shared.payloads["k"] = b"garbage"
        cache = PlanCache(8, shared=shared)
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats["decode_errors"] == 1
        assert stats["shared_hits"] == 0

    def test_close_closes_the_tier(self):
        shared = FakeSharedTier()
        cache = PlanCache(8, shared=shared)
        cache.close()
        assert shared.closed
