"""Entropy, skyline and entropy² (§4.4, Figure 5, Algorithm 5).

One deliberate deviation from the paper is asserted here: Figure 5 lists
``u+ = 2`` for the tuple ``(t2, t1')`` whose signature is ``{(A1,B3)}``.
By Lemma 3.3 (and the paper's own Figure 3), labeling it positive makes
*four* tuples certain-positive — the supersets ``(t1,t1')``, ``(t1,t3')``,
``(t2,t3')`` and ``(t3,t2')`` — so ``u+ = 4`` and the entropy is (1, 4),
not (1, 2).  Our tests pin the lemma-faithful values and separately check
the eleven rows where the paper's arithmetic is consistent with its own
lemmas.  (The L1S choice the paper reports is unaffected: the strategy
still picks ``(t2,t1')`` — with corrected arithmetic it is even the unique
best choice.)
"""

import math

import pytest

from repro.core import (
    INFINITE_ENTROPY,
    Label,
    best_skyline_entropy,
    dominates,
    entropy_k_of_class,
    entropy_of_class,
    skyline,
)
from repro.core.state import InferenceState


@pytest.fixture()
def empty_state(example21_index):
    return InferenceState(example21_index)


@pytest.fixture()
def section44_state(example21, example21_index):
    state = InferenceState(example21_index)
    e = example21
    state.record(
        example21_index.class_of_tuple((e.t1, e.u3)).class_id, Label.POSITIVE
    )
    state.record(
        example21_index.class_of_tuple((e.t3, e.u1)).class_id, Label.NEGATIVE
    )
    return state


# Figure 5's eleven lemma-consistent rows; (t2,u1) pinned separately.
FIGURE5_ENTROPIES = {
    ("t1", "u1"): (0, 2),
    ("t1", "u2"): (0, 1),
    ("t1", "u3"): (1, 2),
    ("t2", "u2"): (1, 1),
    ("t2", "u3"): (0, 4),
    ("t3", "u1"): (0, 11),
    ("t3", "u2"): (0, 2),
    ("t3", "u3"): (0, 1),
    ("t4", "u1"): (0, 2),
    ("t4", "u2"): (1, 1),
    ("t4", "u3"): (0, 1),
}


class TestFigure5:
    @pytest.mark.parametrize("names,expected", FIGURE5_ENTROPIES.items())
    def test_entropy_matches_paper(
        self, example21, empty_state, names, expected
    ):
        left, right = names
        t = (getattr(example21, left), getattr(example21, right))
        cls = empty_state.index.class_of_tuple(t)
        assert entropy_of_class(empty_state, cls.class_id) == expected

    def test_paper_erratum_t2_u1(self, example21, empty_state):
        """Lemma-faithful value for the row the paper miscounts (see the
        module docstring)."""
        e = example21
        cls = empty_state.index.class_of_tuple((e.t2, e.u1))
        assert entropy_of_class(empty_state, cls.class_id) == (1, 4)

    def test_l1s_choice_is_t2_u1(self, example21, empty_state):
        """With corrected arithmetic the max-min entropy (1,4) is unique
        and belongs to (t2,u1) — within the paper's reported tie set
        {(t1,u3), (t2,u1)}."""
        entropies = {
            cls.class_id: entropy_of_class(empty_state, cls.class_id)
            for cls in empty_state.index
        }
        best = best_skyline_entropy(entropies.values())
        winners = {
            empty_state.index[cid].representative
            for cid, ent in entropies.items()
            if ent == best
        }
        e = example21
        assert winners == {(e.t2, e.u1)}
        assert best == (1, 4)


class TestDominationAndSkyline:
    def test_dominates_examples_from_paper(self):
        """§4.4: (1,2) dominates (1,1) and (0,2) but not (2,2) nor (0,3)."""
        assert dominates((1, 2), (1, 1))
        assert dominates((1, 2), (0, 2))
        assert not dominates((1, 2), (2, 2))
        assert not dominates((1, 2), (0, 3))

    def test_dominates_is_reflexive(self):
        assert dominates((3, 5), (3, 5))

    def test_skyline_of_figure5_corrected(self, empty_state):
        """With the erratum fixed the skyline is {(1,4), (0,11)} — the
        paper prints {(1,2), (0,11)}."""
        entropies = {
            entropy_of_class(empty_state, cls.class_id)
            for cls in empty_state.index
        }
        assert skyline(entropies) == {(1, 4), (0, 11)}

    def test_skyline_drops_dominated(self):
        assert skyline([(1, 2), (1, 1), (0, 2)]) == {(1, 2)}

    def test_skyline_keeps_incomparable(self):
        assert skyline([(1, 2), (0, 11)]) == {(1, 2), (0, 11)}

    def test_best_skyline_entropy_max_min(self):
        assert best_skyline_entropy([(1, 2), (0, 11)]) == (1, 2)

    def test_best_skyline_is_lexicographic_max(self):
        """The documented equivalence: skyline-best == max by (min, max)."""
        entropies = [(0, 5), (2, 3), (2, 7), (1, 9)]
        assert best_skyline_entropy(entropies) == max(entropies)

    def test_best_skyline_on_empty_raises(self):
        with pytest.raises(ValueError):
            best_skyline_entropy([])

    def test_infinite_entropy_wins(self):
        assert best_skyline_entropy([(3, 3), INFINITE_ENTROPY]) == (
            INFINITE_ENTROPY
        )


class TestEntropy2WalkThrough:
    """The complete §4.4 worked example of Algorithm 5."""

    def test_entropy2_of_t2_u1_is_3_3(self, example21, section44_state):
        e = example21
        cid = section44_state.index.class_of_tuple((e.t2, e.u1)).class_id
        assert entropy_k_of_class(section44_state, cid, 2) == (3, 3)

    def test_positive_branch_is_infinite(self, example21, section44_state):
        """Labeling (t2,u1) positive leaves nothing informative, so the
        positive branch evaluates to (∞,∞)."""
        e = example21
        cid = section44_state.index.class_of_tuple((e.t2, e.u1)).class_id
        simulated = section44_state.copy()
        simulated.record(cid, Label.POSITIVE)
        assert simulated.informative_class_ids() == []

    def test_entropy1_equals_entropy_of_class(self, section44_state):
        for cid in section44_state.informative_class_ids():
            assert entropy_k_of_class(section44_state, cid, 1) == (
                entropy_of_class(section44_state, cid)
            )

    def test_depth_zero_rejected(self, section44_state):
        with pytest.raises(ValueError):
            entropy_k_of_class(section44_state, 0, 0)

    def test_entropy3_runs_and_is_finite_or_infinite_pair(
        self, section44_state
    ):
        for cid in section44_state.informative_class_ids():
            low, high = entropy_k_of_class(section44_state, cid, 3)
            assert low <= high
            assert low >= 0 or math.isinf(low)


class TestEntropyInvariants:
    def test_entropy_min_le_max(self, empty_state):
        for cls in empty_state.index:
            low, high = entropy_of_class(empty_state, cls.class_id)
            assert 0 <= low <= high

    def test_entropy_bounded_by_remaining_tuples(self, empty_state):
        total = empty_state.index.total_weight
        for cls in empty_state.index:
            _, high = entropy_of_class(empty_state, cls.class_id)
            assert high <= total - 1
