"""JSON serialisation round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Example,
    Label,
    PerfectOracle,
    Sample,
    TopDownStrategy,
    dumps,
    loads,
    predicate_from_dict,
    predicate_to_dict,
    result_from_dict,
    result_to_dict,
    sample_from_dict,
    sample_to_dict,
    run_inference,
)
from repro.relational import JoinPredicate


class TestPredicateRoundTrip:
    def test_simple(self, example21):
        theta = example21.theta(("A1", "B1"), ("A2", "B3"))
        assert predicate_from_dict(predicate_to_dict(theta)) == theta

    def test_empty(self):
        empty = JoinPredicate.empty()
        assert predicate_from_dict(predicate_to_dict(empty)) == empty

    def test_pairs_sorted_deterministically(self, example21):
        theta = example21.theta(("A2", "B3"), ("A1", "B1"))
        payload = predicate_to_dict(theta)
        assert payload["pairs"] == sorted(payload["pairs"])


class TestSampleRoundTrip:
    def test_mixed_labels(self, example21):
        e = example21
        sample = Sample(
            [
                Example((e.t2, e.u2), Label.POSITIVE),
                Example((e.t3, e.u2), Label.NEGATIVE),
            ]
        )
        assert sample_from_dict(sample_to_dict(sample)) == sample

    def test_empty_sample(self):
        assert sample_from_dict(sample_to_dict(Sample())) == Sample()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 5), st.integers(0, 5)),
                st.tuples(st.integers(0, 5)),
                st.booleans(),
            ),
            max_size=8,
        )
    )
    def test_random_samples(self, raw):
        sample = Sample()
        for left, right, positive in raw:
            label = Label.POSITIVE if positive else Label.NEGATIVE
            if sample.label_of((left, right)) not in (None, label):
                continue
            sample.label_tuple((left, right), label)
        assert sample_from_dict(sample_to_dict(sample)) == sample


class TestResultRoundTrip:
    def test_full_transcript(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            TopDownStrategy(),
            PerfectOracle(e.instance, e.theta(("A2", "B3"))),
            seed=0,
        )
        restored = result_from_dict(result_to_dict(result))
        assert restored.predicate == result.predicate
        assert restored.interactions == result.interactions
        assert restored.history == result.history
        assert restored.halted_early == result.halted_early


class TestDumpsLoads:
    def test_predicate(self, example21):
        theta = example21.theta(("A1", "B2"))
        assert loads(dumps(theta)) == theta

    def test_sample(self, example21):
        e = example21
        sample = Sample([Example((e.t1, e.u1), Label.NEGATIVE)])
        assert loads(dumps(sample)) == sample

    def test_result(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            TopDownStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
            seed=0,
        )
        restored = loads(dumps(result))
        assert restored.predicate == result.predicate

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            dumps(42)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            loads('{"kind": "mystery"}')
