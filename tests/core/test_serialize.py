"""JSON serialisation round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Example,
    Label,
    PerfectOracle,
    Sample,
    TopDownStrategy,
    dumps,
    loads,
    predicate_from_dict,
    predicate_to_dict,
    result_from_dict,
    result_to_dict,
    run_inference,
    sample_from_dict,
    sample_to_dict,
)
from repro.relational import JoinPredicate


class TestPredicateRoundTrip:
    def test_simple(self, example21):
        theta = example21.theta(("A1", "B1"), ("A2", "B3"))
        assert predicate_from_dict(predicate_to_dict(theta)) == theta

    def test_empty(self):
        empty = JoinPredicate.empty()
        assert predicate_from_dict(predicate_to_dict(empty)) == empty

    def test_pairs_sorted_deterministically(self, example21):
        theta = example21.theta(("A2", "B3"), ("A1", "B1"))
        payload = predicate_to_dict(theta)
        assert payload["pairs"] == sorted(payload["pairs"])


class TestSampleRoundTrip:
    def test_mixed_labels(self, example21):
        e = example21
        sample = Sample(
            [
                Example((e.t2, e.u2), Label.POSITIVE),
                Example((e.t3, e.u2), Label.NEGATIVE),
            ]
        )
        assert sample_from_dict(sample_to_dict(sample)) == sample

    def test_empty_sample(self):
        assert sample_from_dict(sample_to_dict(Sample())) == Sample()

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 5), st.integers(0, 5)),
                st.tuples(st.integers(0, 5)),
                st.booleans(),
            ),
            max_size=8,
        )
    )
    def test_random_samples(self, raw):
        sample = Sample()
        for left, right, positive in raw:
            label = Label.POSITIVE if positive else Label.NEGATIVE
            if sample.label_of((left, right)) not in (None, label):
                continue
            sample.label_tuple((left, right), label)
        assert sample_from_dict(sample_to_dict(sample)) == sample


class TestResultRoundTrip:
    def test_full_transcript(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            TopDownStrategy(),
            PerfectOracle(e.instance, e.theta(("A2", "B3"))),
            seed=0,
        )
        restored = result_from_dict(result_to_dict(result))
        assert restored.predicate == result.predicate
        assert restored.interactions == result.interactions
        assert restored.history == result.history
        assert restored.halted_early == result.halted_early


class TestDumpsLoads:
    def test_predicate(self, example21):
        theta = example21.theta(("A1", "B2"))
        assert loads(dumps(theta)) == theta

    def test_sample(self, example21):
        e = example21
        sample = Sample([Example((e.t1, e.u1), Label.NEGATIVE)])
        assert loads(dumps(sample)) == sample

    def test_result(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            TopDownStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
            seed=0,
        )
        restored = loads(dumps(result))
        assert restored.predicate == result.predicate

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            dumps(42)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            loads('{"kind": "mystery"}')


class TestStrictLabels:
    """Unknown label strings raise instead of coercing to negative."""

    @pytest.mark.parametrize(
        "bad", ["positive", "negative", "plus", "P", "", " +", "+-", "yes"]
    )
    def test_label_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            Label.parse(bad)

    def test_label_parse_accepts_canonical(self):
        assert Label.parse("+") is Label.POSITIVE
        assert Label.parse("-") is Label.NEGATIVE

    def test_sample_from_dict_rejects_unknown_label(self):
        payload = {
            "examples": [
                {"left": [1], "right": [2], "label": "positive"}
            ]
        }
        with pytest.raises(ValueError):
            sample_from_dict(payload)

    def test_result_from_dict_rejects_unknown_label(self, example21):
        e = example21
        result = run_inference(
            e.instance,
            TopDownStrategy(),
            PerfectOracle(e.instance, e.theta(("A1", "B1"))),
            seed=0,
        )
        payload = result_to_dict(result)
        payload["history"][0]["label"] = "NEG"
        with pytest.raises(ValueError):
            result_from_dict(payload)


class TestInstanceRoundTrip:
    def test_example21(self, example21):
        from repro.core import instance_from_dict, instance_to_dict

        instance = example21.instance
        again = instance_from_dict(instance_to_dict(instance))
        assert again == instance
        assert again.left.rows == instance.left.rows
        assert again.right.rows == instance.right.rows

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(
                    st.integers(-5, 5),
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.booleans(),
                    st.none(),
                    st.text(max_size=4),
                ),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_non_string_cells_survive(self, rows):
        """int/float/bool/None cells keep value AND type (1 != "1")."""
        from repro.core import relation_from_dict, relation_to_dict
        from repro.relational import Relation

        relation = Relation.build("R", ["A1", "A2"], rows)
        again = relation_from_dict(
            json.loads(json.dumps(relation_to_dict(relation)))
        )
        assert again == relation
        assert [
            [type(v) for v in row] for row in again.rows
        ] == [[type(v) for v in row] for row in relation.rows]


class TestSnapshotRoundTrip:
    def _mid_session(self, example21, labels):
        from repro.core import InferenceSession

        e = example21
        session = InferenceSession(
            e.instance, TopDownStrategy(), seed=4
        )
        for label in labels:
            question = session.propose()
            if question is None:
                break
            session.answer(question.question_id, label)
        return session

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 8))
    def test_dumps_loads_identity(self, example21, cut):
        from repro.core import SessionSnapshot, snapshot_session

        e = example21
        oracle = PerfectOracle(
            e.instance, e.theta(("A1", "B1"), ("A2", "B3"))
        )
        session = self._mid_session(example21, [])
        for _ in range(cut):
            question = session.propose()
            if question is None:
                break
            session.answer(
                question.question_id, oracle.label(question.tuple_pair)
            )
        snapshot = snapshot_session(session)
        again = loads(dumps(snapshot))
        assert isinstance(again, SessionSnapshot)
        assert again == snapshot

    def test_resume_continues_identically(self, example21):
        from repro.core import (
            InferenceSession,
            resume_session,
            snapshot_session,
        )

        e = example21
        goal = e.theta(("A1", "B1"), ("A2", "B3"))
        oracle = PerfectOracle(e.instance, goal)
        reference = run_inference(
            e.instance, TopDownStrategy(), oracle, seed=11
        )
        for cut in range(reference.interactions):
            session = InferenceSession(
                e.instance, TopDownStrategy(), seed=11
            )
            for _ in range(cut):
                question = session.propose()
                session.answer(
                    question.question_id,
                    oracle.label(question.tuple_pair),
                )
            resumed = resume_session(
                loads(dumps(snapshot_session(session)))
            )
            while (question := resumed.propose()) is not None:
                resumed.answer(
                    question.question_id,
                    oracle.label(question.tuple_pair),
                )
            assert resumed.current_predicate() == reference.predicate
            assert (
                resumed.state.interaction_count == reference.interactions
            )

    def test_resume_rejects_wrong_instance(self, example21):
        from repro.core import (
            InferenceSession,
            SnapshotError,
            resume_session,
            snapshot_session,
            snapshot_to_dict,
        )
        from repro.relational import Instance, Relation

        e = example21
        oracle = PerfectOracle(e.instance, e.theta(("A1", "B1")))
        session = InferenceSession(e.instance, TopDownStrategy(), seed=0)
        question = session.propose()
        session.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
        payload = snapshot_to_dict(snapshot_session(session))
        # Point the labeled class ids at a structurally different instance.
        other = Instance(
            Relation.build("R0", ["A1", "A2"], [(9, 9)]),
            Relation.build("P0", ["B1", "B2", "B3"], [(9, 9, 9)]),
        )
        with pytest.raises((SnapshotError, ValueError, IndexError)):
            resume_session(payload, instance=other)

    def test_snapshot_rejects_custom_halt_condition(self, example21):
        from repro.core import (
            HaltCondition,
            InferenceSession,
            SnapshotError,
            snapshot_session,
        )

        class Never(HaltCondition):
            def should_halt(self, session):
                return False

        session = InferenceSession(
            example21.instance,
            TopDownStrategy(),
            halt_condition=Never(),
            seed=0,
        )
        with pytest.raises(SnapshotError):
            snapshot_session(session)

    def test_snapshot_labels_are_strict(self, example21):
        from repro.core import snapshot_from_dict, snapshot_session, snapshot_to_dict
        from repro.core import InferenceSession

        e = example21
        oracle = PerfectOracle(e.instance, e.theta(("A1", "B1")))
        session = InferenceSession(e.instance, TopDownStrategy(), seed=0)
        question = session.propose()
        session.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
        payload = snapshot_to_dict(snapshot_session(session))
        payload["labeled"][0][1] = "positive"
        with pytest.raises(ValueError):
            snapshot_from_dict(payload)


class TestUnseededSessions:
    def test_snapshot_requires_a_seed(self, example21):
        from repro.core import (
            InferenceSession,
            SnapshotError,
            snapshot_session,
        )

        session = InferenceSession(
            example21.instance, TopDownStrategy(), seed=None
        )
        with pytest.raises(SnapshotError, match="unseeded"):
            snapshot_session(session)


class TestSnapshotResumeEdges:
    """Edge cases the durable session store leans on: a checkpoint may
    be written before the first answer, after the final
    (equivalence-reached) answer, and one stored payload may be
    resumed any number of times."""

    def _goal_oracle(self, example21):
        return PerfectOracle(
            example21.instance,
            example21.theta(("A1", "B1"), ("A2", "B3")),
        )

    def test_resume_with_zero_recorded_answers(self, example21):
        from repro.core import resume_session, snapshot_payload
        from repro.core import InferenceSession

        e = example21
        oracle = self._goal_oracle(example21)
        fresh = InferenceSession(e.instance, TopDownStrategy(), seed=9)
        payload = snapshot_payload(fresh)
        assert payload["labeled"] == []

        resumed = resume_session(payload)
        assert resumed.state.interaction_count == 0
        reference = run_inference(
            e.instance, TopDownStrategy(), oracle, seed=9
        )
        asked = []
        while not resumed.is_finished():
            question = resumed.propose()
            asked.append(question.class_id)
            resumed.answer(
                question.question_id, oracle.label(question.tuple_pair)
            )
        assert len(asked) == reference.interactions
        assert resumed.current_predicate() == reference.predicate

    def test_resume_after_final_answer(self, example21):
        from repro.core import resume_session, snapshot_payload
        from repro.core import InferenceSession

        e = example21
        oracle = self._goal_oracle(example21)
        session = InferenceSession(e.instance, TopDownStrategy(), seed=3)
        while not session.is_finished():
            question = session.propose()
            session.answer(
                question.question_id, oracle.label(question.tuple_pair)
            )
        payload = snapshot_payload(session)
        assert len(payload["labeled"]) == session.state.interaction_count

        resumed = resume_session(payload)
        assert resumed.is_finished()
        assert resumed.propose() is None
        assert resumed.current_predicate() == session.current_predicate()
        assert (
            resumed.state.labeled_classes()
            == session.state.labeled_classes()
        )

    def test_double_resume_of_one_snapshot(self, example21):
        from repro.core import resume_session, snapshot_payload
        from repro.core import InferenceSession

        e = example21
        oracle = self._goal_oracle(example21)
        session = InferenceSession(e.instance, TopDownStrategy(), seed=6)
        question = session.propose()
        session.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
        payload = snapshot_payload(session)

        first = resume_session(payload)
        second = resume_session(payload)
        assert first is not second
        assert first.state is not second.state
        # driving one resumed copy must not perturb the other
        question = first.propose()
        first.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
        assert second.state.interaction_count == 1
        for resumed in (first, second):
            while not resumed.is_finished():
                question = resumed.propose()
                resumed.answer(
                    question.question_id,
                    oracle.label(question.tuple_pair),
                )
        assert (
            first.current_predicate() == second.current_predicate()
        )
        assert (
            first.state.labeled_classes()
            == second.state.labeled_classes()
        )
