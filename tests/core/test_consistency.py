"""Consistency checking (§3.1) — Example 3.1 plus brute-force cross-checks."""

import random

import pytest

from repro.core import (
    Label,
    Sample,
    consistent_predicate,
    is_consistent,
    is_predicate_consistent_with,
)
from repro.core.naive import consistent_set
from repro.relational import JoinPredicate

from ..conftest import make_random_instance


@pytest.fixture()
def sample_s0(example21):
    """Example 3.1's consistent sample S0."""
    e = example21
    sample = Sample()
    sample.label_tuple((e.t2, e.u2), Label.POSITIVE)
    sample.label_tuple((e.t4, e.u1), Label.POSITIVE)
    sample.label_tuple((e.t3, e.u2), Label.NEGATIVE)
    return sample


@pytest.fixture()
def sample_s0_prime(example21):
    """Example 3.1's inconsistent sample S0'."""
    e = example21
    sample = Sample()
    sample.label_tuple((e.t1, e.u2), Label.POSITIVE)
    sample.label_tuple((e.t1, e.u3), Label.POSITIVE)
    sample.label_tuple((e.t3, e.u1), Label.NEGATIVE)
    return sample


class TestExample31:
    def test_s0_is_consistent(self, example21, sample_s0):
        assert is_consistent(example21.instance, sample_s0)

    def test_s0_most_specific_predicate(self, example21, sample_s0):
        """θ0 = {(A1,B1),(A2,B3)} per Example 3.1."""
        theta0 = consistent_predicate(example21.instance, sample_s0)
        assert theta0 == example21.theta(("A1", "B1"), ("A2", "B3"))

    def test_theta0_prime_also_consistent_but_not_most_specific(
        self, example21, sample_s0
    ):
        """{(A1,B1)} is consistent with S0 but more general than θ0."""
        theta0_prime = example21.theta(("A1", "B1"))
        assert is_predicate_consistent_with(
            example21.instance, theta0_prime, sample_s0
        )
        theta0 = consistent_predicate(example21.instance, sample_s0)
        assert theta0_prime < theta0

    def test_s0_prime_is_inconsistent(self, example21, sample_s0_prime):
        assert not is_consistent(example21.instance, sample_s0_prime)
        assert consistent_predicate(
            example21.instance, sample_s0_prime
        ) is None


class TestBasicCases:
    def test_empty_sample_is_consistent(self, example21):
        assert is_consistent(example21.instance, Sample())

    def test_empty_sample_predicate_is_omega(self, example21):
        instance = example21.instance
        assert consistent_predicate(instance, Sample()) == JoinPredicate(
            instance.omega
        )

    def test_all_negative_sample_returns_omega(self, example21):
        """§3.3: when the user rejects everything we return Ω."""
        e = example21
        sample = Sample()
        for t in e.instance.cartesian_product():
            sample.label_tuple(t, Label.NEGATIVE)
        theta = consistent_predicate(e.instance, sample)
        assert theta == JoinPredicate(e.instance.omega)

    def test_single_positive_gives_its_signature(self, example21):
        e = example21
        sample = Sample()
        sample.label_tuple((e.t2, e.u1), Label.POSITIVE)
        assert consistent_predicate(e.instance, sample) == e.theta(
            ("A1", "B3")
        )

    def test_positive_and_negative_same_signature_is_inconsistent(
        self, example21
    ):
        """Two tuples with equal T cannot be labeled differently."""
        e = example21
        sample = Sample()
        sample.label_tuple((e.t3, e.u1), Label.POSITIVE)  # T = ∅ selects all
        sample.label_tuple((e.t2, e.u1), Label.NEGATIVE)
        assert not is_consistent(e.instance, sample)

    def test_section33_poor_instance(self):
        """§3.3's single-tuple instance: T(S+) = {(A1,B1),(A2,B1)}."""
        from repro.relational import Instance, Relation

        r1 = Relation.build("R1", ["A1", "A2"], [(1, 1)])
        p1 = Relation.build("P1", ["B1"], [(1,)])
        instance = Instance(r1, p1)
        sample = Sample()
        sample.label_tuple(((1, 1), (1,)), Label.POSITIVE)
        theta = consistent_predicate(instance, sample)
        assert theta == JoinPredicate(instance.omega)  # both pairs


class TestAgainstBruteForce:
    """The PTIME check must agree with explicit C(S) enumeration."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_samples(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=4, values=3
        )
        tuples = list(instance.cartesian_product())
        for _ in range(8):
            sample = Sample()
            for t in rng.sample(tuples, k=min(4, len(tuples))):
                label = rng.choice([Label.POSITIVE, Label.NEGATIVE])
                if not sample.is_labeled(t):
                    sample.label_tuple(t, label)
            fast = is_consistent(instance, sample)
            slow = bool(consistent_set(instance, sample))
            assert fast == slow

    @pytest.mark.parametrize("seed", range(4))
    def test_returned_predicate_is_in_consistent_set(self, seed):
        rng = random.Random(100 + seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=2, rows=4, values=2
        )
        tuples = list(instance.cartesian_product())
        sample = Sample()
        for t in rng.sample(tuples, k=3):
            sample.label_tuple(t, rng.choice([Label.POSITIVE, Label.NEGATIVE]))
        theta = consistent_predicate(instance, sample)
        candidates = consistent_set(instance, sample)
        if theta is None:
            assert candidates == []
        else:
            assert theta in candidates
            # T(S+) is the ⊆-maximal element of C(S).
            assert all(other <= theta for other in candidates)
