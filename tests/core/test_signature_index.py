"""Signature index: construction parity, counts, maximality, join ratio."""

import random

import pytest

from repro.core import SignatureIndex, most_specific_predicate
from repro.relational import Instance, Relation

from ..conftest import make_random_instance


class TestExample21Index:
    def test_twelve_distinct_classes(self, example21_index):
        """Example 2.1: every tuple has a unique signature."""
        assert len(example21_index) == 12

    def test_counts_all_one(self, example21_index):
        assert all(cls.count == 1 for cls in example21_index)

    def test_total_weight_is_product_size(self, example21, example21_index):
        assert example21_index.total_weight == (
            example21.instance.cartesian_size
        )

    def test_join_ratio_is_two(self, example21_index):
        """§5.3: (0 + 1 + 7·2 + 3·3) / 12 = 2."""
        assert example21_index.join_ratio() == pytest.approx(2.0)

    def test_size_histogram(self, example21_index):
        """1 signature of size 0, 1 of size 1, 7 of size 2, 3 of size 3."""
        sizes = sorted(cls.size for cls in example21_index)
        assert sizes == [0, 1, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3]

    def test_maximal_classes(self, example21, example21_index):
        """⊆-maximal signatures: the three triples of Figure 4 plus the
        four size-2 signatures not contained in any triple."""
        maximal = {
            example21_index[class_id].representative
            for class_id in example21_index.maximal_class_ids
        }
        e = example21
        assert maximal == {
            # the three boxed triples of Figure 4
            (e.t1, e.u1),
            (e.t2, e.u3),
            (e.t4, e.u1),
            # size-2 signatures with no superset signature
            (e.t1, e.u2),  # {(A1,B1),(A2,B2)}
            (e.t3, e.u2),  # {(A1,B3),(A2,B3)}
            (e.t3, e.u3),  # {(A1,B1),(A2,B1)}
            (e.t4, e.u3),  # {(A2,B2),(A2,B3)}
        }

    def test_triples_are_maximal(self, example21, example21_index):
        e = example21
        maximal = example21_index.maximal_class_ids
        for t in [(e.t1, e.u1), (e.t2, e.u3), (e.t4, e.u1)]:
            assert example21_index.class_of_tuple(t).class_id in maximal

    def test_subset_signatures_are_not_maximal(
        self, example21, example21_index
    ):
        e = example21
        maximal = example21_index.maximal_class_ids
        for t in [(e.t3, e.u1), (e.t2, e.u1), (e.t1, e.u3)]:
            assert example21_index.class_of_tuple(t).class_id not in maximal

    def test_classes_sorted_by_size_then_mask(self, example21_index):
        keys = [(cls.size, cls.mask) for cls in example21_index]
        assert keys == sorted(keys)

    def test_class_of_tuple_round_trip(self, example21, example21_index):
        e = example21
        for t in e.instance.cartesian_product():
            cls = example21_index.class_of_tuple(t)
            assert example21_index.predicate_of(cls.class_id) == (
                most_specific_predicate(e.instance, t)
            )

    def test_class_of_unknown_tuple_raises(self, example21_index):
        with pytest.raises(KeyError):
            example21_index.class_of_tuple((("zz",), ("zz", "zz", "zz")))


class TestBackendParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_numpy_equals_python(self, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng,
            left_arity=rng.randrange(1, 4),
            right_arity=rng.randrange(1, 4),
            rows=rng.randrange(1, 15),
            values=rng.randrange(1, 6),
        )
        py = SignatureIndex(instance, backend="python")
        np_ = SignatureIndex(instance, backend="numpy")
        assert [(c.mask, c.count) for c in py] == [
            (c.mask, c.count) for c in np_
        ]
        assert py.maximal_class_ids == np_.maximal_class_ids

    def test_numpy_representatives_are_canonical_first(self, example21):
        py = SignatureIndex(example21.instance, backend="python")
        np_ = SignatureIndex(example21.instance, backend="numpy")
        assert [c.representative for c in py] == [
            c.representative for c in np_
        ]

    def test_wide_omega_beyond_one_word(self):
        """Ω larger than 63 bits exercises the multi-word packing."""
        rng = random.Random(7)
        left = Relation.build(
            "R",
            [f"A{i}" for i in range(9)],
            [tuple(rng.randrange(3) for _ in range(9)) for _ in range(6)],
        )
        right = Relation.build(
            "P",
            [f"B{j}" for j in range(8)],
            [tuple(rng.randrange(3) for _ in range(8)) for _ in range(6)],
        )
        instance = Instance(left, right)
        assert len(instance.omega) == 72
        py = SignatureIndex(instance, backend="python")
        np_ = SignatureIndex(instance, backend="numpy")
        assert [(c.mask, c.count) for c in py] == [
            (c.mask, c.count) for c in np_
        ]

    def test_invalid_backend_rejected(self, example21):
        with pytest.raises(ValueError):
            SignatureIndex(example21.instance, backend="gpu")

    def test_auto_backend_small_and_large(self, example21):
        auto = SignatureIndex(example21.instance, backend="auto")
        assert len(auto) == 12


class TestDuplicateHandling:
    def test_duplicate_value_rows_group(self):
        left = Relation.build("R", ["A"], [(1,), (2,)])
        right = Relation.build("P", ["B"], [(1,), (3,)])
        index = SignatureIndex(Instance(left, right), backend="python")
        # Signatures: {(A,B)} for (1,1); ∅ for the other three tuples.
        masks = {cls.mask: cls.count for cls in index}
        assert masks == {0: 3, 1: 1}

    def test_representative_is_first_in_canonical_order(self):
        left = Relation.build("R", ["A"], [(1,), (2,)])
        right = Relation.build("P", ["B"], [(4,), (5,)])
        index = SignatureIndex(Instance(left, right), backend="python")
        assert len(index) == 1
        assert index[0].representative == ((1,), (4,))

    def test_empty_instance(self):
        instance = Instance(
            Relation.build("R", ["A"]), Relation.build("P", ["B"])
        )
        index = SignatureIndex(instance, backend="python")
        assert len(index) == 0
        assert index.join_ratio() == 0.0
        numpy_index = SignatureIndex(instance, backend="numpy")
        assert len(numpy_index) == 0


class TestJoinRatio:
    def test_all_agree_instance(self):
        """One tuple agreeing on the single pair: ratio 1... with both
        signatures present ratio is (0 + 1)/2."""
        left = Relation.build("R", ["A"], [(1,), (2,)])
        right = Relation.build("P", ["B"], [(1,)])
        index = SignatureIndex(Instance(left, right), backend="python")
        assert index.join_ratio() == pytest.approx(0.5)

    def test_no_agreement_instance(self):
        left = Relation.build("R", ["A"], [(1,)])
        right = Relation.build("P", ["B"], [(2,)])
        index = SignatureIndex(Instance(left, right), backend="python")
        assert index.join_ratio() == 0.0
