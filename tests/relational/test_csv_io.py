"""CSV import/export tests."""

import pytest

from repro.relational import Relation
from repro.relational.csv_io import read_csv, write_csv


class TestRoundTrip:
    def test_string_round_trip(self, tmp_path):
        relation = Relation.build(
            "Cities", ["name", "country"], [("Lille", "FR"), ("NYC", "US")]
        )
        path = tmp_path / "cities.csv"
        write_csv(relation, path)
        assert read_csv(path, "Cities") == relation

    def test_relation_name_defaults_to_stem(self, tmp_path):
        relation = Relation.build("Whatever", ["a"], [("x",)])
        path = tmp_path / "renamed.csv"
        write_csv(relation, path)
        assert read_csv(path).name == "renamed"

    def test_numeric_round_trip_requires_type_inference(self, tmp_path):
        relation = Relation.build("Nums", ["a", "b"], [(1, 2.5), (3, 4.5)])
        path = tmp_path / "nums.csv"
        write_csv(relation, path)
        as_strings = read_csv(path, "Nums")
        assert as_strings.rows == (("1", "2.5"), ("3", "4.5"))
        typed = read_csv(path, "Nums", infer_types=True)
        assert typed == relation

    def test_mixed_column_stays_string(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text("a\n1\nx\n")
        relation = read_csv(path, "Mixed", infer_types=True)
        assert relation.rows == (("1",), ("x",))

    def test_integer_column_prefers_int_over_float(self, tmp_path):
        path = tmp_path / "ints.csv"
        path.write_text("a\n1\n2\n")
        relation = read_csv(path, "Ints", infer_types=True)
        assert relation.rows == ((1,), (2,))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        relation = read_csv(path, "HeaderOnly")
        assert len(relation) == 0
        assert relation.arity == 2

    def test_duplicate_rows_collapse_on_read(self, tmp_path):
        path = tmp_path / "dups.csv"
        path.write_text("a\nx\nx\n")
        assert len(read_csv(path, "Dups")) == 1
