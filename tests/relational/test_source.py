"""Behavioural tests for the pluggable signature sources.

The bit-for-bit build parity lives in
``tests/properties/test_index_build.py``; here we pin the source-level
contracts: streaming block iteration, de-duplication, schema discovery,
error handling, and the SQL helpers behind the push-down.
"""

from __future__ import annotations

import pytest

from repro.relational import (
    CsvSource,
    Instance,
    InstanceSource,
    Relation,
    SignatureSource,
    SqliteSource,
    as_signature_source,
    iter_csv_rows,
)
from repro.relational import sqlite_backend


LEFT_CSV = "A1,A2\n1,2\n3,4\n1,2\n5,6\n"  # duplicate (1,2) row
RIGHT_CSV = "B1\n1\n3\n"


def csv_source() -> CsvSource:
    return CsvSource.from_text(LEFT_CSV, RIGHT_CSV, "R", "P")


class TestCsvSource:
    def test_left_blocks_stream_deduplicated(self):
        blocks = list(csv_source().iter_left_blocks(2))
        assert blocks == [
            (0, (("1", "2"), ("3", "4"))),
            (2, (("5", "6"),)),
        ]

    def test_single_block_when_unbounded(self):
        blocks = list(csv_source().iter_left_blocks(None))
        assert len(blocks) == 1
        start, rows = blocks[0]
        assert start == 0 and len(rows) == 3

    def test_schemas_and_rows(self):
        source = csv_source()
        assert [a.name for a in source.left_schema] == ["A1", "A2"]
        assert [a.name for a in source.right_schema] == ["B1"]
        assert source.right_rows() == (("1",), ("3",))
        assert source.left_count() is None  # unknown until streamed

    def test_instance_matches_streamed_rows(self):
        source = csv_source()
        instance = source.instance()
        assert instance.left.rows == (("1", "2"), ("3", "4"), ("5", "6"))
        assert source.instance() is instance  # cached

    def test_drained_stream_feeds_instance_without_reparse(self):
        opens = {"count": 0}
        source = csv_source()
        open_left = source._open_left

        def counting_open():
            opens["count"] += 1
            return open_left()

        source._open_left = counting_open
        list(source.iter_left_blocks(2))  # drain once
        instance = source.instance()
        blocks = list(source.iter_left_blocks(1))
        assert opens["count"] == 1  # stream, instance and re-iteration share it
        assert instance.left.rows == (("1", "2"), ("3", "4"), ("5", "6"))
        assert [start for start, _ in blocks] == [0, 1, 2]

    def test_paths_roundtrip(self, tmp_path):
        left = tmp_path / "R.csv"
        right = tmp_path / "P.csv"
        left.write_text(LEFT_CSV)
        right.write_text(RIGHT_CSV)
        source = CsvSource(left, right)
        assert source.left_schema.name == "R"
        assert source.instance().right.rows == (("1",), ("3",))

    def test_ragged_row_raises_with_line_number(self):
        source = CsvSource.from_text(
            "A1,A2\n1,2\n3\n", RIGHT_CSV, "R", "P"
        )
        with pytest.raises(ValueError, match="line 3"):
            list(source.iter_left_blocks(10))

    def test_empty_csv_rejected(self):
        source = CsvSource.from_text("", RIGHT_CSV, "R", "P")
        with pytest.raises(ValueError, match="header"):
            source.left_schema

    def test_describe(self):
        description = csv_source().describe()
        assert description["kind"] == "CsvSource"
        assert description["left"] == "R"


class TestIterCsvRows:
    def test_header_then_rows_blank_lines_skipped(self):
        rows = list(iter_csv_rows(iter(["A,B\n", "\n", "1,2\n"])))
        assert rows == [("A", "B"), ("1", "2")]


class TestInstanceSource:
    def test_coercion(self):
        instance = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(2,)]),
        )
        source = as_signature_source(instance)
        assert isinstance(source, InstanceSource)
        assert as_signature_source(source) is source
        with pytest.raises(TypeError):
            as_signature_source(42)

    def test_empty_left_yields_no_blocks(self):
        instance = Instance(
            Relation.build("R", ["A1"]),
            Relation.build("P", ["B1"], [(2,)]),
        )
        assert list(InstanceSource(instance).iter_left_blocks(4)) == []


class TestSqliteSource:
    @pytest.fixture
    def conn(self):
        connection = sqlite_backend.connect_memory()
        connection.execute('CREATE TABLE "R" ("A1", "A2")')
        connection.executemany(
            'INSERT INTO "R" VALUES (?, ?)',
            [(1, 2), (3, 4), (1, 2), (5, 6)],
        )
        connection.execute('CREATE TABLE "P" ("B1")')
        connection.executemany('INSERT INTO "P" VALUES (?)', [(1,), (3,)])
        connection.commit()
        return connection

    def test_counts_and_schema_discovery(self, conn):
        source = SqliteSource(conn, "R", "P")
        assert source.supports_pushdown
        assert source.left_count() == 3  # duplicate collapsed
        assert [a.name for a in source.left_schema] == ["A1", "A2"]
        assert source.right_rows() == ((1,), (3,))

    def test_shard_signatures_shape(self, conn):
        source = SqliteSource(conn, "R", "P")
        histogram = source.shard_signatures(0, 3)
        assert sum(count for count, _ in histogram.values()) == 6
        empty = source.shard_signatures(1, 1)
        assert empty == {}

    def test_distinct_row_count_helper(self, conn):
        assert (
            sqlite_backend.distinct_row_count(conn, "R", ["A1", "A2"]) == 3
        )
        assert sqlite_backend.distinct_row_count(conn, "R", ["A1"]) == 3

    def test_load_relation_ordered_first_occurrence(self, conn):
        relation = sqlite_backend.load_relation_ordered(conn, "R")
        assert relation.rows == ((1, 2), (3, 4), (5, 6))

    def test_view_falls_back_to_kernel_path(self, conn):
        """Views have no rowid: the push-down is disabled up front and
        the builder takes the kernel path over the loaded instance."""
        conn.execute('CREATE VIEW "RV" AS SELECT * FROM "R"')
        conn.execute('CREATE VIEW "PV" AS SELECT * FROM "P"')
        source = SqliteSource(conn, "RV", "PV")
        assert not source.supports_pushdown
        from repro.core import IndexBuilder, SignatureIndex

        built = IndexBuilder(shard_rows=2).build(source)
        reference = SignatureIndex(source.instance(), backend="python")
        assert [(c.mask, c.count) for c in built] == [
            (c.mask, c.count) for c in reference
        ]

    def test_without_rowid_table_falls_back(self, conn):
        conn.execute(
            'CREATE TABLE "W" ("A1", PRIMARY KEY ("A1")) WITHOUT ROWID'
        )
        conn.execute('INSERT INTO "W" VALUES (1)')
        source = SqliteSource(conn, "W", "P")
        assert not source.supports_pushdown

    def test_iter_left_blocks_fallback(self, conn):
        source = SqliteSource(conn, "R", "P")
        blocks = list(source.iter_left_blocks(2))
        assert blocks == [(0, ((1, 2), (3, 4))), (2, ((5, 6),))]


class TestProtocolSurface:
    def test_pushdown_not_implemented_by_default(self):
        instance = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        with pytest.raises(NotImplementedError):
            InstanceSource(instance).shard_signatures(0, 1)
        assert not InstanceSource(instance).supports_pushdown
        assert issubclass(InstanceSource, SignatureSource)
