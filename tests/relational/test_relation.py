"""Unit tests for relations and instances."""

import pytest

from repro.relational import Attribute, Instance, Relation, SchemaError


@pytest.fixture()
def small():
    return Relation.build("R", ["A1", "A2"], [(1, 2), (3, 4)])


class TestRelation:
    def test_build_sets_schema(self, small):
        assert small.name == "R"
        assert small.arity == 2

    def test_rows_preserved_in_order(self, small):
        assert small.rows == ((1, 2), (3, 4))

    def test_duplicate_rows_collapse(self):
        relation = Relation.build("R", ["A"], [(1,), (1,), (2,)])
        assert relation.rows == ((1,), (2,))

    def test_set_semantics_keep_first_occurrence_order(self):
        relation = Relation.build("R", ["A"], [(2,), (1,), (2,)])
        assert relation.rows == ((2,), (1,))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation.build("R", ["A1", "A2"], [(1,)])

    def test_value_access(self, small):
        assert small.value((3, 4), "A2") == 4
        assert small.value((3, 4), Attribute("R", "A1")) == 3

    def test_column(self, small):
        assert small.column("A1") == [1, 3]

    def test_restrict(self, small):
        assert len(small.restrict(1)) == 1
        assert small.restrict(1).rows == ((1, 2),)

    def test_membership(self, small):
        assert (1, 2) in small
        assert (9, 9) not in small

    def test_equality_ignores_row_order(self):
        first = Relation.build("R", ["A"], [(1,), (2,)])
        second = Relation.build("R", ["A"], [(2,), (1,)])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_across_schemas(self):
        assert Relation.build("R", ["A"], [(1,)]) != Relation.build(
            "P", ["A"], [(1,)]
        )

    def test_pretty_renders_headers_and_rows(self, small):
        text = small.pretty()
        assert "A1" in text and "A2" in text and "3" in text

    def test_pretty_limits_rows(self):
        relation = Relation.build("R", ["A"], [(i,) for i in range(20)])
        text = relation.pretty(limit=3)
        assert "more rows" in text

    def test_empty_relation(self):
        relation = Relation.build("R", ["A"])
        assert len(relation) == 0
        assert relation.pretty()  # still renders headers


class TestInstance:
    def test_cartesian_size(self, small):
        other = Relation.build("P", ["B1"], [(1,), (2,), (3,)])
        assert Instance(small, other).cartesian_size == 6

    def test_omega_is_row_major(self, small):
        other = Relation.build("P", ["B1", "B2"], [(0, 0)])
        omega = Instance(small, other).omega
        assert omega[0] == (Attribute("R", "A1"), Attribute("P", "B1"))
        assert omega[1] == (Attribute("R", "A1"), Attribute("P", "B2"))
        assert omega[2] == (Attribute("R", "A2"), Attribute("P", "B1"))
        assert len(omega) == 4

    def test_cartesian_product_order(self, small):
        other = Relation.build("P", ["B1"], [(7,), (8,)])
        product = list(Instance(small, other).cartesian_product())
        assert product == [
            ((1, 2), (7,)),
            ((1, 2), (8,)),
            ((3, 4), (7,)),
            ((3, 4), (8,)),
        ]

    def test_same_name_rejected(self, small):
        with pytest.raises(SchemaError):
            Instance(small, Relation.build("R", ["B1"], [(1,)]))

    def test_same_attribute_names_allowed_across_relations(self):
        left = Relation.build("Part", ["partkey"], [(1,)])
        right = Relation.build("Partsupp", ["partkey"], [(1,)])
        instance = Instance(left, right)
        assert instance.cartesian_size == 1

    def test_equality(self, small):
        other = Relation.build("P", ["B1"], [(1,)])
        assert Instance(small, other) == Instance(small, other)

    def test_repr(self, small):
        other = Relation.build("P", ["B1"], [(1,)])
        assert "|D|=2" in repr(Instance(small, other))
