"""SQLite backend round-trips and algebra cross-validation."""

import random

import pytest

from repro.relational import JoinPredicate, Relation, equijoin, semijoin
from repro.relational.sqlite_backend import (
    connect_memory,
    equijoin_query,
    load_relation,
    semijoin_query,
    sql_equijoin,
    sql_semijoin,
    store_instance,
    store_relation,
)

from ..conftest import make_random_instance


@pytest.fixture()
def conn():
    connection = connect_memory()
    yield connection
    connection.close()


class TestRoundTrip:
    def test_store_and_load(self, conn, example21):
        store_relation(conn, example21.r0)
        loaded = load_relation(conn, "R0")
        assert loaded == example21.r0

    def test_load_column_subset(self, conn, example21):
        store_relation(conn, example21.p0)
        loaded = load_relation(conn, "P0", attributes=["B1", "B3"])
        assert loaded.arity == 2
        assert set(loaded.rows) == {(1, 0), (0, 2), (2, 0)}

    def test_load_with_limit(self, conn, example21):
        store_relation(conn, example21.r0)
        assert len(load_relation(conn, "R0", limit=2)) == 2

    def test_store_replaces_existing_table(self, conn):
        store_relation(conn, Relation.build("R", ["A"], [(1,)]))
        store_relation(conn, Relation.build("R", ["A"], [(2,)]))
        assert load_relation(conn, "R").rows == ((2,),)

    def test_none_values_rejected(self, conn):
        with pytest.raises(ValueError):
            store_relation(conn, Relation.build("R", ["A"], [(None,)]))

    def test_store_instance_stores_both(self, conn, example21):
        store_instance(conn, example21.instance)
        assert len(load_relation(conn, "R0")) == 4
        assert len(load_relation(conn, "P0")) == 3


class TestSQLCrossValidation:
    def test_equijoin_matches_algebra_on_example21(self, conn, example21):
        e = example21
        store_instance(conn, e.instance)
        for theta in [
            JoinPredicate.empty(),
            e.theta(("A1", "B1")),
            e.theta(("A1", "B1"), ("A2", "B3")),
            e.theta(("A2", "B1"), ("A2", "B2"), ("A2", "B3")),
        ]:
            assert sql_equijoin(conn, e.instance, theta) == set(
                equijoin(e.instance, theta)
            )

    def test_semijoin_matches_algebra_on_example21(self, conn, example21):
        e = example21
        store_instance(conn, e.instance)
        for theta in [
            JoinPredicate.empty(),
            e.theta(("A2", "B2")),
            e.theta(("A1", "B1"), ("A2", "B3")),
        ]:
            assert sql_semijoin(conn, e.instance, theta) == set(
                semijoin(e.instance, theta)
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances_agree_with_sql(self, conn, seed):
        rng = random.Random(seed)
        instance = make_random_instance(
            rng, left_arity=2, right_arity=3, rows=8, values=4
        )
        store_instance(conn, instance)
        omega = instance.omega
        for _ in range(10):
            size = rng.randrange(0, 4)
            theta = JoinPredicate(rng.sample(omega, size))
            assert sql_equijoin(conn, instance, theta) == set(
                equijoin(instance, theta)
            ), f"equijoin mismatch for {theta}"
            assert sql_semijoin(conn, instance, theta) == set(
                semijoin(instance, theta)
            ), f"semijoin mismatch for {theta}"

    def test_string_values(self, conn, flights_hotels):
        f = flights_hotels
        store_instance(conn, f.instance)
        assert sql_equijoin(conn, f.instance, f.q2) == set(
            equijoin(f.instance, f.q2)
        )


class TestQueryText:
    def test_equijoin_query_mentions_conditions(self, example21):
        e = example21
        sql = equijoin_query(e.instance, e.theta(("A1", "B1")))
        assert "CROSS JOIN" in sql
        assert '"R0"."A1" = "P0"."B1"' in sql

    def test_empty_predicate_query_has_trivial_where(self, example21):
        sql = equijoin_query(example21.instance, JoinPredicate.empty())
        assert "1=1" in sql

    def test_semijoin_query_uses_exists(self, example21):
        e = example21
        sql = semijoin_query(e.instance, e.theta(("A1", "B1")))
        assert "EXISTS" in sql
