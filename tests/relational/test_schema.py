"""Unit tests for the schema model."""

import pytest

from repro.relational import Attribute, RelationSchema, SchemaError


class TestAttribute:
    def test_equality_requires_relation_and_name(self):
        assert Attribute("R", "A1") == Attribute("R", "A1")
        assert Attribute("R", "A1") != Attribute("P", "A1")
        assert Attribute("R", "A1") != Attribute("R", "A2")

    def test_hashable(self):
        attrs = {Attribute("R", "A1"), Attribute("R", "A1")}
        assert len(attrs) == 1

    def test_str_is_qualified(self):
        assert str(Attribute("Flight", "Airline")) == "Flight.Airline"

    def test_parse_round_trip(self):
        attr = Attribute.parse("Flight.Airline")
        assert attr == Attribute("Flight", "Airline")

    def test_parse_strips_whitespace(self):
        assert Attribute.parse(" R . A1 ".replace(" . ", ".")) == Attribute(
            "R", "A1"
        )

    def test_parse_without_dot_raises(self):
        with pytest.raises(SchemaError):
            Attribute.parse("Airline")

    def test_invalid_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("bad name", "A1")

    def test_invalid_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("R", "1leading_digit")

    def test_empty_names_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", "A")
        with pytest.raises(SchemaError):
            Attribute("R", "")


class TestRelationSchema:
    def test_attributes_are_qualified_and_ordered(self):
        schema = RelationSchema("R", ["A1", "A2"])
        assert schema.attributes == (
            Attribute("R", "A1"),
            Attribute("R", "A2"),
        )

    def test_arity(self):
        assert RelationSchema("R", ["A1", "A2", "A3"]).arity == 3

    def test_position_by_attribute_and_by_name(self):
        schema = RelationSchema("R", ["A1", "A2"])
        assert schema.position(Attribute("R", "A2")) == 1
        assert schema.position("A2") == 1

    def test_position_of_foreign_attribute_raises(self):
        schema = RelationSchema("R", ["A1"])
        with pytest.raises(SchemaError):
            schema.position(Attribute("P", "A1"))

    def test_attribute_lookup(self):
        schema = RelationSchema("R", ["A1"])
        assert schema.attribute("A1") == Attribute("R", "A1")
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ["A1", "A1"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])

    def test_contains(self):
        schema = RelationSchema("R", ["A1"])
        assert Attribute("R", "A1") in schema
        assert Attribute("P", "A1") not in schema

    def test_iteration_order(self):
        schema = RelationSchema("R", ["B", "A"])
        assert [a.name for a in schema] == ["B", "A"]

    def test_equality_and_hash(self):
        first = RelationSchema("R", ["A1", "A2"])
        second = RelationSchema("R", ["A1", "A2"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != RelationSchema("R", ["A2", "A1"])

    def test_disjointness(self):
        r = RelationSchema("R", ["A1", "key"])
        p = RelationSchema("P", ["B1", "key"])
        assert r.is_disjoint_from(p)  # qualification keeps them disjoint
        assert not r.is_disjoint_from(RelationSchema("R", ["key"]))

    def test_repr_mentions_attributes(self):
        assert "A1" in repr(RelationSchema("R", ["A1"]))
