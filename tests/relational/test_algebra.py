"""Relational algebra semantics — validated on Example 2.1 of the paper."""


from repro.relational import (
    Instance,
    JoinPredicate,
    Relation,
    cartesian_product,
    equijoin,
    is_nullable,
    join_witnesses,
    project,
    select,
    selects,
    semijoin,
    semijoin_selects,
)


class TestExample21:
    """The exact joins computed in Example 2.1."""

    def test_equijoin_theta1(self, example21):
        e = example21
        theta1 = e.theta(("A1", "B1"), ("A2", "B3"))
        assert sorted(equijoin(e.instance, theta1)) == sorted(
            [(e.t2, e.u2), (e.t4, e.u1)]
        )

    def test_semijoin_theta1(self, example21):
        e = example21
        theta1 = e.theta(("A1", "B1"), ("A2", "B3"))
        assert set(semijoin(e.instance, theta1)) == {e.t2, e.t4}

    def test_equijoin_theta2(self, example21):
        e = example21
        theta2 = e.theta(("A2", "B2"))
        assert sorted(equijoin(e.instance, theta2)) == sorted(
            [(e.t1, e.u1), (e.t1, e.u2), (e.t4, e.u3)]
        )

    def test_semijoin_theta2(self, example21):
        e = example21
        theta2 = e.theta(("A2", "B2"))
        assert set(semijoin(e.instance, theta2)) == {e.t1, e.t4}

    def test_equijoin_theta3_empty(self, example21):
        e = example21
        theta3 = e.theta(("A2", "B1"), ("A2", "B2"), ("A2", "B3"))
        assert equijoin(e.instance, theta3) == []
        assert semijoin(e.instance, theta3) == []
        assert is_nullable(e.instance, theta3)


class TestFlightsHotels:
    """The introduction's Q1/Q2 queries (Figures 1–2)."""

    def test_q1_selects_four_packages(self, flights_hotels):
        """Q1 selects tuples (3), (4), (8) and (10) of Figure 2."""
        f = flights_hotels
        assert len(equijoin(f.instance, f.q1)) == 4

    def test_q2_contained_in_q1(self, flights_hotels):
        f = flights_hotels
        assert set(equijoin(f.instance, f.q2)) <= set(
            equijoin(f.instance, f.q1)
        )

    def test_tuple_8_distinguishes_q1_q2(self, flights_hotels):
        """Tuple (8) of Figure 2: (NYC→Paris AA, Paris hotel)."""
        f = flights_hotels
        tuple_8 = (("NYC", "Paris", "AA"), ("Paris", "NoDiscount"))
        assert selects(f.instance, f.q1, tuple_8)
        assert not selects(f.instance, f.q2, tuple_8)

    def test_tuple_3_selected_by_both(self, flights_hotels):
        f = flights_hotels
        tuple_3 = (("Paris", "Lille", "AF"), ("Lille", "AF"))
        assert selects(f.instance, f.q1, tuple_3)
        assert selects(f.instance, f.q2, tuple_3)


class TestOperators:
    def test_empty_predicate_equijoin_is_cartesian_product(self, example21):
        instance = example21.instance
        assert equijoin(instance, JoinPredicate.empty()) == cartesian_product(
            instance
        )

    def test_empty_predicate_semijoin_is_left_relation(self, example21):
        instance = example21.instance
        assert semijoin(instance, JoinPredicate.empty()) == list(
            instance.left
        )

    def test_empty_predicate_semijoin_with_empty_right(self):
        instance = Instance(
            Relation.build("R", ["A"], [(1,)]),
            Relation.build("P", ["B"]),
        )
        # ∃t' ∈ P fails when P is empty, even with no equality constraints.
        assert semijoin(instance, JoinPredicate.empty()) == []

    def test_anti_monotonicity_equijoin(self, example21):
        """θ1 ⊆ θ2 implies R⋈θ2 ⊆ R⋈θ1 (§2)."""
        e = example21
        theta_small = e.theta(("A1", "B1"))
        theta_big = e.theta(("A1", "B1"), ("A2", "B3"))
        assert set(equijoin(e.instance, theta_big)) <= set(
            equijoin(e.instance, theta_small)
        )

    def test_anti_monotonicity_semijoin(self, example21):
        e = example21
        theta_small = e.theta(("A2", "B2"))
        theta_big = e.theta(("A2", "B2"), ("A1", "B2"))
        assert set(semijoin(e.instance, theta_big)) <= set(
            semijoin(e.instance, theta_small)
        )

    def test_semijoin_is_projection_of_equijoin(self, example21):
        e = example21
        for theta in [
            e.theta(("A1", "B1")),
            e.theta(("A2", "B3")),
            e.theta(("A1", "B2"), ("A2", "B1")),
        ]:
            projected = {r for r, _ in equijoin(e.instance, theta)}
            assert projected == set(semijoin(e.instance, theta))

    def test_selects_matches_equijoin_membership(self, example21):
        e = example21
        theta = e.theta(("A1", "B1"))
        joined = set(equijoin(e.instance, theta))
        for t in e.instance.cartesian_product():
            assert selects(e.instance, theta, t) == (t in joined)

    def test_semijoin_selects_matches_semijoin_membership(self, example21):
        e = example21
        theta = e.theta(("A2", "B2"))
        kept = set(semijoin(e.instance, theta))
        for row in e.instance.left:
            assert semijoin_selects(e.instance, theta, row) == (row in kept)

    def test_join_witnesses(self, example21):
        e = example21
        theta = e.theta(("A2", "B2"))
        assert join_witnesses(e.instance, theta, e.t1) == [e.u1, e.u2]
        assert join_witnesses(e.instance, theta, e.t2) == []

    def test_is_nullable_matches_equijoin_emptiness(self, example21):
        e = example21
        for theta in [
            JoinPredicate.empty(),
            e.theta(("A1", "B1")),
            e.theta(("A2", "B1"), ("A2", "B2"), ("A2", "B3")),
        ]:
            assert is_nullable(e.instance, theta) == (
                equijoin(e.instance, theta) == []
            )

    def test_project_collapses_duplicates(self):
        relation = Relation.build("R", ["A", "B"], [(1, 2), (1, 3)])
        assert len(project(relation, ["A"])) == 1

    def test_project_keeps_order(self):
        relation = Relation.build("R", ["A", "B"], [(1, 2), (4, 3)])
        projected = project(relation, ["B", "A"])
        assert projected.rows == ((2, 1), (3, 4))

    def test_select(self):
        relation = Relation.build("R", ["A"], [(1,), (2,), (3,)])
        kept = select(relation, lambda row: row[0] > 1)
        assert kept.rows == ((2,), (3,))
