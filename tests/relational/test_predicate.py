"""Unit tests for join predicates."""

import pytest

from repro.relational import (
    Attribute,
    Instance,
    JoinPredicate,
    Relation,
    SchemaError,
)


def pair(a: str, b: str):
    return (Attribute.parse(a), Attribute.parse(b))


class TestConstruction:
    def test_empty_predicate(self):
        assert len(JoinPredicate.empty()) == 0
        assert not JoinPredicate.empty()

    def test_pairs_frozen(self):
        theta = JoinPredicate([pair("R.A1", "P.B1")])
        assert isinstance(theta.pairs, frozenset)

    def test_rejects_non_attribute_pairs(self):
        with pytest.raises(SchemaError):
            JoinPredicate([("R.A1", "P.B1")])  # strings, not Attributes

    def test_parse_single(self):
        theta = JoinPredicate.parse("R.A1 = P.B1")
        assert pair("R.A1", "P.B1") in theta

    def test_parse_conjunction(self):
        theta = JoinPredicate.parse("R.A1 = P.B1 AND R.A2 = P.B3")
        assert len(theta) == 2

    def test_parse_unicode_and(self):
        theta = JoinPredicate.parse("R.A1 = P.B1 ∧ R.A2 = P.B3")
        assert len(theta) == 2

    def test_parse_empty_string(self):
        assert JoinPredicate.parse("") == JoinPredicate.empty()

    def test_parse_missing_equals_raises(self):
        with pytest.raises(SchemaError):
            JoinPredicate.parse("R.A1 P.B1")

    def test_str_round_trip(self):
        theta = JoinPredicate.parse("R.A1 = P.B1 AND R.A2 = P.B3")
        assert JoinPredicate.parse(str(theta)) == theta


class TestGeneralityOrder:
    def test_empty_is_most_general(self):
        theta = JoinPredicate.parse("R.A1 = P.B1")
        assert JoinPredicate.empty().is_more_general_than(theta)
        assert theta.is_more_specific_than(JoinPredicate.empty())

    def test_comparison_operators(self):
        small = JoinPredicate.parse("R.A1 = P.B1")
        big = JoinPredicate.parse("R.A1 = P.B1 AND R.A2 = P.B2")
        assert small <= big and small < big
        assert big >= small and big > small
        assert not small > big

    def test_incomparable_predicates(self):
        left = JoinPredicate.parse("R.A1 = P.B1")
        right = JoinPredicate.parse("R.A2 = P.B2")
        assert not left <= right and not right <= left


class TestSetAlgebra:
    def test_union(self):
        left = JoinPredicate.parse("R.A1 = P.B1")
        right = JoinPredicate.parse("R.A2 = P.B2")
        assert len(left | right) == 2

    def test_intersection(self):
        left = JoinPredicate.parse("R.A1 = P.B1 AND R.A2 = P.B2")
        right = JoinPredicate.parse("R.A2 = P.B2")
        assert (left & right) == right

    def test_equality_and_hash(self):
        first = JoinPredicate.parse("R.A1 = P.B1 AND R.A2 = P.B2")
        second = JoinPredicate.parse("R.A2 = P.B2 AND R.A1 = P.B1")
        assert first == second
        assert hash(first) == hash(second)

    def test_sorted_pairs_deterministic(self):
        theta = JoinPredicate.parse("R.A2 = P.B2 AND R.A1 = P.B1")
        assert [str(a) for a, _ in theta.sorted_pairs()] == ["R.A1", "R.A2"]


class TestValidation:
    def test_validate_for_accepts_omega_pairs(self):
        instance = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        JoinPredicate.parse("R.A1 = P.B1").validate_for(instance)

    def test_validate_for_rejects_foreign_pairs(self):
        instance = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        with pytest.raises(SchemaError):
            JoinPredicate.parse("R.A1 = Q.B1").validate_for(instance)

    def test_validate_for_rejects_swapped_sides(self):
        instance = Instance(
            Relation.build("R", ["A1"], [(1,)]),
            Relation.build("P", ["B1"], [(1,)]),
        )
        with pytest.raises(SchemaError):
            JoinPredicate.parse("P.B1 = R.A1").validate_for(instance)
