"""Unit tests for the shared benchmark helpers
(``benchmarks/bench_util.py``) — the single implementations of the
percentile/latency summaries, the report ``meta`` header, and the
remote-session drivers that used to drift as copies across the bench
harnesses."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "bench_util.py"
)
_spec = importlib.util.spec_from_file_location("bench_util", _MODULE_PATH)
bench_util = importlib.util.module_from_spec(_spec)
sys.modules["bench_util"] = bench_util
_spec.loader.exec_module(bench_util)


class TestPercentile:
    def test_nearest_rank_interior(self):
        samples = [float(v) for v in range(1, 11)]
        assert bench_util.percentile(samples, 50) == 5.0
        assert bench_util.percentile(samples, 95) == 10.0

    def test_order_independent(self):
        assert bench_util.percentile([3.0, 1.0, 2.0], 100) == 3.0

    def test_singleton(self):
        for p in (1, 50, 99):
            assert bench_util.percentile([7.0], p) == 7.0


class TestLatencySummary:
    def test_converts_to_milliseconds(self):
        summary = bench_util.latency_summary([0.001, 0.002, 0.003])
        assert summary == {
            "count": 3,
            "p50_ms": 2.0,
            "p95_ms": 3.0,
            "max_ms": 3.0,
        }


class TestBenchMeta:
    def test_common_header_fields(self):
        meta = bench_util.bench_meta()
        assert set(meta) == {"created", "python", "machine"}
        assert meta["created"].endswith("+00:00")

    def test_extras_append_after_header(self):
        meta = bench_util.bench_meta(smoke=True, transport="loopback")
        assert list(meta) == [
            "created",
            "python",
            "machine",
            "smoke",
            "transport",
        ]
        assert meta["smoke"] is True


class TestRemoteAnswerer:
    def test_adapts_http_payload_to_oracle_pair(self):
        seen = []

        class Oracle:
            def label(self, pair):
                seen.append(pair)
                return "+"

        answer = bench_util.remote_answerer(Oracle())
        question = {
            "left": {"row": [1, "a"]},
            "right": {"row": [2, "b"]},
        }
        assert answer(question) == "+"
        assert seen == [((1, "a"), (2, "b"))]


class TestRemoteDrivers:
    """``drive_session`` / ``expected_pairs`` against a real server —
    the contract every bench harness leans on for its parity checks."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.data import generate_tpch, tpch_workloads

        return tpch_workloads(generate_tpch(scale=1.0, seed=0))[3]

    def test_driven_session_matches_inline_reference(self, workload):
        from repro.core import PerfectOracle, SignatureIndex
        from repro.service import ServiceServer

        oracle = PerfectOracle(workload.instance, workload.goal)
        latencies: list[float] = []
        with ServiceServer() as server:
            final = bench_util.drive_session(
                server, "tpch/join4", "L2S", 3, oracle, latencies
            )
        pairs, interactions = bench_util.expected_pairs(
            workload.instance,
            "L2S",
            3,
            oracle,
            SignatureIndex(workload.instance),
        )
        assert final["predicate"]["pairs"] == pairs
        assert final["progress"]["interactions"] == interactions
        assert len(latencies) == interactions
        assert all(latency > 0.0 for latency in latencies)
