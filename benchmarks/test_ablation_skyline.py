"""Ablation: the skyline selection rule of Algorithms 4/6.

The paper selects the skyline entropy with maximal ``min`` component.  We
prove (and test) this equals the lexicographic maximum by ``(min, max)``;
this ablation compares it against two plausible alternatives on the same
entropy sets:

* ``max-sum``  — maximise ``min + max`` (expected-gain flavour);
* ``max-max``  — maximise the optimistic component only.

Expected shape: max-min (the paper's rule) never loses on worst-case
pruning; max-max can stall on tuples whose good case never materialises.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    run_inference,
    sample_goal_of_size,
)
from repro.core.entropy import Entropy
from repro.core.fast_lookahead import entropies_for_informative
from repro.core.strategies.base import StatelessStrategy
from repro.data import SyntheticConfig, generate_synthetic

CONFIG = SyntheticConfig(3, 3, 40, 60)


class SelectionRuleStrategy(StatelessStrategy):
    """L1S with a pluggable entropy-selection rule."""

    def __init__(self, rule: str):
        self.rule = rule
        self.name = f"L1S-{rule}"

    def _key(self, entropy: Entropy):
        low, high = entropy
        if self.rule == "max-min":
            return (low, high)
        if self.rule == "max-sum":
            return (low + high, low)
        if self.rule == "max-max":
            return (high, low)
        raise ValueError(self.rule)

    def choose(self, state, rng):
        informative = self._informative_or_raise(state)
        entropies = entropies_for_informative(state, 1)
        best = max(entropies.values(), key=self._key)
        for class_id in informative:
            if entropies[class_id] == best:
                return class_id
        raise AssertionError


def _draw(goal_size: int):
    rng = random.Random(13)
    while True:
        instance = generate_synthetic(CONFIG, seed=rng.randrange(2**31))
        index = SignatureIndex(instance)
        goal = sample_goal_of_size(index, goal_size, rng)
        if goal is not None:
            return instance, index, goal


@pytest.mark.parametrize("rule", ["max-min", "max-sum", "max-max"])
@pytest.mark.parametrize("goal_size", [1, 2])
def test_selection_rule(benchmark, rule, goal_size):
    instance, index, goal = _draw(goal_size)
    strategy = SelectionRuleStrategy(rule)
    benchmark.group = f"ablation-skyline-size{goal_size}"

    def run():
        return run_inference(
            instance,
            strategy,
            PerfectOracle(instance, goal),
            index=index,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.matches_goal(instance, goal)
    benchmark.extra_info["interactions"] = result.interactions
