"""Planner benchmark harness — emits ``BENCH_plan.json``.

Measures what the cross-step planner refactor is for:

* ``lookahead_sessions`` — **full-session** L1S/L2S wall-clock,
  incremental planner vs the from-scratch per-step path, on the
  Figure 7 synthetic configurations (plus the row-scaled largest config
  from ``bench_build`` and one larger stress config).  Each cell runs a
  mix of oracles — perfect (paper §5 style), adversarial all-negative
  (the longest consistent sessions, where negatives accumulate and
  from-scratch re-scans them every step), and random coin answers — and
  asserts the two modes ask **bit-for-bit identical question
  sequences** before any timing is trusted.
* ``speculation`` — service answer-round latency (``POST answer`` +
  ``GET question``) p50/p95 for L2S with and without speculative
  next-question precompute, with a think-time-paced client: while the
  "user" thinks, the server precomputes both answer branches, so the
  next round collapses to a lookup on the predicted branch.
* ``plan_cache`` — answer→question latency cold (every step computes
  its entropy table) vs warm (every step is a plan-cache hit): two
  identical adversarial L2S sessions on one manager over the largest
  Figure 7 configuration, question sequences asserted identical before
  any timing is trusted.  The warm p95 must sit at least 3× below the
  cold p95.

The acceptance gate (also enforced by CI on the smoke run): incremental
full-session L2S wall-clock ≤ the from-scratch path on the largest
Figure 7 configuration; on full runs additionally the speculation p95
must beat the no-speculation baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan.py            # full run
    PYTHONPATH=src python benchmarks/bench_plan.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_plan.py --output my.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    InferenceSession,
    Label,
    LookaheadSkylineStrategy,
    PerfectOracle,
    SignatureIndex,
)
from repro.core.kernel_batch import batched_entropies
from repro.core.oracle import Oracle
from repro.data.synthetic import (
    PAPER_CONFIGS,
    SyntheticConfig,
    generate_synthetic,
)
from repro.core.serialize import instance_to_dict
from repro.relational import JoinPredicate
from repro.service import ServiceClient, ServiceServer, SessionManager
from repro.service.protocol import CreateSpec

from bench_util import bench_meta, latency_summary

#: The largest Figure 7 configuration, row-scaled (as ``bench_build``
#: scales it for a ≥10⁶ product) until the signature-class count
#: saturates (|N| ≈ 101, product ≈ 5.76M) — below that, per-step
#: matrices are so small that incremental-vs-scratch differences drown
#: in fixed numpy call overhead.
LARGEST_FIG7 = SyntheticConfig(3, 3, 2400, 100)

#: Wall-clock gates on shared CI runners need a measurement tolerance;
#: the incremental path must stay within this factor of from-scratch
#: (it is expected *below* 1.0 — see the committed BENCH_plan.json).
L2S_GATE_TOLERANCE = 1.10

#: A larger synthetic stress configuration (|N| ≈ 700) showing the
#: asymptotic benefit; not part of Figure 7, not part of the gate.
STRESS = SyntheticConfig(4, 4, 400, 30)


class AdversarialOracle(Oracle):
    """Always negative — the longest consistent session."""

    def label(self, tuple_pair):
        return Label.NEGATIVE


class CoinOracle(Oracle):
    """Seeded random answers."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def label(self, tuple_pair):
        return self._rng.choice([Label.POSITIVE, Label.NEGATIVE])


# --- full-session lookahead cell ---------------------------------------------


def _session_jobs(instance, seeds):
    """The oracle mix driven for one (config, depth, mode) measurement."""
    goal = JoinPredicate([instance.omega[0]])
    jobs = []
    for seed in seeds:
        jobs.append(("perfect", lambda: PerfectOracle(instance, goal), seed))
        jobs.append(("adversarial", AdversarialOracle, seed))
        jobs.append(("coin", lambda seed=seed: CoinOracle(seed), seed))
    return jobs


def _run_session(instance, index, depth, incremental, make_oracle, seed):
    """One full session; returns (wall_seconds, asked class ids, mask)."""
    oracle = make_oracle()
    strategy = LookaheadSkylineStrategy(depth=depth, incremental=incremental)
    session = InferenceSession(
        instance, strategy, oracle, index=index, seed=seed
    )
    asked: list[int] = []
    started = time.perf_counter()
    while not session.is_finished():
        question = session.propose()
        asked.append(question.class_id)
        session.answer(question.question_id, oracle.label(question.tuple_pair))
    wall = time.perf_counter() - started
    return wall, asked, session.state.result_mask()


def bench_lookahead_sessions(configs, seeds, rounds) -> list[dict]:
    cells = []
    for label, config in configs:
        instance = generate_synthetic(config, seed=7)
        index = SignatureIndex(instance)
        jobs = _session_jobs(instance, seeds)
        cell = {
            "config": label,
            "product_size": instance.cartesian_size,
            "classes": len(index),
            "sessions_per_mode": len(jobs),
            "oracles": sorted({kind for kind, _, _ in jobs}),
            "depths": {},
        }
        for depth in (1, 2):
            questions: dict[str, int] = {}
            totals = {
                (kind, incremental): []
                for kind in {k for k, _, _ in jobs}
                for incremental in (True, False)
            }
            for round_index in range(rounds):
                for incremental in (True, False):
                    per_kind: dict[str, float] = {}
                    transcripts = []
                    for kind, make_oracle, seed in jobs:
                        wall, asked, mask = _run_session(
                            instance, index, depth, incremental,
                            make_oracle, seed,
                        )
                        per_kind[kind] = per_kind.get(kind, 0.0) + wall
                        transcripts.append((kind, seed, asked, mask))
                    for kind, total in per_kind.items():
                        totals[kind, incremental].append(total)
                    if incremental:
                        incremental_transcripts = transcripts
                    else:
                        assert incremental_transcripts == transcripts, (
                            f"question-sequence parity broke: "
                            f"{label} L{depth}S"
                        )
                if round_index == 0:
                    for kind, _, asked, _ in transcripts:
                        questions[kind] = questions.get(kind, 0) + len(
                            asked
                        )
            oracles = {}
            for kind in sorted(questions):
                inc_ms = round(min(totals[kind, True]) * 1e3, 3)
                scratch_ms = round(min(totals[kind, False]) * 1e3, 3)
                oracles[kind] = {
                    "questions_total": questions[kind],
                    "incremental_ms": inc_ms,
                    "from_scratch_ms": scratch_ms,
                    "speedup": round(scratch_ms / max(inc_ms, 1e-9), 3),
                }
            inc_all = round(
                sum(row["incremental_ms"] for row in oracles.values()), 3
            )
            scratch_all = round(
                sum(row["from_scratch_ms"] for row in oracles.values()), 3
            )
            cell["depths"][f"L{depth}S"] = {
                "questions_total": sum(questions.values()),
                "incremental_ms": inc_all,
                "from_scratch_ms": scratch_all,
                "speedup": round(scratch_all / max(inc_all, 1e-9), 3),
                "oracles": oracles,
                "parity_checked": True,
            }
            adversarial = oracles["adversarial"]
            print(
                f"[bench] {label} L{depth}S: incremental {inc_all}ms "
                f"vs from-scratch {scratch_all}ms "
                f"({cell['depths'][f'L{depth}S']['speedup']}x; "
                f"full-length sessions "
                f"{adversarial['speedup']}x)",
                flush=True,
            )
        cells.append(cell)
    return cells


# --- speculation cell --------------------------------------------------------


def _relation_csv(relation) -> dict:
    header = ",".join(attr.name for attr in relation.schema)
    lines = [header] + [
        ",".join(str(value) for value in row) for row in relation.rows
    ]
    return {"name": relation.name, "text": "\n".join(lines) + "\n"}


def _drive_answer_rounds(
    server, csv_payload, max_questions, think_seconds
) -> tuple[list[float], dict]:
    """Create one L2S session and measure each answer round:
    ``POST answer`` + follow-up ``GET question`` (the user-visible gap
    between answering and seeing the next tuple).  All-negative answers
    keep the informative set large, so every step stays costly."""
    rounds: list[float] = []
    with ServiceClient(server.host, server.port) as client:
        info = client.create_session(
            csv=csv_payload,
            infer_types=True,
            strategy="L2S",
            seed=0,
            max_questions=max_questions,
        )
        session_id = info["session_id"]
        question = client.next_question(session_id)
        while question is not None:
            time.sleep(think_seconds)  # the oracle "thinks"
            started = time.perf_counter()
            client.post_answer(session_id, question["question_id"], "-")
            question = client.next_question(session_id)
            rounds.append(time.perf_counter() - started)
        stats = client.stats()
    return rounds, stats


def bench_speculation(max_questions, think_seconds) -> dict:
    # The Fig. 7 builtins are too small to show a visible per-step cost,
    # so this cell uploads the stress instance (|N| ≈ 700, L2S step in
    # the tens of milliseconds) as CSV — exactly how a real client would
    # bring its own data.
    instance = generate_synthetic(STRESS, seed=7)
    csv_payload = {
        "left": _relation_csv(instance.left),
        "right": _relation_csv(instance.right),
    }
    label = f"stress{STRESS.label} (uploaded CSV)"

    results = {}
    for speculate in (True, False):
        manager = SessionManager(
            build_workers=2, speculate=speculate
        )
        with ServiceServer(manager=manager) as server:
            rounds, stats = _drive_answer_rounds(
                server, csv_payload, max_questions, think_seconds
            )
        # The first rounds cover one-off warm-up (deferred planner table
        # construction on the speculative branch; nothing on the
        # baseline) — steady-state latency is what a long interactive
        # session experiences, so both modes drop the same prefix.
        steady = rounds[2:] if len(rounds) > 4 else rounds
        results[speculate] = {
            "answer_round_latency": latency_summary(steady),
            "warmup_rounds_excluded": len(rounds) - len(steady),
            "speculation": stats["speculation"],
        }
        mode = "speculative" if speculate else "baseline"
        print(
            f"[bench] {mode} answer rounds: "
            f"p95 {results[speculate]['answer_round_latency']['p95_ms']}ms",
            flush=True,
        )
    return {
        "workload": label,
        "strategy": "L2S",
        "oracle": "adversarial (all-negative)",
        "max_questions": max_questions,
        "think_seconds": think_seconds,
        "with_speculation": results[True],
        "without_speculation": results[False],
        "p95_speedup": round(
            results[False]["answer_round_latency"]["p95_ms"]
            / max(
                results[True]["answer_round_latency"]["p95_ms"], 1e-9
            ),
            3,
        ),
    }


# --- plan-cache cell ---------------------------------------------------------

#: A warm (memoised) question must beat the cold compute by at least
#: this factor at p95 on the largest Fig. 7 configuration — the cache
#: replaces a depth-2 kernel sweep with a dictionary lookup, so the
#: committed full run measures far above it.  The smoke run keeps a
#: noise margin: its p95 sits on the session's first (largest) steps,
#: where propose overhead outside the memoised kernel is a bigger
#: share of the round; the checker clamps the floor so a report
#: cannot weaken it below the smoke value.
PLAN_CACHE_GATE_MIN = 3.0
PLAN_CACHE_GATE_MIN_SMOKE = 1.5


def bench_plan_cache(max_questions) -> dict:
    """Cold vs warm answer→question latency through the plan cache.

    Two identical adversarial L2S sessions on one manager: the first
    computes (and memoises) every entropy table, the second rides
    local hits end to end.  Speculation and the kernel batcher are off
    so each timed ``propose`` isolates exactly compute-vs-lookup."""
    instance = generate_synthetic(LARGEST_FIG7, seed=7)
    manager = SessionManager(speculate=False, kernel_batch=False)

    def timed_session():
        managed = manager.create(
            CreateSpec(
                {"inline": instance_to_dict(instance)},
                instance,
                "L2S",
                0,
                None,
            )
        )
        latencies, asked = [], []
        while len(asked) < max_questions:
            started = time.perf_counter()
            question = manager.propose_question(managed)
            latencies.append(time.perf_counter() - started)
            if question is None:
                break
            asked.append(question.class_id)
            manager.record_answer(
                managed, question.question_id, Label.NEGATIVE
            )
        return latencies, asked

    try:
        cold_latencies, cold_asked = timed_session()
        warm_latencies, warm_asked = timed_session()
        assert warm_asked == cold_asked, (
            "plan-cache warm session diverged from the cold run"
        )
        stats = manager.stats()["plan_cache"]
    finally:
        manager.close(wait=True)
    cold = latency_summary(cold_latencies)
    warm = latency_summary(warm_latencies)
    cell = {
        "config": f"fig7-largest{LARGEST_FIG7.label}",
        "strategy": "L2S",
        "oracle": "adversarial (all-negative)",
        "questions_per_session": len(cold_asked),
        "cold_question_latency": cold,
        "warm_question_latency": warm,
        "p95_speedup": round(
            cold["p95_ms"] / max(warm["p95_ms"], 1e-9), 3
        ),
        "plan_cache": stats,
        "parity_checked": True,
    }
    print(
        f"[bench] plan cache ({len(cold_asked)} questions): cold p95 "
        f"{cold['p95_ms']}ms vs warm p95 {warm['p95_ms']}ms "
        f"({cell['p95_speedup']}x)",
        flush=True,
    )
    return cell


# --- batched-kernel cell -----------------------------------------------------

#: Synthetic bands where the planner exports batchable jobs: an L2S
#: band (|N| ≈ 40 after the adversarial drive) and a larger L1S band
#: (|N| ≈ 380).  Both sit inside the export floor — see
#: ``IncrementalLookaheadPlanner.export_batch_job``.
L2S_BAND = (SyntheticConfig(3, 3, 100, 20), 2, 40)
L1S_BAND = (SyntheticConfig(4, 4, 100, 20), 1, 400)

#: The kernel-segment speedup the committed full run must clear; the
#: committed BENCH_plan.json measures well above it.
BATCHED_KERNEL_GATE_MIN = 2.0
BATCHED_KERNEL_GATE_MIN_SMOKE = 1.3

#: Aggregate answers/s with batching must never regress below this
#: fraction of the per-session path (the end-to-end ratio is diluted
#: by the non-kernel answer cost — record/advance/skyline — which both
#: modes pay identically).
BATCHED_THROUGHPUT_FLOOR = 0.9


def _band_sessions(config, depth, seeds, target_max):
    """Sessions pinned (via the all-negative oracle) at the first state
    whose planner exports a batch job with ``|N| <= target_max``."""
    instance = generate_synthetic(config, seed=7)
    index = SignatureIndex(instance)
    pinned = []
    for seed in seeds:
        strategy = LookaheadSkylineStrategy(depth=depth)
        session = InferenceSession(instance, strategy, index=index, seed=seed)
        for _ in range(30):
            planner = strategy.planner_for(session.state)
            if (
                planner.ids.size <= target_max
                and planner.export_batch_job() is not None
            ):
                pinned.append(session)
                break
            question = session.propose()
            if question is None:
                break
            session.answer(question.question_id, Label.NEGATIVE)
    return pinned


def _batched_round(snapshots, sessions, batched):
    """One steady-state answer round over ``sessions`` forked copies of
    the pinned band sessions.  Population forks are outside the timed
    region (fork cost is identical in both modes and not what this cell
    measures).  The kernel segment — entropy-table production — is
    timed separately from the full round wall-clock; both modes then
    run the identical propose/answer tail off the primed tables."""
    population = [
        snapshots[i % len(snapshots)].fork() for i in range(sessions)
    ]
    transcript = []
    wall_started = time.perf_counter()
    kernel_started = time.perf_counter()
    if batched:
        jobs, owners = [], []
        for session in population:
            strategy = session.strategy
            planner = strategy.planner_for(session.state)
            job = planner.export_batch_job()
            if job is not None:
                jobs.append(job)
                owners.append((session, strategy))
        if jobs:
            for (session, strategy), table in zip(
                owners, batched_entropies(jobs)
            ):
                strategy.prime_entropies(session.state, table)
    else:
        for session in population:
            strategy = session.strategy
            planner = strategy.planner_for(session.state)
            strategy.prime_entropies(session.state, planner.entropies())
    kernel_seconds = time.perf_counter() - kernel_started
    for session in population:
        question = session.propose()
        session.answer(question.question_id, Label.NEGATIVE)
        transcript.append(question.class_id)
    wall_seconds = time.perf_counter() - wall_started
    return transcript, wall_seconds, kernel_seconds


def bench_batched_kernels(sessions, rounds) -> dict:
    """Cross-session batched L1S/L2S kernels vs the per-session planner
    on one shared index: ``sessions`` concurrent sessions (a ragged
    L2S + L1S mix), ``rounds`` interleaved A/B answer rounds, question
    transcripts asserted identical before any timing is trusted."""
    l2s = _band_sessions(L2S_BAND[0], L2S_BAND[1], range(16), L2S_BAND[2])
    l1s = _band_sessions(L1S_BAND[0], L1S_BAND[1], range(16), L1S_BAND[2])
    snapshots = l2s + l1s
    warm = min(32, sessions)
    _batched_round(snapshots, warm, True)
    _batched_round(snapshots, warm, False)

    totals = {True: [0.0, 0.0, 0], False: [0.0, 0.0, 0]}
    for _ in range(rounds):
        # Modes interleave round-by-round so allocator and cache state
        # drift hits both equally.
        per_tr, per_wall, per_kernel = _batched_round(
            snapshots, sessions, False
        )
        bat_tr, bat_wall, bat_kernel = _batched_round(
            snapshots, sessions, True
        )
        assert per_tr == bat_tr, (
            "batched/per-session question transcripts diverged"
        )
        totals[False][0] += per_wall
        totals[False][1] += per_kernel
        totals[False][2] += len(per_tr)
        totals[True][0] += bat_wall
        totals[True][1] += bat_kernel
        totals[True][2] += len(bat_tr)

    def mode_row(batched):
        wall, kernel, answers = totals[batched]
        return {
            "wall_seconds": round(wall, 4),
            "kernel_seconds": round(kernel, 4),
            "answers_total": answers,
            "answers_per_second": round(answers / wall, 1),
        }

    per_session, batched = mode_row(False), mode_row(True)
    cell = {
        "bands": {
            "L2S": {
                "config": L2S_BAND[0].label,
                "informative_max": L2S_BAND[2],
                "pinned_sessions": len(l2s),
            },
            "L1S": {
                "config": L1S_BAND[0].label,
                "informative_max": L1S_BAND[2],
                "pinned_sessions": len(l1s),
            },
        },
        "sessions": sessions,
        "rounds": rounds,
        "oracle": "adversarial (all-negative)",
        "per_session": per_session,
        "batched": batched,
        "kernel_segment_speedup": round(
            totals[False][1] / max(totals[True][1], 1e-9), 3
        ),
        "answer_throughput_ratio": round(
            batched["answers_per_second"]
            / max(per_session["answers_per_second"], 1e-9),
            3,
        ),
        "parity_checked": True,
    }
    print(
        f"[bench] batched kernels ({sessions} sessions x {rounds} "
        f"rounds): kernel segment "
        f"{cell['kernel_segment_speedup']}x, answer throughput "
        f"{cell['answer_throughput_ratio']}x",
        flush=True,
    )
    return cell


# --- harness -----------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    largest_label = f"fig7-largest{LARGEST_FIG7.label}"
    if smoke:
        configs = [
            (config.label, config) for config in PAPER_CONFIGS[:2]
        ] + [(largest_label, LARGEST_FIG7)]
        seeds, rounds = [0], 3
        max_questions, think_seconds = 21, 0.15
    else:
        configs = [
            (config.label, config) for config in PAPER_CONFIGS
        ] + [(largest_label, LARGEST_FIG7), (f"stress{STRESS.label}", STRESS)]
        seeds, rounds = [0, 1], 4
        max_questions, think_seconds = 30, 0.2

    sessions = bench_lookahead_sessions(configs, seeds, rounds)
    speculation = bench_speculation(max_questions, think_seconds)
    batch_sessions, batch_rounds = (128, 3) if smoke else (256, 6)
    batched_kernels = bench_batched_kernels(batch_sessions, batch_rounds)
    plan_cache = bench_plan_cache(16 if smoke else 48)

    largest = next(c for c in sessions if c["config"] == largest_label)
    # The gate compares *full-length* sessions (the adversarial oracle
    # runs the informative set down one class at a time — every other
    # oracle collapses it in a handful of questions, leaving nothing to
    # reuse across steps and nothing meaningful to time).
    l2s = largest["depths"]["L2S"]["oracles"]["adversarial"]
    return {
        "meta": bench_meta(smoke=smoke),
        "lookahead_sessions": sessions,
        "speculation": speculation,
        "batched_kernels": batched_kernels,
        "plan_cache": plan_cache,
        "acceptance": {
            "largest_fig7_config": largest_label,
            "gate_scope": "full-length (adversarial-oracle) sessions",
            "l2s_incremental_ms": l2s["incremental_ms"],
            "l2s_from_scratch_ms": l2s["from_scratch_ms"],
            "l2s_strictly_below": (
                l2s["incremental_ms"] <= l2s["from_scratch_ms"]
            ),
            "l2s_gate_tolerance": L2S_GATE_TOLERANCE,
            "l2s_gate": (
                l2s["incremental_ms"]
                <= l2s["from_scratch_ms"] * L2S_GATE_TOLERANCE
            ),
            "speculation_p95_with_ms": speculation["with_speculation"][
                "answer_round_latency"
            ]["p95_ms"],
            "speculation_p95_without_ms": speculation[
                "without_speculation"
            ]["answer_round_latency"]["p95_ms"],
            "speculation_gate": (
                speculation["with_speculation"]["answer_round_latency"][
                    "p95_ms"
                ]
                < speculation["without_speculation"][
                    "answer_round_latency"
                ]["p95_ms"]
            ),
            "speculation_hit_ratio": speculation["with_speculation"][
                "speculation"
            ]["hit_ratio"],
            "batched_kernel_seconds": batched_kernels["batched"][
                "kernel_seconds"
            ],
            "per_session_kernel_seconds": batched_kernels["per_session"][
                "kernel_seconds"
            ],
            "batched_kernel_segment_speedup": batched_kernels[
                "kernel_segment_speedup"
            ],
            "batched_kernel_gate_min": (
                BATCHED_KERNEL_GATE_MIN_SMOKE
                if smoke
                else BATCHED_KERNEL_GATE_MIN
            ),
            "batched_kernel_gate": (
                batched_kernels["kernel_segment_speedup"]
                >= (
                    BATCHED_KERNEL_GATE_MIN_SMOKE
                    if smoke
                    else BATCHED_KERNEL_GATE_MIN
                )
            ),
            "batched_answer_throughput_ratio": batched_kernels[
                "answer_throughput_ratio"
            ],
            "batched_throughput_floor": BATCHED_THROUGHPUT_FLOOR,
            "batched_throughput_gate": (
                batched_kernels["answer_throughput_ratio"]
                >= BATCHED_THROUGHPUT_FLOOR
            ),
            "plan_cache_cold_p95_ms": plan_cache[
                "cold_question_latency"
            ]["p95_ms"],
            "plan_cache_warm_p95_ms": plan_cache[
                "warm_question_latency"
            ]["p95_ms"],
            "plan_cache_p95_speedup": plan_cache["p95_speedup"],
            "plan_cache_gate_min": (
                PLAN_CACHE_GATE_MIN_SMOKE
                if smoke
                else PLAN_CACHE_GATE_MIN
            ),
            "plan_cache_gate": (
                plan_cache["p95_speedup"]
                >= (
                    PLAN_CACHE_GATE_MIN_SMOKE
                    if smoke
                    else PLAN_CACHE_GATE_MIN
                )
            ),
            # Raw counters so the trajectory checker re-derives the
            # identity instead of trusting a pass/fail bool.
            "plan_cache_misses": plan_cache["plan_cache"]["misses"],
            "plan_cache_local_hits": plan_cache["plan_cache"][
                "local_hits"
            ],
            "plan_cache_shared_hits": plan_cache["plan_cache"][
                "shared_hits"
            ],
            "plan_cache_computes": plan_cache["plan_cache"][
                "computes"
            ],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_plan.json"
        ),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2 Fig. 7 configs + the largest, fewer seeds — a CI canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    for cell in report["lookahead_sessions"]:
        for depth, row in cell["depths"].items():
            print(
                f"  {cell['config']:>24s} {depth}: "
                f"incremental {row['incremental_ms']:9.2f}ms   "
                f"from-scratch {row['from_scratch_ms']:9.2f}ms   "
                f"{row['speedup']}x"
            )
    speculation = report["speculation"]
    print(
        f"  speculation ({speculation['workload']}): answer-round p95 "
        f"{speculation['with_speculation']['answer_round_latency']['p95_ms']}ms"
        f" with vs "
        f"{speculation['without_speculation']['answer_round_latency']['p95_ms']}ms"
        f" without ({speculation['p95_speedup']}x), hit ratio "
        f"{speculation['with_speculation']['speculation']['hit_ratio']}"
    )
    batched = report["batched_kernels"]
    print(
        f"  batched kernels ({batched['sessions']} sessions): "
        f"kernel segment {batched['kernel_segment_speedup']}x, "
        f"answer throughput {batched['answer_throughput_ratio']}x"
    )
    plan_cache = report["plan_cache"]
    print(
        f"  plan cache ({plan_cache['config']}): cold p95 "
        f"{plan_cache['cold_question_latency']['p95_ms']}ms vs warm "
        f"p95 {plan_cache['warm_question_latency']['p95_ms']}ms "
        f"({plan_cache['p95_speedup']}x)"
    )
    acceptance = report["acceptance"]
    gates = [
        ("l2s_gate", acceptance["l2s_gate"]),
        ("batched_kernel_gate", acceptance["batched_kernel_gate"]),
        ("batched_throughput_gate", acceptance["batched_throughput_gate"]),
        ("plan_cache_gate", acceptance["plan_cache_gate"]),
    ]
    if not report["meta"]["smoke"]:
        gates.append(("speculation_gate", acceptance["speculation_gate"]))
    for name, ok in gates:
        print(f"acceptance: {name} → {'OK' if ok else 'FAIL'}")
    return 0 if all(ok for _, ok in gates) else 1


if __name__ == "__main__":
    raise SystemExit(main())
