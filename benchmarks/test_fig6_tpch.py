"""Figures 6a–6d: TPC-H joins — interactions and inference time.

Each benchmark reproduces one (scale, join, strategy) cell: the measured
time is the paper's "inference time" (Figures 6c/6d) and the attached
``extra_info['interactions']`` is the paper's "number of interactions"
(Figures 6a/6b).

Paper shapes to compare against (not absolute numbers — the substrate
differs, see EXPERIMENTS.md):

* joins of size 1 (Joins 1–4) are inferred within a handful of
  interactions by BU/TD/L1S/L2S at any scale;
* Join 5 (size 2, highest join ratio) needs the most interactions, and
  lookahead pays off there;
* L2S is orders of magnitude slower than the local strategies, L1S in
  between (Figure 6c/6d's ordering BU≈TD≈RND ≪ L1S ≪ L2S).
"""

from __future__ import annotations

import pytest

from repro.core import PerfectOracle, run_inference, strategy_by_name
from repro.data import WORKLOAD_NAMES

STRATEGIES = ("RND", "BU", "TD", "L1S", "L2S")


def _run_cell(workload, index, strategy_name):
    strategy = strategy_by_name(strategy_name)
    oracle = PerfectOracle(workload.instance, workload.goal)
    result = run_inference(
        workload.instance, strategy, oracle, index=index, seed=0
    )
    assert result.matches_goal(workload.instance, workload.goal)
    return result


@pytest.mark.parametrize("strategy_name", STRATEGIES)
@pytest.mark.parametrize("join_name", WORKLOAD_NAMES)
def test_fig6_small_scale(
    benchmark, tpch_small, tpch_indexes, join_name, strategy_name
):
    """Figure 6a (interactions) + 6c (time) at the small scale."""
    workload = tpch_small[join_name]
    index = tpch_indexes[("small", join_name)]
    benchmark.group = f"fig6-small-{join_name}"
    result = benchmark.pedantic(
        _run_cell,
        args=(workload, index, strategy_name),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["goal_size"] = workload.goal_size


@pytest.mark.parametrize("strategy_name", STRATEGIES)
@pytest.mark.parametrize("join_name", WORKLOAD_NAMES)
def test_fig6_large_scale(
    benchmark, tpch_large, tpch_indexes, join_name, strategy_name
):
    """Figure 6b (interactions) + 6d (time) at the large scale."""
    workload = tpch_large[join_name]
    index = tpch_indexes[("large", join_name)]
    benchmark.group = f"fig6-large-{join_name}"
    result = benchmark.pedantic(
        _run_cell,
        args=(workload, index, strategy_name),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["goal_size"] = workload.goal_size
