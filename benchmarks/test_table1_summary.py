"""Table 1: Cartesian-product sizes, join ratios, and the quotient cost.

The summary columns of Table 1 are instance descriptors; the benchmark
times the signature-index construction (the one-off cost every strategy
shares) and attaches the descriptors as ``extra_info`` so the harness
output carries the full Table 1 row.

Paper values to compare shapes against: TPC-H join ratios 1–2.1 (higher
for Join 4/5 than for Joins 1–3), synthetic ratios 1.3–1.7.
"""

from __future__ import annotations

import pytest

from repro.core import SignatureIndex
from repro.data import PAPER_CONFIGS, WORKLOAD_NAMES, generate_synthetic
from repro.experiments import compute_metrics


@pytest.mark.parametrize("join_name", WORKLOAD_NAMES)
def test_table1_tpch_descriptors(benchmark, tpch_small, join_name):
    workload = tpch_small[join_name]
    benchmark.group = "table1-tpch"
    index = benchmark.pedantic(
        SignatureIndex, args=(workload.instance,), rounds=1, iterations=1
    )
    metrics = compute_metrics(workload.instance, index)
    benchmark.extra_info["cartesian_size"] = metrics.cartesian_size
    benchmark.extra_info["join_ratio"] = round(metrics.join_ratio, 3)
    benchmark.extra_info["signatures"] = metrics.distinct_signatures
    # Shape assertions mirroring Table 1's ordering of ratios.
    assert 1.0 <= metrics.join_ratio <= 3.0


@pytest.mark.parametrize(
    "label", [config.label for config in PAPER_CONFIGS]
)
def test_table1_synthetic_descriptors(benchmark, label):
    config = next(c for c in PAPER_CONFIGS if c.label == label)
    instance = generate_synthetic(config, seed=0)
    benchmark.group = "table1-synthetic"
    index = benchmark.pedantic(
        SignatureIndex, args=(instance,), rounds=1, iterations=1
    )
    metrics = compute_metrics(instance, index)
    benchmark.extra_info["cartesian_size"] = metrics.cartesian_size
    benchmark.extra_info["join_ratio"] = round(metrics.join_ratio, 3)
    # Table 1's synthetic ratios live in a narrow band (1.3–1.7).
    assert 0.8 <= metrics.join_ratio <= 2.2


def test_table1_join_ratio_orders_difficulty(tpch_small):
    """§5.3: 'the bigger the join ratio, the more interactions are
    needed' — Join 4/5 (ratio ≈ 2+) vs Joins 1–3 (ratio ≈ 1.1–1.4)."""
    ratios = {
        name: compute_metrics(workload.instance).join_ratio
        for name, workload in tpch_small.items()
    }
    assert ratios["join4"] > ratios["join1"]
    assert ratios["join5"] > ratios["join3"]
