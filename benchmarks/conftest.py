"""Shared fixtures for the benchmark harness.

Every figure/table of the paper has a benchmark module:

* ``test_fig6_tpch.py``        — Figures 6a–6d (TPC-H interactions/time)
* ``test_fig7_synthetic.py``   — Figures 7a–7l (synthetic sweeps)
* ``test_table1_summary.py``   — Table 1 (sizes, join ratios, best strategy)
* ``test_thm61_semijoin.py``   — Theorem 6.1 (semijoin consistency solvers)
* ``test_ablation_*.py``       — design-choice ablations beyond the paper

Benchmarks run one inference per round (``pedantic``), and attach the
paper's other metric — the interaction count — as ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core import SignatureIndex
from repro.data import generate_tpch, tpch_workloads


@pytest.fixture(scope="session")
def tpch_small():
    """The paper's SF=1 stand-in (see DESIGN.md §3 for the mapping)."""
    tables = generate_tpch(scale=1.0, seed=0)
    return {w.name: w for w in tpch_workloads(tables)}


@pytest.fixture(scope="session")
def tpch_large():
    """The paper's SF=100000 stand-in."""
    tables = generate_tpch(scale=4.0, seed=0)
    return {w.name: w for w in tpch_workloads(tables)}


@pytest.fixture(scope="session")
def tpch_indexes(tpch_small, tpch_large):
    """Pre-built signature indexes (built once, shared by strategies —
    the per-strategy timing matches the paper's protocol)."""
    indexes = {}
    for scale_label, workloads in (
        ("small", tpch_small),
        ("large", tpch_large),
    ):
        for name, workload in workloads.items():
            indexes[(scale_label, name)] = SignatureIndex(
                workload.instance
            )
    return indexes
