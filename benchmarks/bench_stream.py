"""Streaming-protocol benchmark harness — emits ``BENCH_stream.json``.

Measures what the PR 10 streaming session protocol buys and what the
observability plane costs:

* ``latency`` — the same think-time-paced oracle drives sessions twice:
  **polled** (``GET /question`` after every answer, the pre-streaming
  protocol) and **streamed** (``GET /sessions/{id}/stream``, the server
  pushes each next question the moment speculation or a kernel batch
  resolves it).  The measured quantity is identical on both paths: the
  wall-clock from ``POST /answer`` returning to the next question being
  in the client's hand.  The gate: streamed p50 strictly beats polled
  p50 — the push overlaps the answer round-trip, so by the time the
  answer response lands the next question is usually already queued
  client-side.  **Parity first**: the polled and streamed runs of every
  (strategy, seed) must produce the bit-for-bit identical
  ``(question_id, class_id)`` sequence, and both must match the
  in-process ``run_inference`` reference, before any timing is trusted.
* ``fanout`` — the serving benchmark's concurrent-session load run
  twice: bare, and with **≥ 256 subscribers** attached to the
  service-wide event feed.  The load is think-time paced like the
  latency cell — the protocol being served is interactive inference,
  where a user labels one tuple pair per round — so the feed's
  delivery work overlaps oracle think time instead of racing the
  answer path for the CPU.  The subscribers live in a child process
  (one selector drains all sockets) the way real feed consumers do —
  measuring them in-process would charge the server's answer latency
  for its clients' GIL time.  Server-side, every event's SSE frame is
  encoded once, and the off-loop ``service-feed`` thread coalesces
  frames into shared chunks sent to every socket, so the gate is
  answer p95 with fan-out staying within 25 % of the bare run on the
  committed full run (the CI smoke cell tolerates more noise; see
  ``check_trajectory.py``).  ``cpu_count`` is recorded in the report
  so gate readers can see how much true overlap the runner allowed.
  Every timed session is parity-checked against the in-process
  reference, and every subscriber must have received **every** event
  frame before the cell passes.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py            # full run
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_stream.py --output my.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import queue
import selectors
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PerfectOracle, SignatureIndex
from repro.data import generate_tpch, tpch_workloads
from repro.service import (
    IndexCache,
    ServiceClient,
    ServiceServer,
    SessionManager,
)

from bench_util import (
    bench_meta,
    expected_pairs,
    latency_summary,
    remote_answerer,
)

TPCH_SEED = 0
TPCH_SCALE = 1.0
WORKLOAD = "tpch/join4"
WORKLOAD_INDEX = 3
CLIENT_THREADS = 8
#: Oracle think time per answer in the fan-out serving load — the
#: protocol is interactive (a user labels one pair per round), and the
#: think gaps are where feed delivery overlaps the answer path.
SERVING_THINK = 0.05
#: The committed full-run gate: answer p95 under fan-out stays within
#: this percentage of the bare run, OR within the absolute floor below
#: (CI smoke gates looser).  The floor exists because under the paced
#: interactive load the bare p95 is sub-millisecond — at that scale a
#: pure ratio gate prices scheduler noise, not fan-out: +0.3 ms reads
#: as 25 %.  On a 1-core runner (``cpu_count`` is in the report) feed
#: delivery cannot overlap the answer path at all, so the absolute
#: floor is what binds; multi-core runners are held to the ratio.
FANOUT_OVERHEAD_MAX_PCT = 25.0
FANOUT_OVERHEAD_ABS_MAX_MS = 2.0


def _workload_oracle():
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[WORKLOAD_INDEX]
    return workload, PerfectOracle(workload.instance, workload.goal)


# --- latency cell ------------------------------------------------------------


def _question_key(question: dict) -> tuple:
    """The identity of one question for sequence parity: id + the
    actual tuple pair asked about (the payload shape both the polled
    route and the streamed events share)."""
    return (
        question["question_id"],
        tuple(question["left"]["row"]),
        tuple(question["right"]["row"]),
    )


def _drive_polled(server, strategy, seed, oracle, think, latencies):
    """One session over ask/answer polling; returns its question
    sequence and final interaction count."""
    answer = remote_answerer(oracle)
    sequence = []
    with ServiceClient(server.host, server.port) as client:
        info = client.create_session(
            workload=WORKLOAD,
            strategy=strategy,
            seed=seed,
            workload_seed=TPCH_SEED,
            scale=TPCH_SCALE,
        )
        session_id = info["session_id"]
        question = client.next_question(session_id)
        while question is not None:
            sequence.append(_question_key(question))
            time.sleep(think)  # the oracle thinks, then labels
            client.post_answer(
                session_id, question["question_id"], answer(question)
            )
            started = time.perf_counter()
            question = client.next_question(session_id)
            latencies.append(time.perf_counter() - started)
        final = client.predicate(session_id)
    return sequence, final


def _drive_streamed(server, strategy, seed, oracle, think, latencies):
    """The same session shape over the SSE stream: answers go over
    POST, questions arrive pushed — the timed wait is on the local
    event queue, not on a request round-trip."""
    answer = remote_answerer(oracle)
    sequence = []
    client = ServiceClient(server.host, server.port)
    info = client.create_session(
        workload=WORKLOAD,
        strategy=strategy,
        seed=seed,
        workload_seed=TPCH_SEED,
        scale=TPCH_SCALE,
    )
    session_id = info["session_id"]
    events: queue.Queue = queue.Queue()

    def consume():
        try:
            for event in client.stream_session(session_id):
                events.put(event)
                if event["event"] in ("done", "reconnect"):
                    return
        finally:
            events.put(None)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()

    def next_question():
        """The next pushed question, or ``None`` on done/stream end."""
        while True:
            event = events.get(timeout=120)
            if event is None or event["event"] == "done":
                return None
            if event["event"] == "question":
                return event

    question = next_question()  # snapshot question, untimed
    while question is not None:
        sequence.append(_question_key(question))
        time.sleep(think)
        client.post_answer(
            session_id, question["question_id"], answer(question)
        )
        started = time.perf_counter()
        question = next_question()
        latencies.append(time.perf_counter() - started)
    consumer.join(timeout=30)
    final = client.predicate(session_id)
    client.close()
    return sequence, final


def bench_latency(sessions: int, think: float) -> dict:
    """Polled vs streamed question latency under a think-time-paced
    oracle, parity-checked before the timings are compared."""
    workload, oracle = _workload_oracle()
    reference_index = SignatureIndex(workload.instance)
    strategies = ["TD", "L1S", "L2S"]
    jobs = [
        (seed, strategy)
        for seed, strategy in zip(
            range(sessions), itertools.cycle(strategies)
        )
    ]
    polled_lat: list[float] = []
    streamed_lat: list[float] = []
    parity_sessions = 0
    manager = SessionManager(
        index_cache=IndexCache(), max_sessions=sessions * 4
    )
    with ServiceServer(manager=manager) as server:
        # Warm the index cache so neither path pays the one-off build.
        with ServiceClient(server.host, server.port) as warm:
            info = warm.create_session(
                workload=WORKLOAD,
                strategy="TD",
                seed=999,
                workload_seed=TPCH_SEED,
                scale=TPCH_SCALE,
            )
            warm.delete_session(info["session_id"])
        for seed, strategy in jobs:
            polled_seq, polled_final = _drive_polled(
                server, strategy, seed, oracle, think, polled_lat
            )
            streamed_seq, streamed_final = _drive_streamed(
                server, strategy, seed, oracle, think, streamed_lat
            )
            # Parity gates before timing: identical question sequence,
            # identical result, both matching the in-process reference.
            assert streamed_seq == polled_seq, (
                f"stream/poll divergence: {strategy} seed={seed}: "
                f"{streamed_seq} != {polled_seq}"
            )
            pairs, interactions = expected_pairs(
                workload.instance, strategy, seed, oracle, reference_index
            )
            for final in (polled_final, streamed_final):
                assert final["predicate"]["pairs"] == pairs
                assert final["progress"]["interactions"] == interactions
            assert len(polled_seq) == interactions
            parity_sessions += 1
    polled = latency_summary(polled_lat)
    streamed = latency_summary(streamed_lat)
    return {
        "workload": WORKLOAD,
        "strategies": strategies,
        "sessions": sessions,
        "think_seconds": think,
        "rounds": len(polled_lat),
        "polled_question_latency": polled,
        "streamed_question_latency": streamed,
        "speedup_p50": round(
            polled["p50_ms"] / max(streamed["p50_ms"], 1e-6), 3
        ),
        "parity": {"checked": True, "sessions": parity_sessions},
    }


# --- fan-out cell ------------------------------------------------------------


class _FeedDrain:
    """N raw-socket subscribers on ``GET /events/stream``, drained by
    one selector thread (256 client threads would measure the GIL, not
    the server's fan-out)."""

    def __init__(self, host: str, port: int, count: int):
        self.frames = [0] * count
        self._stop = threading.Event()
        self._sockets: list[socket.socket] = []
        request = (
            b"GET /events/stream HTTP/1.1\r\n"
            b"Host: bench\r\n"
            b"Content-Length: 0\r\n"
            b"\r\n"
        )
        for _ in range(count):
            sock = socket.create_connection((host, port))
            sock.sendall(request)
            sock.setblocking(False)
            self._sockets.append(sock)
        self._thread = threading.Thread(
            target=self._drain, name="stream-feed-drain", daemon=True
        )
        self._thread.start()

    def _drain(self) -> None:
        selector = selectors.DefaultSelector()
        for index, sock in enumerate(self._sockets):
            selector.register(sock, selectors.EVENT_READ, index)
        # Seven trailing bytes of carry per socket so a frame marker
        # split across two recv() boundaries is still counted.
        carries = [b""] * len(self._sockets)
        while not self._stop.is_set():
            for key, _ in selector.select(timeout=0.05):
                try:
                    data = key.fileobj.recv(1 << 16)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    selector.unregister(key.fileobj)
                    continue
                if not data:
                    selector.unregister(key.fileobj)
                    continue
                blob = carries[key.data] + data
                self.frames[key.data] += blob.count(b"\nevent: ")
                carries[key.data] = blob[-7:]
        selector.close()

    def wait_for_hello(self, timeout: float = 30.0) -> None:
        """Block until every subscriber received its hello snapshot —
        fan-out must be fully attached before the load starts."""
        deadline = time.monotonic() + timeout
        while min(self.frames) < 1:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"only {sum(f > 0 for f in self.frames)}/"
                    f"{len(self.frames)} subscribers saw hello"
                )
            time.sleep(0.01)

    def wait_for_frames(self, expected: int, timeout: float = 30.0):
        """Block until every subscriber received ``expected`` frames —
        the feed coalesces, so delivery may trail the last answer, but
        it must COMPLETE: every event to every subscriber."""
        deadline = time.monotonic() + timeout
        while min(self.frames) < expected:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"feed delivery incomplete: slowest subscriber saw "
                    f"{min(self.frames)} of {expected} frames"
                )
            time.sleep(0.01)

    def close(self) -> dict:
        self._stop.set()
        self._thread.join(timeout=30)
        for sock in self._sockets:
            sock.close()
        return {
            "subscribers": len(self.frames),
            "frames_min": min(self.frames),
            "frames_max": max(self.frames),
            "frames_total": sum(self.frames),
        }


class _DrainProcess:
    """The :class:`_FeedDrain` hosted in a child process.

    Real feed subscribers are other processes (dashboards, the fleet
    router); an in-process drain thread would fight the measured
    server for the GIL while receiving the fan-out's megabytes, so the
    answer-latency overhead would charge the server for its clients'
    receive work.  The child speaks one line each way: ``READY`` once
    every subscriber saw hello, ``EXPECT <n>`` to wait for complete
    delivery, then the frame-count stats as one JSON line."""

    def __init__(self, host: str, port: int, count: int):
        self._proc = subprocess.Popen(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--drain-worker",
                host,
                str(port),
                str(count),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )

    def wait_ready(self) -> None:
        line = self._proc.stdout.readline()
        if line.strip() != "READY":
            raise RuntimeError(f"drain worker failed to attach: {line!r}")

    def finish(self, expected: int) -> dict:
        """Wait for complete delivery, then return the drain stats."""
        try:
            self._proc.stdin.write(f"EXPECT {expected}\n")
            self._proc.stdin.flush()
            line = self._proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    "drain worker died before confirming delivery"
                )
            stats = json.loads(line)
            self._proc.wait(timeout=30)
            return stats
        finally:
            if self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait(timeout=10)


def _drain_worker(host: str, port: int, count: int) -> int:
    """Child-process entry point behind ``--drain-worker``."""
    drain = _FeedDrain(host, port, count)
    drain.wait_for_hello()
    print("READY", flush=True)
    line = sys.stdin.readline()
    expected = int(line.split()[1])
    drain.wait_for_frames(expected)
    print(json.dumps(drain.close()), flush=True)
    return 0


def _drive_serving(server, strategy, seed, oracle, think, latencies):
    """One remote session under the interactive serving load: think,
    answer, repeat.  Only the ``POST /answer`` round-trip is timed —
    that is the latency fan-out must not regress."""
    answer = remote_answerer(oracle)
    with ServiceClient(server.host, server.port) as client:
        info = client.create_session(
            workload=WORKLOAD,
            strategy=strategy,
            seed=seed,
            workload_seed=TPCH_SEED,
            scale=TPCH_SCALE,
        )
        session_id = info["session_id"]
        while (question := client.next_question(session_id)) is not None:
            time.sleep(think)  # the oracle reads the pair, then labels
            started = time.perf_counter()
            client.post_answer(
                session_id, question["question_id"], answer(question)
            )
            latencies.append(time.perf_counter() - started)
        return client.predicate(session_id)


def _serving_run(sessions: int, oracle, subscribers: int):
    """One concurrent-session load; with ``subscribers`` > 0 the
    service feed fans every event out to that many raw sockets."""
    strategies = ["RND", "BU", "TD", "L1S", "L2S"]
    jobs = list(zip(range(sessions), itertools.cycle(strategies)))
    latencies: list[float] = []
    manager = SessionManager(
        index_cache=IndexCache(),
        max_sessions=sessions * 2,
        speculate=False,
    )
    with ServiceServer(manager=manager) as server:
        drain = (
            _DrainProcess(server.host, server.port, subscribers)
            if subscribers
            else None
        )
        if drain is not None:
            drain.wait_ready()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            outcomes = list(
                pool.map(
                    lambda job: (
                        job,
                        _drive_serving(
                            server,
                            job[1],
                            job[0],
                            oracle,
                            SERVING_THINK,
                            latencies,
                        ),
                    ),
                    jobs,
                )
            )
        with ServiceClient(server.host, server.port) as client:
            dashboard = client.dashboard()
        if drain is not None:
            # Every published event plus the hello snapshot must reach
            # every subscriber — a silently dead feed must fail here,
            # not show up as zero overhead.
            drained = drain.finish(
                dashboard["totals"]["events_total"] + 1
            )
        else:
            drained = None
    return latencies, outcomes, dashboard, drained


def _check_parity(outcomes, workload, reference_index, oracle):
    cache: dict[tuple[str, int], tuple[list, int]] = {}
    for (seed, strategy), final in outcomes:
        key = (strategy, seed)
        if key not in cache:
            cache[key] = expected_pairs(
                workload.instance,
                strategy,
                seed,
                oracle,
                reference_index,
            )
        pairs, interactions = cache[key]
        assert final["predicate"]["pairs"] == pairs, (
            f"parity failed: {strategy} seed={seed}"
        )
        assert final["progress"]["interactions"] == interactions


def bench_fanout(sessions: int, subscribers: int) -> dict:
    """Answer p95 with the event feed fanned out to ``subscribers``
    sockets vs the identical bare load."""
    workload, oracle = _workload_oracle()
    reference_index = SignatureIndex(workload.instance)

    bare_lat, bare_out, _, _ = _serving_run(sessions, oracle, 0)
    _check_parity(bare_out, workload, reference_index, oracle)

    fan_lat, fan_out, dashboard, drained = _serving_run(
        sessions, oracle, subscribers
    )
    _check_parity(fan_out, workload, reference_index, oracle)
    assert drained is not None and (
        drained["frames_min"]
        >= dashboard["totals"]["events_total"] + 1
    ), drained

    bare = latency_summary(bare_lat)
    fanned = latency_summary(fan_lat)
    overhead_pct = round(
        (fanned["p95_ms"] / bare["p95_ms"] - 1.0) * 100.0, 2
    )
    overhead_abs_ms = round(fanned["p95_ms"] - bare["p95_ms"], 3)
    return {
        "workload": WORKLOAD,
        "sessions": sessions,
        "client_threads": CLIENT_THREADS,
        "think_seconds": SERVING_THINK,
        "subscribers": subscribers,
        "answers": len(fan_lat),
        "bare_answer_latency": bare,
        "fanout_answer_latency": fanned,
        "overhead_p95_pct": overhead_pct,
        "overhead_p95_abs_ms": overhead_abs_ms,
        "events_dropped": dashboard["totals"]["events_dropped"],
        "events_total": dashboard["totals"]["events_total"],
        "subscriber_frames": drained,
        "parity_checked": True,
    }


# --- harness -----------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    latency = bench_latency(
        sessions=3 if smoke else 6,
        think=0.01 if smoke else 0.02,
    )
    fanout = bench_fanout(
        sessions=8 if smoke else 32,
        subscribers=64 if smoke else 256,
    )
    return {
        "meta": bench_meta(
            smoke=smoke,
            transport="SSE over chunked HTTP/1.1, loopback",
        ),
        "latency": latency,
        "fanout": fanout,
        "acceptance": {
            "cpu_count": os.cpu_count() or 1,
            "polled_p50_ms": latency["polled_question_latency"][
                "p50_ms"
            ],
            "streamed_p50_ms": latency["streamed_question_latency"][
                "p50_ms"
            ],
            "stream_parity": latency["parity"]["checked"],
            "fanout_subscribers": fanout["subscribers"],
            "fanout_overhead_p95_pct": fanout["overhead_p95_pct"],
            "fanout_overhead_abs_ms": fanout["overhead_p95_abs_ms"],
            "fanout_overhead_max_pct": FANOUT_OVERHEAD_MAX_PCT,
            "fanout_overhead_abs_max_ms": FANOUT_OVERHEAD_ABS_MAX_MS,
            "fanout_parity": fanout["parity_checked"],
            "events_dropped": fanout["events_dropped"],
        },
    }


def main(argv=None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw[:1] == ["--drain-worker"]:
        host, port, count = raw[1], int(raw[2]), int(raw[3])
        return _drain_worker(host, port, count)
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_stream.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI (the committed baseline is a full run)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    acceptance = report["acceptance"]
    print(json.dumps(acceptance, indent=2))
    print(f"report written to {args.output}")
    if not report["meta"]["smoke"]:
        # Full runs assert their own gates; the CI smoke cell is gated
        # (with noise tolerance) by check_trajectory.py instead.
        assert (
            acceptance["streamed_p50_ms"] < acceptance["polled_p50_ms"]
        ), "streaming must beat polling on question latency"
        assert (
            acceptance["fanout_overhead_p95_pct"]
            < FANOUT_OVERHEAD_MAX_PCT
            or acceptance["fanout_overhead_abs_ms"]
            < FANOUT_OVERHEAD_ABS_MAX_MS
        ), "fan-out must not regress answer p95"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
