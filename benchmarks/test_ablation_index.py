"""Ablation: signature-index back ends and scale independence.

Two claims behind our implementation strategy:

* the NumPy (bit-packed, ``np.unique``) construction dominates the pure
  Python one as |D| grows;
* the number of interactions is *independent* of |D| for a fixed value
  distribution — only the signature structure matters — which is why the
  paper's interaction counts barely move between SF=1 and SF=100000.
"""

from __future__ import annotations

import pytest

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    TopDownStrategy,
    run_inference,
)
from repro.data import SyntheticConfig, generate_synthetic


@pytest.mark.parametrize("rows", [50, 200, 400])
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_index_construction_backends(benchmark, backend, rows):
    config = SyntheticConfig(3, 3, rows, 100)
    instance = generate_synthetic(config, seed=3)
    benchmark.group = f"ablation-index-{rows}rows"
    index = benchmark.pedantic(
        SignatureIndex,
        args=(instance,),
        kwargs={"backend": backend},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["classes"] = len(index)
    benchmark.extra_info["cartesian"] = instance.cartesian_size


@pytest.mark.parametrize("rows", [25, 100, 400])
def test_interactions_scale_free(benchmark, rows):
    """TD interaction counts stay flat as |D| grows 256-fold (the paper's
    SF=1 vs SF=100000 observation)."""
    config = SyntheticConfig(2, 2, rows, 10)
    instance = generate_synthetic(config, seed=11)
    index = SignatureIndex(instance)
    goal_pair = instance.omega[0]
    from repro.relational import JoinPredicate

    goal = JoinPredicate([goal_pair])
    benchmark.group = "ablation-scale-free"

    def run():
        return run_inference(
            instance,
            TopDownStrategy(),
            PerfectOracle(instance, goal),
            index=index,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["cartesian"] = instance.cartesian_size
    # With v=10 the signature lattice saturates quickly: interactions
    # stay within a small constant band at every scale.
    assert result.interactions <= 16
