"""Frozen seed implementations, kept verbatim for benchmark baselines.

``bench_core.py`` measures the array-native engine against the code this
repository *started* with, so speedups in ``BENCH_core.json`` track the
same baseline from PR to PR.  Three seed pieces are preserved:

* :func:`legacy_build_index` — the dense one-shot ``(words, |R|, |P|)``
  uint64 signature tensor (63-bit words) uniquified with a single
  ``np.unique(axis=0)`` over the whole product, followed by the seed's
  O(|N|²) maximal-class scan;
* :class:`LegacyInferenceState` — the pure-Python int-mask state that
  rebuilds its informative list from scratch after every label;
* :func:`legacy_entropies_for_informative` — the seed lookahead with a
  Python loop over informative classes (single-word Ω only).

None of this is exported by the package; it exists only so the benchmark
is an honest before/after comparison rather than a guess.
"""

from __future__ import annotations

import random

import numpy as np

from repro.core.entropy import INFINITE_ENTROPY, Entropy, best_skyline_entropy
from repro.core.sample import Label
from repro.core.signatures import (
    SignatureClass,
    SignatureIndex,
    _encode_columns,
)
from repro.core.strategies.base import StatelessStrategy
from repro.relational.relation import Instance

_WORD_BITS = 63  # the seed packed Ω into 63-bit words


# --- seed SignatureIndex construction ----------------------------------------


def legacy_signatures_numpy(instance: Instance) -> dict:
    """Seed construction: one |R|x|P| equality matrix per pair of Ω,
    packed into 63-bit words, then grouped with ``np.unique``."""
    n_left = len(instance.left)
    n_right = len(instance.right)
    if n_left == 0 or n_right == 0:
        return {}
    left, right = _encode_columns(instance)
    n = instance.left.arity
    m = instance.right.arity
    n_words = (n * m + _WORD_BITS - 1) // _WORD_BITS
    words = np.zeros((n_words, n_left, n_right), dtype=np.uint64)
    for i in range(n):
        column_left = left[:, i : i + 1]  # (|R|, 1)
        for j in range(m):
            position = i * m + j
            word_index, bit = divmod(position, _WORD_BITS)
            equal = column_left == right[None, :, j]  # (|R|, |P|)
            words[word_index] |= equal.astype(np.uint64) << np.uint64(bit)
    flat = words.reshape(n_words, n_left * n_right).T  # (|D|, n_words)
    unique_rows, first_index, counts = np.unique(
        flat, axis=0, return_index=True, return_counts=True
    )
    found = {}
    left_rows = instance.left.rows
    right_rows = instance.right.rows
    for row_words, first, count in zip(unique_rows, first_index, counts):
        mask = 0
        for word_index, word in enumerate(row_words):
            mask |= int(word) << (_WORD_BITS * word_index)
        r_index, p_index = divmod(int(first), n_right)
        found[mask] = (int(count), (left_rows[r_index], right_rows[p_index]))
    return found


def _legacy_maximal_ids(classes) -> frozenset:
    """Seed maximal computation: the quadratic all-pairs subset scan."""
    masks = [cls.mask for cls in classes]
    maximal = []
    for cls in classes:
        has_superset = any(
            other != cls.mask and cls.mask & ~other == 0 for other in masks
        )
        if not has_superset:
            maximal.append(cls.class_id)
    return frozenset(maximal)


def legacy_build_index(instance: Instance):
    """The seed constructor end to end: dense tensor, unique, quadratic
    maximal scan.  Returns ``(classes, maximal_ids)`` so nothing is
    optimised away."""
    found = legacy_signatures_numpy(instance)
    ordered = sorted(
        found.items(), key=lambda item: (item[0].bit_count(), item[0])
    )
    classes = tuple(
        SignatureClass(class_id, mask, count, representative)
        for class_id, (mask, (count, representative)) in enumerate(ordered)
    )
    return classes, _legacy_maximal_ids(classes)


# --- seed InferenceState ------------------------------------------------------


class LegacyInferenceState:
    """The seed state: int masks, full informative rescan per label.

    Implements the subset of the ``InferenceState`` API the session and
    the lookahead strategies touch.
    """

    __slots__ = (
        "_index",
        "_t_plus",
        "_negative_masks",
        "_labels",
        "_informative_cache",
    )

    def __init__(self, index: SignatureIndex):
        self._index = index
        self._t_plus = index.omega_mask
        self._negative_masks: list[int] = []
        self._labels: dict[int, Label] = {}
        self._informative_cache: list[int] | None = None

    @property
    def index(self) -> SignatureIndex:
        return self._index

    @property
    def t_plus_mask(self) -> int:
        return self._t_plus

    @property
    def negative_masks(self) -> tuple[int, ...]:
        return tuple(self._negative_masks)

    @property
    def interaction_count(self) -> int:
        return len(self._labels)

    def record(self, class_id: int, label: Label) -> None:
        existing = self._labels.get(class_id)
        if existing is not None and existing is not label:
            raise ValueError(f"class {class_id} already labeled {existing}")
        self._labels[class_id] = label
        mask = self._index[class_id].mask
        if label is Label.POSITIVE:
            self._t_plus &= mask
        else:
            self._negative_masks.append(mask)
        self._informative_cache = None

    def is_certain_positive(self, class_id: int) -> bool:
        mask = self._index[class_id].mask
        return self._t_plus & ~mask == 0

    def is_certain_negative(self, class_id: int) -> bool:
        needle = self._t_plus & self._index[class_id].mask
        return any(needle & ~neg == 0 for neg in self._negative_masks)

    def is_certain(self, class_id: int) -> bool:
        return self.is_certain_positive(class_id) or self.is_certain_negative(
            class_id
        )

    def is_consistent_with(self, class_id: int, label: Label) -> bool:
        if label is Label.POSITIVE:
            return not self.is_certain_negative(class_id)
        return not self.is_certain_positive(class_id)

    def informative_class_ids(self) -> list[int]:
        if self._informative_cache is None:
            self._informative_cache = [
                cls.class_id
                for cls in self._index
                if cls.class_id not in self._labels
                and not self.is_certain(cls.class_id)
            ]
        return list(self._informative_cache)

    def has_informative(self) -> bool:
        return bool(self.informative_class_ids())

    def result_mask(self) -> int:
        return self._t_plus


# --- seed lookahead -----------------------------------------------------------


def _setup(state, informative):
    index = state.index
    masks = np.array(
        [index[class_id].mask for class_id in informative], dtype=np.uint64
    )
    counts = np.array(
        [index[class_id].count for class_id in informative], dtype=np.int64
    )
    t_plus = np.uint64(state.t_plus_mask)
    negatives = [np.uint64(mask) for mask in state.negative_masks]
    return masks, counts, t_plus, negatives


def _certain_vector(masks, t_plus, negatives):
    certain = (t_plus & ~masks) == 0
    needles = t_plus & masks
    for negative in negatives:
        certain |= (needles & ~negative) == 0
    return certain


def _entropy1_per_class(state, informative) -> dict[int, Entropy]:
    masks, counts, t_plus, negatives = _setup(state, informative)
    out: dict[int, Entropy] = {}
    for position, class_id in enumerate(informative):
        mask = masks[position]
        t2 = t_plus & mask
        u_pos = int(counts[_certain_vector(masks, t2, negatives)].sum()) - 1
        u_neg = (
            int(
                counts[
                    _certain_vector(masks, t_plus, negatives + [mask])
                ].sum()
            )
            - 1
        )
        out[class_id] = (min(u_pos, u_neg), max(u_pos, u_neg))
    return out


def _entropy2_per_class(state, informative) -> dict[int, Entropy]:
    masks, counts, t_plus, negatives = _setup(state, informative)
    out: dict[int, Entropy] = {}
    for position, class_id in enumerate(informative):
        per_label: list[Entropy] = []
        for is_positive in (True, False):
            mask = masks[position]
            if is_positive:
                t2, negatives1 = t_plus & mask, negatives
            else:
                t2, negatives1 = t_plus, negatives + [mask]
            certain1 = _certain_vector(masks, t2, negatives1)
            still_informative = ~certain1
            if not still_informative.any():
                per_label.append(INFINITE_ENTROPY)
                continue
            inner_masks = masks[still_informative]
            t3 = (t2 & inner_masks)[:, None]  # (|inf1|, 1)
            certain_pos = (t3 & ~masks[None, :]) == 0
            needles = t3 & masks[None, :]
            for negative in negatives1:
                certain_pos |= (needles & ~negative) == 0
            u_pos = certain_pos @ counts - 2  # (|inf1|,)
            base_certain_pos = (t2 & ~masks) == 0
            base_needles = t2 & masks
            certain_neg = np.broadcast_to(
                base_certain_pos, (len(inner_masks), len(masks))
            ).copy()
            for negative in negatives1:
                certain_neg |= (base_needles & ~negative) == 0
            certain_neg |= (
                base_needles[None, :] & ~inner_masks[:, None]
            ) == 0
            u_neg = certain_neg @ counts - 2
            lows = np.minimum(u_pos, u_neg)
            highs = np.maximum(u_pos, u_neg)
            best_low = int(lows.max())
            best_high = int(highs[lows == best_low].max())
            per_label.append((best_low, best_high))
        out[class_id] = min(per_label)
    return out


def legacy_entropies_for_informative(state, depth: int) -> dict[int, Entropy]:
    """The seed fast path: per-class Python loop, Ω ≤ 63 bits only."""
    if len(state.index.instance.omega) > _WORD_BITS:
        raise ValueError("seed lookahead only supported Ω ≤ 63 bits")
    informative = state.informative_class_ids()
    if not informative:
        return {}
    if depth == 1:
        return _entropy1_per_class(state, informative)
    if depth == 2:
        return _entropy2_per_class(state, informative)
    raise ValueError("seed fast path only covered depths 1 and 2")


class LegacyLookaheadStrategy(StatelessStrategy):
    """LkS over the seed per-class kernels (same choices, seed speed)."""

    def __init__(self, depth: int):
        self.depth = depth
        self.name = f"legacy-L{depth}S"

    def choose(self, state, rng: random.Random) -> int:
        informative = self._informative_or_raise(state)
        entropies = legacy_entropies_for_informative(state, self.depth)
        best = best_skyline_entropy(entropies.values())
        for class_id in informative:
            if entropies[class_id] == best:
                return class_id
        raise AssertionError("best entropy must belong to some class")
