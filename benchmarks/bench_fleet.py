"""Serving-fleet benchmark harness — emits ``BENCH_fleet.json``.

Measures what the multi-process fleet buys and what recovery costs:

* ``scaling`` — the same interactive TPC-H serving load (all five
  serving strategies, ``CLIENT_THREADS`` concurrent clients, durable
  store journaling every answer) driven through fleets of 1, 2 and 4
  workers; reports sessions/sec per worker count.  The gate is
  **core-aware**: on an M-core machine W workers cannot scale past
  min(W, M), so the scaling gate applies to the largest measured fleet
  that *fits the cores* (floor ``0.75 × W`` there — the ≥3× target at
  4 workers on ≥4-core hardware) while oversubscribed fleets (W > M,
  every extra worker is pure process overhead on the same cores) are
  measured and held only to a bounded-collapse floor.  ``cpu_count``
  is recorded in the report so the CI gate reads the machine the
  numbers came from.
* ``recovery`` — a 2-worker fleet loses one worker to ``kill -9``
  mid-session; reports the wall-clock from the kill to the victim
  session's next *successfully recorded answer* on a survivor (lease
  wait + takeover + rehydration, seen from the client), then finishes
  every session and parity-checks it.

Every timed session's final predicate is parity-checked against the
in-process ``run_inference`` result before timings are trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full run
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --output my.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PerfectOracle, SignatureIndex
from repro.data import generate_tpch, tpch_workloads
from repro.service import FleetConfig, FleetServer, ServiceClient

from bench_util import (
    bench_meta,
    drive_session,
    expected_pairs,
    latency_summary,
    remote_answerer,
)

TPCH_SEED = 0
TPCH_SCALE = 1.0
CLIENT_THREADS = 8
STRATEGIES = ["RND", "BU", "TD", "L1S", "L2S"]
SCALING_FLOOR_FACTOR = 0.75
#: A fleet oversubscribing its cores (4 workers on 1 core: 4 index
#: builds, 4 interpreters, same CPU) is allowed to cost throughput,
#: but not to collapse past 4x vs a single worker.
OVERSUBSCRIPTION_FLOOR = 0.25
RECOVERY_LEASE_TTL = 1.0


def _workload_oracle():
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    return workload, PerfectOracle(workload.instance, workload.goal)


def _check_parity(outcomes, workload, oracle):
    index = SignatureIndex(workload.instance)
    cache: dict[tuple[str, int], tuple[list, int]] = {}
    for (seed, strategy), final in outcomes:
        key = (strategy, seed)
        if key not in cache:
            cache[key] = expected_pairs(
                workload.instance, strategy, seed, oracle, index
            )
        pairs, interactions = cache[key]
        assert final["predicate"]["pairs"] == pairs, (
            f"parity failed: {strategy} seed={seed}"
        )
        assert final["progress"]["interactions"] == interactions


# --- cells -------------------------------------------------------------------


def bench_scaling(
    worker_counts: list[int], sessions: int, db_dir: str
) -> dict:
    """Sessions/sec for the same serving load at each fleet size."""
    workload, oracle = _workload_oracle()
    jobs = list(zip(range(sessions), itertools.cycle(STRATEGIES)))
    by_workers: dict[str, dict] = {}
    for workers in worker_counts:
        config = FleetConfig(
            store_path=os.path.join(db_dir, f"scale_w{workers}.db"),
            workers=workers,
            speculate=False,
        )
        latencies: list[float] = []
        with FleetServer(config) as server:
            started = time.perf_counter()
            with ThreadPoolExecutor(CLIENT_THREADS) as pool:
                outcomes = list(
                    pool.map(
                        lambda job: (
                            job,
                            drive_session(
                                server,
                                "tpch/join4",
                                job[1],
                                job[0],
                                oracle,
                                latencies,
                                workload_seed=TPCH_SEED,
                                scale=TPCH_SCALE,
                            ),
                        ),
                        jobs,
                    )
                )
            elapsed = time.perf_counter() - started
        _check_parity(outcomes, workload, oracle)
        by_workers[str(workers)] = {
            "workers": workers,
            "sessions": sessions,
            "wall_seconds": round(elapsed, 3),
            "sessions_per_sec": round(sessions / elapsed, 3),
            "answer_latency": latency_summary(latencies),
        }
        print(
            f"[bench] {workers} worker(s): "
            f"{by_workers[str(workers)]['sessions_per_sec']} sessions/s "
            f"({elapsed:.1f}s wall)",
            flush=True,
        )
    return {
        "workload": "tpch/join4",
        "strategies": STRATEGIES,
        "client_threads": CLIENT_THREADS,
        "cpu_count": os.cpu_count() or 1,
        "by_workers": by_workers,
        "parity_checked": True,
    }


def bench_recovery(sessions: int, db_dir: str) -> dict:
    """kill -9 one of two workers mid-session; time the takeover as
    the client sees it, then finish everything and check parity."""
    workload, oracle = _workload_oracle()
    answer = remote_answerer(oracle)
    config = FleetConfig(
        store_path=os.path.join(db_dir, "recovery.db"),
        workers=2,
        lease_ttl_seconds=RECOVERY_LEASE_TTL,
        checkpoint_every=4,
        speculate=False,
    )
    with FleetServer(config) as server:
        client = ServiceClient(
            server.host, server.port, retries=10, retry_backoff=0.2
        )
        opened = []
        unfinished = []
        for seed, strategy in zip(
            range(sessions), itertools.cycle(STRATEGIES)
        ):
            info = client.create_session(
                workload="tpch/join4",
                strategy=strategy,
                seed=seed,
                workload_seed=TPCH_SEED,
                scale=TPCH_SCALE,
            )
            sid = info["session_id"]
            # A few journaled answers so the takeover has a tail to
            # replay; fast strategies may finish inside the warmup,
            # so track which sessions still have questions pending.
            pending = True
            for _ in range(3):
                question = client.next_question(sid)
                if question is None:
                    pending = False
                    break
                client.post_answer(
                    sid, question["question_id"], answer(question)
                )
            opened.append((sid, seed, strategy))
            if pending:
                unfinished.append((sid, seed, strategy))

        assert unfinished, (
            "every session finished during warmup — nothing to take over"
        )
        victim = unfinished[0]
        dead_slot = zlib.crc32(victim[0].encode("utf-8")) % 2
        started = time.perf_counter()
        server.kill_worker(dead_slot)
        # First successful answer round on the victim session after the
        # kill: failover + lease wait + takeover + rehydrate + answer.
        question = client.next_question(victim[0])
        assert question is not None
        client.post_answer(
            victim[0], question["question_id"], answer(question)
        )
        takeover_seconds = time.perf_counter() - started
        print(
            f"[bench] kill -9 -> next recorded answer in "
            f"{takeover_seconds:.3f}s (lease TTL {RECOVERY_LEASE_TTL}s)",
            flush=True,
        )
        server.wait_for_slot(dead_slot)

        outcomes = []
        for sid, seed, strategy in opened:
            while (question := client.next_question(sid)) is not None:
                client.post_answer(
                    sid, question["question_id"], answer(question)
                )
            outcomes.append(((seed, strategy), client.predicate(sid)))
    _check_parity(outcomes, workload, oracle)
    return {
        "workload": "tpch/join4",
        "workers": 2,
        "sessions": sessions,
        "lease_ttl_seconds": RECOVERY_LEASE_TTL,
        "takeover_seconds": round(takeover_seconds, 4),
        "parity_checked": True,
    }


# --- harness -----------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    worker_counts = [1, 2] if smoke else [1, 2, 4]
    sessions = 8 if smoke else 24
    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as db_dir:
        scaling = bench_scaling(worker_counts, sessions, db_dir)
        recovery = bench_recovery(4 if smoke else 6, db_dir)

    cpu_count = scaling["cpu_count"]
    workers_max = worker_counts[-1]
    by_workers = scaling["by_workers"]
    single = by_workers["1"]["sessions_per_sec"]
    at_max = by_workers[str(workers_max)]["sessions_per_sec"]
    # On an M-core machine W workers can't scale past min(W, M): the
    # scaling gate applies to the largest measured fleet that fits the
    # cores (the >= 3x-at-4-workers target on >= 4-core hardware; on a
    # 1-core runner it degenerates to the single-worker identity) and
    # oversubscribed fleets are held to the bounded-collapse floor.
    workers_gated = max(w for w in worker_counts if w <= cpu_count)
    at_gated = by_workers[str(workers_gated)]["sessions_per_sec"]
    speedup_gated = round(at_gated / single, 3)
    speedup_max = round(at_max / single, 3)
    floor = round(SCALING_FLOOR_FACTOR * workers_gated, 3)
    return {
        "meta": bench_meta(
            smoke=smoke,
            transport="HTTP/1.1 keep-alive over loopback",
            cpu_count=cpu_count,
        ),
        "scaling": scaling,
        "recovery": recovery,
        "acceptance": {
            "cpu_count": cpu_count,
            "workers_max": workers_max,
            "workers_gated": workers_gated,
            "sessions_per_sec_single": single,
            "sessions_per_sec_max_workers": at_max,
            "sessions_per_sec_gated_workers": at_gated,
            "speedup_vs_single": speedup_max,
            "speedup_at_gated_workers": speedup_gated,
            "scaling_floor": floor,
            "scaling_floor_factor": SCALING_FLOOR_FACTOR,
            "scaling_gate": speedup_gated >= floor,
            "oversubscription_floor": OVERSUBSCRIPTION_FLOOR,
            "oversubscription_gate": (
                speedup_max >= OVERSUBSCRIPTION_FLOOR
            ),
            "takeover_seconds": recovery["takeover_seconds"],
            "lease_ttl_seconds": recovery["lease_ttl_seconds"],
            "recovery_parity": recovery["parity_checked"],
            "scaling_parity": scaling["parity_checked"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
        ),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="8 sessions, fleets of 1 and 2 — a CI regression canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    acceptance = report["acceptance"]
    print(
        f"  {acceptance['workers_gated']} workers (core-fitting): "
        f"{acceptance['speedup_at_gated_workers']}x vs single "
        f"(floor {acceptance['scaling_floor']}x on "
        f"{acceptance['cpu_count']} cores); "
        f"{acceptance['workers_max']} workers: "
        f"{acceptance['speedup_vs_single']}x"
    )
    print(
        f"  kill -9 takeover {acceptance['takeover_seconds']}s "
        f"(lease TTL {acceptance['lease_ttl_seconds']}s)"
    )
    gates = [
        ("scaling_gate", acceptance["scaling_gate"]),
        ("oversubscription_gate", acceptance["oversubscription_gate"]),
        ("recovery_parity", acceptance["recovery_parity"]),
        ("scaling_parity", acceptance["scaling_parity"]),
    ]
    for name, ok in gates:
        print(f"acceptance: {name} → {'OK' if ok else 'FAIL'}")
    return 0 if all(ok for _, ok in gates) else 1


if __name__ == "__main__":
    raise SystemExit(main())
