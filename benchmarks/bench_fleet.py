"""Serving-fleet benchmark harness — emits ``BENCH_fleet.json``.

Measures what the multi-process fleet buys and what recovery costs:

* ``scaling`` — the same interactive TPC-H serving load (all five
  serving strategies, ``CLIENT_THREADS`` concurrent clients, durable
  store journaling every answer) driven through fleets of 1, 2 and 4
  workers; reports sessions/sec per worker count.  The gate is
  **core-aware**: on an M-core machine W workers cannot scale past
  min(W, M), so the scaling gate applies to the largest measured fleet
  that *fits the cores* (floor ``0.75 × W`` there — the ≥3× target at
  4 workers on ≥4-core hardware) while oversubscribed fleets (W > M,
  every extra worker is pure process overhead on the same cores) are
  measured and held only to a bounded-collapse floor.  ``cpu_count``
  is recorded in the report so the CI gate reads the machine the
  numbers came from.
* ``recovery`` — a 2-worker fleet loses one worker to ``kill -9``
  mid-session; reports the wall-clock from the kill to the victim
  session's next *successfully recorded answer* on a survivor (lease
  wait + takeover + rehydration, seen from the client), then finishes
  every session and parity-checks it.
* ``shared_index`` — what the zero-copy shared-memory index plane
  buys on the row-scaled largest Fig. 7 configuration: total
  index-resident bytes across a fleet vs the single-process figure
  (one machine-wide copy: ratio ≈ 1.0, gated ≤ 1.5), and the p95 of a
  warm-fleet cold create resolved by *attaching* a sibling's segment
  vs one resolved by a private build.  Each timed create is classified
  attach/build/warm from the per-slot counter deltas on ``GET
  /fleet``, and the cell ends with a leaked-segment sweep.  Both
  gates are core-count-independent, so they hold on a 1-core runner.
* ``plan_cache`` — cross-worker reuse through the machine-wide plan
  cache: one full L2S session per slot over the same instance and
  seed, so the second slot rides the first slot's published entropy
  tables.  The aggregated ``GET /fleet`` counters must show shared-
  tier hits > 0 and the cell ends with a ``repro_plan_*`` leak sweep.

Every timed session's final predicate is parity-checked against the
in-process ``run_inference`` result before timings are trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full run
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_fleet.py --output my.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
import tempfile
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PerfectOracle, SignatureIndex, index_shm
from repro.core.serialize import instance_to_dict
from repro.data import generate_tpch, tpch_workloads
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.service import (
    PLAN_SEGMENT_PREFIX,
    FleetConfig,
    FleetServer,
    ServiceClient,
)

from bench_util import (
    bench_meta,
    drive_session,
    expected_pairs,
    latency_summary,
    percentile,
    remote_answerer,
)

TPCH_SEED = 0
TPCH_SCALE = 1.0
CLIENT_THREADS = 8
STRATEGIES = ["RND", "BU", "TD", "L1S", "L2S"]
SCALING_FLOOR_FACTOR = 0.75
#: A fleet oversubscribing its cores (4 workers on 1 core: 4 index
#: builds, 4 interpreters, same CPU) is allowed to cost throughput,
#: but not to collapse past 4x vs a single worker.
OVERSUBSCRIPTION_FLOOR = 0.25
RECOVERY_LEASE_TTL = 1.0
#: The shared-index cell runs the largest Fig. 7 configuration,
#: row-scaled exactly as ``bench_plan``/``bench_build`` scale it:
#: ``synthetic/0`` at scale 24 is (3,3,2400,100).  Smoke uses scale 8
#: (~50 ms builds) to stay a quick canary.
SHARED_INDEX_WORKLOAD = "synthetic/0"
SHARED_INDEX_SCALE = 24.0
SHARED_INDEX_SCALE_SMOKE = 8.0
#: A W-worker fleet maps ONE machine-wide copy of each segment, so its
#: total resident index bytes must stay within noise of the
#: single-process figure — far under W copies.
SHARED_MEMORY_RATIO_MAX = 1.5
#: Smoke indexes are tiny (~1 KB), so the flat buffer's fixed 128-byte
#: header plus 16-byte array alignment is a large slice of every
#: segment, and all ``seeds`` distinct segments can end up mapped by
#: one worker.  The canary ceiling is relaxed accordingly; the 1.5x
#: bound applies to the full-size run.
SHARED_MEMORY_RATIO_MAX_SMOKE = 3.0
#: Attaching a published segment skips the |R|x|P| product walk; on the
#: full-size config the p95 warm-fleet cold create must be >= 5x faster
#: than a private build.  Smoke builds are ~6x smaller, so HTTP
#: round-trip overhead is a larger slice of the create; the canary
#: floor is relaxed accordingly.
SHARED_ATTACH_SPEEDUP_FLOOR = 5.0
SHARED_ATTACH_SPEEDUP_FLOOR_SMOKE = 1.5
#: The plan-cache cell drives one full adversarial L2S session per
#: slot over one synthetic instance; sizes keep the HTTP round-trips
#: bounded while leaving enough states for cross-worker reuse.
PLAN_CACHE_FLEET_CONFIG = SyntheticConfig(3, 3, 240, 40)
PLAN_CACHE_FLEET_CONFIG_SMOKE = SyntheticConfig(3, 3, 60, 10)


def _workload_oracle():
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    return workload, PerfectOracle(workload.instance, workload.goal)


def _check_parity(outcomes, workload, oracle):
    index = SignatureIndex(workload.instance)
    cache: dict[tuple[str, int], tuple[list, int]] = {}
    for (seed, strategy), final in outcomes:
        key = (strategy, seed)
        if key not in cache:
            cache[key] = expected_pairs(
                workload.instance, strategy, seed, oracle, index
            )
        pairs, interactions = cache[key]
        assert final["predicate"]["pairs"] == pairs, (
            f"parity failed: {strategy} seed={seed}"
        )
        assert final["progress"]["interactions"] == interactions


# --- cells -------------------------------------------------------------------


def bench_scaling(
    worker_counts: list[int], sessions: int, db_dir: str
) -> dict:
    """Sessions/sec for the same serving load at each fleet size."""
    workload, oracle = _workload_oracle()
    jobs = list(zip(range(sessions), itertools.cycle(STRATEGIES)))
    by_workers: dict[str, dict] = {}
    for workers in worker_counts:
        config = FleetConfig(
            store_path=os.path.join(db_dir, f"scale_w{workers}.db"),
            workers=workers,
            speculate=False,
        )
        latencies: list[float] = []
        with FleetServer(config) as server:
            started = time.perf_counter()
            with ThreadPoolExecutor(CLIENT_THREADS) as pool:
                outcomes = list(
                    pool.map(
                        lambda job: (
                            job,
                            drive_session(
                                server,
                                "tpch/join4",
                                job[1],
                                job[0],
                                oracle,
                                latencies,
                                workload_seed=TPCH_SEED,
                                scale=TPCH_SCALE,
                            ),
                        ),
                        jobs,
                    )
                )
            elapsed = time.perf_counter() - started
        _check_parity(outcomes, workload, oracle)
        by_workers[str(workers)] = {
            "workers": workers,
            "sessions": sessions,
            "wall_seconds": round(elapsed, 3),
            "sessions_per_sec": round(sessions / elapsed, 3),
            "answer_latency": latency_summary(latencies),
        }
        print(
            f"[bench] {workers} worker(s): "
            f"{by_workers[str(workers)]['sessions_per_sec']} sessions/s "
            f"({elapsed:.1f}s wall)",
            flush=True,
        )
    return {
        "workload": "tpch/join4",
        "strategies": STRATEGIES,
        "client_threads": CLIENT_THREADS,
        "cpu_count": os.cpu_count() or 1,
        "by_workers": by_workers,
        "parity_checked": True,
    }


def bench_recovery(sessions: int, db_dir: str) -> dict:
    """kill -9 one of two workers mid-session; time the takeover as
    the client sees it, then finish everything and check parity."""
    workload, oracle = _workload_oracle()
    answer = remote_answerer(oracle)
    config = FleetConfig(
        store_path=os.path.join(db_dir, "recovery.db"),
        workers=2,
        lease_ttl_seconds=RECOVERY_LEASE_TTL,
        checkpoint_every=4,
        speculate=False,
    )
    with FleetServer(config) as server:
        client = ServiceClient(
            server.host, server.port, retries=10, retry_backoff=0.2
        )
        opened = []
        unfinished = []
        for seed, strategy in zip(
            range(sessions), itertools.cycle(STRATEGIES)
        ):
            info = client.create_session(
                workload="tpch/join4",
                strategy=strategy,
                seed=seed,
                workload_seed=TPCH_SEED,
                scale=TPCH_SCALE,
            )
            sid = info["session_id"]
            # A few journaled answers so the takeover has a tail to
            # replay; fast strategies may finish inside the warmup,
            # so track which sessions still have questions pending.
            pending = True
            for _ in range(3):
                question = client.next_question(sid)
                if question is None:
                    pending = False
                    break
                client.post_answer(
                    sid, question["question_id"], answer(question)
                )
            opened.append((sid, seed, strategy))
            if pending:
                unfinished.append((sid, seed, strategy))

        assert unfinished, (
            "every session finished during warmup — nothing to take over"
        )
        victim = unfinished[0]
        dead_slot = zlib.crc32(victim[0].encode("utf-8")) % 2
        started = time.perf_counter()
        server.kill_worker(dead_slot)
        # First successful answer round on the victim session after the
        # kill: failover + lease wait + takeover + rehydrate + answer.
        question = client.next_question(victim[0])
        assert question is not None
        client.post_answer(
            victim[0], question["question_id"], answer(question)
        )
        takeover_seconds = time.perf_counter() - started
        print(
            f"[bench] kill -9 -> next recorded answer in "
            f"{takeover_seconds:.3f}s (lease TTL {RECOVERY_LEASE_TTL}s)",
            flush=True,
        )
        server.wait_for_slot(dead_slot)

        outcomes = []
        for sid, seed, strategy in opened:
            while (question := client.next_question(sid)) is not None:
                client.post_answer(
                    sid, question["question_id"], answer(question)
                )
            outcomes.append(((seed, strategy), client.predicate(sid)))
    _check_parity(outcomes, workload, oracle)
    return {
        "workload": "tpch/join4",
        "workers": 2,
        "sessions": sessions,
        "lease_ttl_seconds": RECOVERY_LEASE_TTL,
        "takeover_seconds": round(takeover_seconds, 4),
        "parity_checked": True,
    }


def _shm_segments() -> set[str]:
    """Current ``repro_idx_*`` names in ``/dev/shm`` (empty off-Linux)."""
    directory = "/dev/shm"
    if not os.path.isdir(directory):
        return set()
    return {
        entry
        for entry in os.listdir(directory)
        if entry.startswith(index_shm.SEGMENT_PREFIX)
    }


def _summary(samples: list[float]) -> dict:
    return latency_summary(samples) if samples else {"count": 0}


def _attach_build_totals(fleet_payload: dict) -> tuple[int, int]:
    """Fleet-wide (attach_hits, builds) from the aggregated payload."""
    shared = fleet_payload.get("shared_index", {})
    return (
        shared.get("attach_hits_total", 0),
        shared.get("builds_total", 0),
    )


def bench_shared_index(workers: int, seeds: int, db_dir: str, smoke: bool) -> dict:
    """Memory and cold-create latency, one worker vs a sharing fleet.

    The memory reference is a *single-worker* fleet with the plane on:
    one machine-wide flat segment per index, same encoding as the fleet
    side.  The gated ratio therefore isolates what the plane claims —
    N workers hold one copy, not N — instead of comparing flat-buffer
    bytes against heap numpy bytes, which at canary index sizes is
    dominated by the segment header and alignment padding, not by
    sharing."""
    scale = SHARED_INDEX_SCALE_SMOKE if smoke else SHARED_INDEX_SCALE
    supported = index_shm.shared_memory_available()
    cell: dict = {
        "workload": SHARED_INDEX_WORKLOAD,
        "scale": scale,
        "workers": workers,
        "seeds": seeds,
        "supported": supported,
    }
    if not supported:
        print(
            "[bench] shared-memory unavailable; shared_index cell skipped",
            flush=True,
        )
        return cell
    pre_existing = _shm_segments()

    def create(client: ServiceClient, seed: int) -> float:
        started = time.perf_counter()
        client.create_session(
            workload=SHARED_INDEX_WORKLOAD,
            strategy="RND",
            seed=0,
            workload_seed=seed,
            scale=scale,
        )
        return time.perf_counter() - started

    # Single-worker reference, plane on.  Every distinct workload_seed
    # is a value-distinct instance, so each create is a cold
    # build-and-publish: the timed latencies are the fleet's cold-build
    # path and the resident bytes are the same flat segments the fleet
    # attaches (the publish memcpy is noise against the build itself).
    config = FleetConfig(
        store_path=os.path.join(db_dir, "shmidx_single.db"),
        workers=1,
        shared_index=True,
        speculate=False,
    )
    build_latencies: list[float] = []
    with FleetServer(config) as server:
        with ServiceClient(
            server.host, server.port, retries=10, retry_backoff=0.2
        ) as client:
            for seed in range(seeds):
                build_latencies.append(create(client, seed))
            single_memory = client.fleet()["memory"]
    single_resident = single_memory["index_resident_bytes_total"]

    # The shared fleet serves the same instances; every timed create is
    # classified by the fleet-wide attach/build counter delta it caused.
    config = FleetConfig(
        store_path=os.path.join(db_dir, "shmidx_fleet.db"),
        workers=workers,
        shared_index=True,
        speculate=False,
    )
    attach_latencies: list[float] = []
    fleet_build_latencies: list[float] = []
    warm_hits = 0
    with FleetServer(config) as server:
        with ServiceClient(
            server.host, server.port, retries=10, retry_backoff=0.2
        ) as client:
            for seed in range(seeds):
                # Creates hash session ids uniformly over slots, so
                # ~3x workers of them land every worker at least once
                # with overwhelming probability: the first is the
                # build+publish, siblings attach, re-hits are warm.
                for _ in range(workers * 3):
                    before = _attach_build_totals(client.fleet())
                    elapsed = create(client, seed)
                    after = _attach_build_totals(client.fleet())
                    if after[1] > before[1]:
                        fleet_build_latencies.append(elapsed)
                    elif after[0] > before[0]:
                        attach_latencies.append(elapsed)
                    else:
                        warm_hits += 1
            fleet_payload = client.fleet()
    fleet_memory = fleet_payload["memory"]
    fleet_resident = fleet_memory["index_resident_bytes_total"]

    leaked = sorted(_shm_segments() - pre_existing)
    memory_ratio = (
        round(fleet_resident / single_resident, 3)
        if single_resident
        else None
    )
    build_p95 = percentile(build_latencies, 95) if build_latencies else None
    attach_p95 = (
        percentile(attach_latencies, 95) if attach_latencies else None
    )
    attach_speedup = (
        round(build_p95 / attach_p95, 3)
        if build_p95 and attach_p95
        else None
    )
    cell.update(
        {
            "single_resident_bytes": single_resident,
            "fleet_resident_bytes": fleet_resident,
            "fleet_private_bytes": fleet_memory[
                "index_private_bytes_total"
            ],
            "fleet_shared_bytes": fleet_memory["index_shared_bytes"],
            "memory_ratio": memory_ratio,
            "private_build_latency": _summary(build_latencies),
            "attach_latency": _summary(attach_latencies),
            "fleet_build_latency": _summary(fleet_build_latencies),
            "warm_hits": warm_hits,
            "attach_speedup_p95": attach_speedup,
            "counters": fleet_payload.get("shared_index", {}),
            "leaked_segments": leaked,
        }
    )
    print(
        f"[bench] shared index: resident {fleet_resident}B across "
        f"{workers} workers vs {single_resident}B single "
        f"(ratio {memory_ratio}); attach p95 "
        f"{cell['attach_latency'].get('p95_ms')}ms vs build p95 "
        f"{cell['private_build_latency'].get('p95_ms')}ms "
        f"({attach_speedup}x)",
        flush=True,
    )
    return cell


def _plan_segments() -> set[str]:
    """Current ``repro_plan_*`` names in ``/dev/shm`` (empty off-Linux)."""
    directory = "/dev/shm"
    if not os.path.isdir(directory):
        return set()
    return {
        entry
        for entry in os.listdir(directory)
        if entry.startswith(PLAN_SEGMENT_PREFIX)
    }


def bench_plan_cache_fleet(db_dir: str, smoke: bool) -> dict:
    """Cross-worker entropy-table reuse through the plan cache.

    One full adversarial L2S session per slot over the same inline
    instance and seed: identical trajectories, so every state the
    second slot scores was already published by the first.  The
    question sequences are asserted identical before the counters are
    trusted, and the cell ends with a ``repro_plan_*`` leak sweep."""
    config = (
        PLAN_CACHE_FLEET_CONFIG_SMOKE if smoke else PLAN_CACHE_FLEET_CONFIG
    )
    supported = index_shm.shared_memory_available()
    cell: dict = {
        "config": config.label,
        "workers": 2,
        "strategy": "L2S",
        "oracle": "adversarial (all-negative)",
        "supported": supported,
    }
    if not supported:
        print(
            "[bench] shared-memory unavailable; plan_cache cell skipped",
            flush=True,
        )
        return cell
    pre_existing = _plan_segments()
    instance = generate_synthetic(config, seed=7)
    snapshot = {
        "kind": "session_snapshot",
        "version": 1,
        "instance": {"inline": instance_to_dict(instance)},
        "strategy": "L2S",
        "seed": 0,
        "max_questions": None,
        "labeled": [],
    }
    fleet = FleetConfig(
        store_path=os.path.join(db_dir, "plan_fleet.db"),
        workers=2,
        speculate=False,
    )
    asked: dict[int, list] = {}
    walls: dict[int, float] = {}
    with FleetServer(fleet) as server:
        with ServiceClient(
            server.host, server.port, retries=10, retry_backoff=0.2
        ) as client:
            # Session ids hash uniformly over the two slots, so a
            # handful of creates lands each slot with overwhelming
            # probability; extra sessions on a covered slot are left
            # undriven.
            for _ in range(24):
                sid = client.resume(dict(snapshot))["session_id"]
                slot = zlib.crc32(sid.encode("utf-8")) % 2
                if slot in asked:
                    continue
                transcript = []
                started = time.perf_counter()
                question = client.next_question(sid)
                while question is not None:
                    transcript.append(
                        [question["left"]["row"], question["right"]["row"]]
                    )
                    client.post_answer(sid, question["question_id"], "-")
                    question = client.next_question(sid)
                walls[slot] = round(time.perf_counter() - started, 4)
                asked[slot] = transcript
                if len(asked) == 2:
                    break
            payload = client.fleet()
    assert len(asked) == 2, "24 creates never covered both slots"
    assert asked[0] == asked[1], (
        "identical sessions diverged across workers"
    )
    leaked = sorted(_plan_segments() - pre_existing)
    counters = payload.get("plan_cache", {})
    cell.update(
        {
            "questions_per_session": len(asked[0]),
            "session_wall_seconds_by_slot": {
                str(slot): walls[slot] for slot in sorted(walls)
            },
            "counters": counters,
            "shared_hits_total": counters.get("shared_hits_total", 0),
            "leaked_segments": leaked,
            "parity_checked": True,
        }
    )
    print(
        f"[bench] fleet plan cache ({len(asked[0])} questions/slot): "
        f"{cell['shared_hits_total']} cross-worker shared hits, "
        f"{counters.get('shared_entries')} machine-wide entries",
        flush=True,
    )
    return cell


# --- harness -----------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    worker_counts = [1, 2] if smoke else [1, 2, 4]
    sessions = 8 if smoke else 24
    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as db_dir:
        scaling = bench_scaling(worker_counts, sessions, db_dir)
        recovery = bench_recovery(4 if smoke else 6, db_dir)
        shared_index = bench_shared_index(
            workers=2 if smoke else 4,
            seeds=3 if smoke else 6,
            db_dir=db_dir,
            smoke=smoke,
        )
        plan_cache = bench_plan_cache_fleet(db_dir, smoke)

    cpu_count = scaling["cpu_count"]
    workers_max = worker_counts[-1]
    by_workers = scaling["by_workers"]
    single = by_workers["1"]["sessions_per_sec"]
    at_max = by_workers[str(workers_max)]["sessions_per_sec"]
    # On an M-core machine W workers can't scale past min(W, M): the
    # scaling gate applies to the largest measured fleet that fits the
    # cores (the >= 3x-at-4-workers target on >= 4-core hardware; on a
    # 1-core runner it degenerates to the single-worker identity) and
    # oversubscribed fleets are held to the bounded-collapse floor.
    workers_gated = max(w for w in worker_counts if w <= cpu_count)
    at_gated = by_workers[str(workers_gated)]["sessions_per_sec"]
    speedup_gated = round(at_gated / single, 3)
    speedup_max = round(at_max / single, 3)
    floor = round(SCALING_FLOOR_FACTOR * workers_gated, 3)
    supported = shared_index.get("supported", False)
    attach_floor = (
        SHARED_ATTACH_SPEEDUP_FLOOR_SMOKE
        if smoke
        else SHARED_ATTACH_SPEEDUP_FLOOR
    )
    memory_ratio_max = (
        SHARED_MEMORY_RATIO_MAX_SMOKE if smoke else SHARED_MEMORY_RATIO_MAX
    )
    memory_ratio = shared_index.get("memory_ratio")
    attach_speedup = shared_index.get("attach_speedup_p95")
    return {
        "meta": bench_meta(
            smoke=smoke,
            transport="HTTP/1.1 keep-alive over loopback",
            cpu_count=cpu_count,
        ),
        "scaling": scaling,
        "recovery": recovery,
        "shared_index": shared_index,
        "plan_cache": plan_cache,
        "acceptance": {
            "cpu_count": cpu_count,
            "workers_max": workers_max,
            "workers_gated": workers_gated,
            "sessions_per_sec_single": single,
            "sessions_per_sec_max_workers": at_max,
            "sessions_per_sec_gated_workers": at_gated,
            "speedup_vs_single": speedup_max,
            "speedup_at_gated_workers": speedup_gated,
            "scaling_floor": floor,
            "scaling_floor_factor": SCALING_FLOOR_FACTOR,
            "scaling_gate": speedup_gated >= floor,
            "oversubscription_floor": OVERSUBSCRIPTION_FLOOR,
            "oversubscription_gate": (
                speedup_max >= OVERSUBSCRIPTION_FLOOR
            ),
            "takeover_seconds": recovery["takeover_seconds"],
            "lease_ttl_seconds": recovery["lease_ttl_seconds"],
            "recovery_parity": recovery["parity_checked"],
            "scaling_parity": scaling["parity_checked"],
            # An unsupported platform (no POSIX shared memory) degrades
            # to private builds by design; the gates then hold trivially.
            "shared_index_supported": supported,
            "shared_memory_ratio": memory_ratio,
            "shared_memory_ratio_max": memory_ratio_max,
            "shared_memory_gate": (
                not supported
                or (
                    memory_ratio is not None
                    and memory_ratio <= memory_ratio_max
                )
            ),
            "shared_attach_speedup_p95": attach_speedup,
            "shared_attach_speedup_floor": attach_floor,
            "shared_attach_gate": (
                not supported
                or (
                    attach_speedup is not None
                    and attach_speedup >= attach_floor
                )
            ),
            "shared_no_leaked_segments": (
                not shared_index.get("leaked_segments", [])
            ),
            "plan_cache_supported": plan_cache.get("supported", False),
            "plan_shared_hits_total": plan_cache.get(
                "shared_hits_total", 0
            ),
            "plan_cross_worker_gate": (
                not plan_cache.get("supported", False)
                or plan_cache.get("shared_hits_total", 0) >= 1
            ),
            "plan_no_leaked_segments": (
                not plan_cache.get("leaked_segments", [])
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
        ),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="8 sessions, fleets of 1 and 2 — a CI regression canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    acceptance = report["acceptance"]
    print(
        f"  {acceptance['workers_gated']} workers (core-fitting): "
        f"{acceptance['speedup_at_gated_workers']}x vs single "
        f"(floor {acceptance['scaling_floor']}x on "
        f"{acceptance['cpu_count']} cores); "
        f"{acceptance['workers_max']} workers: "
        f"{acceptance['speedup_vs_single']}x"
    )
    print(
        f"  kill -9 takeover {acceptance['takeover_seconds']}s "
        f"(lease TTL {acceptance['lease_ttl_seconds']}s)"
    )
    if acceptance["shared_index_supported"]:
        print(
            f"  shared index: memory ratio "
            f"{acceptance['shared_memory_ratio']} "
            f"(max {acceptance['shared_memory_ratio_max']}), attach "
            f"p95 speedup {acceptance['shared_attach_speedup_p95']}x "
            f"(floor {acceptance['shared_attach_speedup_floor']}x)"
        )
    if acceptance["plan_cache_supported"]:
        print(
            f"  plan cache: {acceptance['plan_shared_hits_total']} "
            f"cross-worker shared hits"
        )
    gates = [
        ("scaling_gate", acceptance["scaling_gate"]),
        ("oversubscription_gate", acceptance["oversubscription_gate"]),
        ("recovery_parity", acceptance["recovery_parity"]),
        ("scaling_parity", acceptance["scaling_parity"]),
        ("shared_memory_gate", acceptance["shared_memory_gate"]),
        ("shared_attach_gate", acceptance["shared_attach_gate"]),
        (
            "shared_no_leaked_segments",
            acceptance["shared_no_leaked_segments"],
        ),
        ("plan_cross_worker_gate", acceptance["plan_cross_worker_gate"]),
        (
            "plan_no_leaked_segments",
            acceptance["plan_no_leaked_segments"],
        ),
    ]
    for name, ok in gates:
        print(f"acceptance: {name} → {'OK' if ok else 'FAIL'}")
    return 0 if all(ok for _, ok in gates) else 1


if __name__ == "__main__":
    raise SystemExit(main())
