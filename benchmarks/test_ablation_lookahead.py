"""Ablation: lookahead depth k = 1, 2, 3 (LkS).

§4.4 stops at k = 2 "as a good trade-off between keeping a relatively low
computation time and minimizing the number of interactions"; this
ablation measures that trade-off: interactions should (weakly) improve
with k while time grows sharply (k = 3 has no vectorised path).
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    LookaheadSkylineStrategy,
    PerfectOracle,
    SignatureIndex,
    run_inference,
    sample_goal_of_size,
)
from repro.data import SyntheticConfig, generate_synthetic

#: Small configuration so the exponential k = 3 stays feasible.
CONFIG = SyntheticConfig(2, 3, 20, 20)


def _draw(goal_size: int):
    rng = random.Random(9)
    while True:
        instance = generate_synthetic(CONFIG, seed=rng.randrange(2**31))
        index = SignatureIndex(instance)
        goal = sample_goal_of_size(index, goal_size, rng)
        if goal is not None:
            return instance, index, goal


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_lookahead_depth(benchmark, depth):
    instance, index, goal = _draw(goal_size=2)
    strategy = LookaheadSkylineStrategy(depth=depth)
    benchmark.group = "ablation-lookahead-depth"

    def run():
        return run_inference(
            instance,
            strategy,
            PerfectOracle(instance, goal),
            index=index,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.matches_goal(instance, goal)
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["classes"] = len(index)


@pytest.mark.parametrize("vectorised", [True, False])
def test_l2s_vectorised_vs_reference(benchmark, vectorised):
    """The NumPy path vs the straightforward implementation — same
    questions, very different cost (this gap explains why our absolute
    L2S times undercut the paper's 56–74 s; with ``vectorised=False``
    the reference lands in the paper's regime on comparable instances)."""
    instance, index, goal = _draw(goal_size=2)
    strategy = LookaheadSkylineStrategy(depth=2, vectorised=vectorised)
    benchmark.group = "ablation-lookahead-vectorisation"

    def run():
        return run_inference(
            instance,
            strategy,
            PerfectOracle(instance, goal),
            index=index,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.matches_goal(instance, goal)
    benchmark.extra_info["interactions"] = result.interactions
