"""Ablation: practical strategies vs the minimax optimum (§4.1).

The paper proves an optimal strategy exists via minimax but dismisses it
as exponential.  On instances small enough to solve exactly, we measure
how far the practical strategies sit from the optimum (worst case over
all goals) and what the optimum costs to compute.
"""

from __future__ import annotations

import pytest

from repro.core import (
    OptimalStrategy,
    PerfectOracle,
    SignatureIndex,
    non_nullable_predicates,
    run_inference,
    strategy_by_name,
)
from repro.relational import Instance, JoinPredicate, Relation


def example21_instance() -> Instance:
    return Instance(
        Relation.build("R0", ["A1", "A2"], [(0, 1), (0, 2), (2, 2), (1, 0)]),
        Relation.build(
            "P0", ["B1", "B2", "B3"], [(1, 1, 0), (0, 1, 2), (2, 0, 0)]
        ),
    )


def test_minimax_value_computation(benchmark):
    """Cost of solving the full game tree for Example 2.1."""
    instance = example21_instance()
    index = SignatureIndex(instance, backend="python")
    optimal = OptimalStrategy()
    benchmark.group = "ablation-optimal"
    value = benchmark.pedantic(
        optimal.worst_case_interactions, args=(index,), rounds=1, iterations=1
    )
    benchmark.extra_info["minimax_value"] = value
    assert value >= 1


@pytest.mark.parametrize("strategy_name", ["RND", "BU", "TD", "L1S", "L2S"])
def test_worst_case_gap_to_optimal(benchmark, strategy_name):
    """Worst-case interactions over every goal, per strategy, vs OPT."""
    instance = example21_instance()
    index = SignatureIndex(instance, backend="python")
    goals = non_nullable_predicates(index) + [
        JoinPredicate(instance.omega)
    ]
    optimal_value = OptimalStrategy().worst_case_interactions(index)
    benchmark.group = "ablation-optimal"

    def worst_case():
        strategy = strategy_by_name(strategy_name)
        return max(
            run_inference(
                instance,
                strategy,
                PerfectOracle(instance, goal),
                index=index,
                seed=0,
            ).interactions
            for goal in goals
        )

    worst = benchmark.pedantic(worst_case, rounds=1, iterations=1)
    benchmark.extra_info["worst_interactions"] = worst
    benchmark.extra_info["minimax_value"] = optimal_value
    assert worst >= optimal_value
