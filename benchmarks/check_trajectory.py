"""CI gate: compare a bench smoke report against its committed baseline.

Every benchmark harness emits a JSON report; the full-run reports are
committed at the repo root (``BENCH_core.json``, ``BENCH_build.json``,
``BENCH_plan.json``, ``BENCH_service.json``, ``BENCH_store.json``,
``BENCH_fleet.json``, ``BENCH_stream.json``) and define the
performance trajectory the project must not fall off.  CI
runs each harness in ``--smoke`` mode and this script checks the smoke
report against the matching baseline with **per-suite tolerances** —
smoke instances are tiny and shared runners are noisy, so each suite
gates only on what is stable at smoke scale (bit-for-bit parity flags,
hard ratios, order-of-magnitude latencies) and reads its targets from
the committed baseline where the baseline defines them.

Usage (one suite per CI matrix job)::

    python benchmarks/check_trajectory.py --suite core \
        --report BENCH_core_smoke.json --baseline BENCH_core.json

Exit status 0 when every gate holds, 1 otherwise; every gate is printed
either way.  The module is import-safe and unit-tested
(``tests/test_check_trajectory.py``).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Gate", "SUITES", "run_suite", "main"]


@dataclass(frozen=True)
class Gate:
    """One named pass/fail check with a human-readable detail line."""

    name: str
    ok: bool
    detail: str


def _gate(name: str, ok: bool, detail: str) -> Gate:
    return Gate(name=name, ok=bool(ok), detail=detail)


# --- per-suite checks --------------------------------------------------------

#: Smoke cells run on tiny instances where fixed overheads dominate, so
#: the absolute floor is far below the committed full-run speedups; it
#: trips only when the array engine falls clearly behind the seed.
CORE_SMOKE_SPEEDUP_FLOOR = 0.5

#: The store's journal-overhead gate is 15% on the committed full run
#: (64 sessions); the 16-session smoke sees fewer samples per
#: percentile, so CI tolerates more noise before failing.
STORE_SMOKE_OVERHEAD_PCT = 25.0

#: Rehydration latency may drift with runner speed; an order-of-
#: magnitude regression against the committed baseline is a real one.
STORE_REHYDRATE_RELATIVE_MAX = 10.0

#: The batched kernel segment must beat the per-session planners by 2×
#: on the committed full run (256 sessions); the 128-session smoke
#: keeps a noise margin below that.
PLAN_SMOKE_KERNEL_SPEEDUP_FLOOR = 1.3

#: A warm (memoised) question replaces a depth-2 kernel sweep with a
#: lookup.  The committed full run gates at 3× and measures an order
#: of magnitude above it; the smoke run's p95 sits on the session's
#: first (largest) steps where non-memoised propose overhead is a
#: bigger share of the round, so its report carries a relaxed floor —
#: clamped here so a report cannot weaken it below this minimum.
PLAN_CACHE_SPEEDUP_FLOOR_MIN = 1.5

#: Fleet takeover is lease-TTL-dominated (~1s); an order-of-magnitude
#: regression against the committed baseline is a real one.
FLEET_TAKEOVER_RELATIVE_MAX = 10.0

#: The fleet scaling floor per worker (see bench_fleet.py): the gate
#: applies to the largest measured fleet that fits the runner's cores,
#: where speedup must reach factor × workers — the ≥3× target at
#: 4 workers on ≥4-core hardware.
FLEET_SCALING_FLOOR_FACTOR = 0.75

#: Fleets oversubscribing their cores may cost throughput (extra
#: interpreters and index builds on the same cores) but must not
#: collapse past 4× vs a single worker.
FLEET_OVERSUBSCRIPTION_FLOOR = 0.25

#: The shared-memory index plane maps ONE machine-wide copy of each
#: index, so a fleet's total index-resident bytes must stay within
#: noise of the single-process figure, never N copies.
FLEET_SHARED_MEMORY_RATIO_MAX = 1.5

#: Smoke cells build ~1 KB indexes where the flat buffer's fixed
#: header/alignment overhead dominates each segment, so their reports
#: may record a relaxed ceiling — but never past this hard cap, so a
#: report cannot weaken the gate into meaninglessness.
FLEET_SHARED_MEMORY_RATIO_HARD_MAX = 3.0

#: Warm-fleet cold creates resolved by attaching a sibling's segment
#: skip the |R|×|P| product walk.  The smoke cell builds a ~6× smaller
#: instance where HTTP round-trip overhead is a bigger slice of the
#: create, so the canary floor sits below the ≥5× full-run target
#: (gated through the report's own recorded floor).
FLEET_SHARED_ATTACH_FLOOR_MIN = 1.5


#: Fan-out answer-p95 overhead is gated at 25% — or a 2 ms absolute
#: delta, whichever is kinder — on the committed full run (256
#: subscribers, 171 answers); under the think-paced interactive load
#: the bare p95 is sub-millisecond, where a pure ratio gate prices
#: scheduler noise rather than fan-out.  The 64-subscriber smoke has
#: far fewer answer samples per percentile and runs on noisy shared
#: CI, so the trajectory gate tolerates more on both axes.
STREAM_SMOKE_FANOUT_OVERHEAD_PCT = 75.0
STREAM_SMOKE_FANOUT_OVERHEAD_ABS_MS = 4.0

#: The smoke fan-out cell must still exercise a real subscriber crowd —
#: a report that quietly dropped to a handful of sockets proves nothing.
STREAM_SMOKE_SUBSCRIBERS_MIN = 64


def check_stream(report: dict, baseline: dict) -> list[Gate]:
    """Pushed questions must beat polling, the fanned-out feed must not
    regress answer p95 beyond the smoke tolerance, and both cells must
    be parity-checked with zero dropped events.  Ratios are re-derived
    from the report's raw latency summaries — the gate does not trust
    the report's own pass/fail numbers."""
    latency = report.get("latency", {})
    polled = latency.get("polled_question_latency", {}).get("p50_ms")
    streamed = latency.get("streamed_question_latency", {}).get(
        "p50_ms"
    )
    gates = [
        _gate(
            "streamed_beats_polled_p50",
            polled is not None
            and streamed is not None
            and streamed < polled,
            f"streamed question p50 {streamed}ms vs polled {polled}ms "
            f"(push must beat ask/answer polling)",
        ),
        _gate(
            "stream_parity",
            latency.get("parity", {}).get("checked", False)
            and report.get("acceptance", {}).get(
                "stream_parity", False
            ),
            f"streamed and polled question sequences bit-for-bit "
            f"identical over "
            f"{latency.get('parity', {}).get('sessions')} sessions",
        ),
    ]
    fanout = report.get("fanout", {})
    bare = fanout.get("bare_answer_latency", {}).get("p95_ms")
    fanned = fanout.get("fanout_answer_latency", {}).get("p95_ms")
    overhead = (
        round((fanned / bare - 1.0) * 100.0, 2)
        if bare and fanned is not None
        else None
    )
    overhead_abs = (
        round(fanned - bare, 3)
        if bare is not None and fanned is not None
        else None
    )
    subscribers = fanout.get("subscribers", 0)
    full_gate = report.get("acceptance", {}).get(
        "fanout_overhead_max_pct", 25.0
    )
    gates.extend(
        [
            _gate(
                "fanout_subscribers",
                subscribers >= STREAM_SMOKE_SUBSCRIBERS_MIN,
                f"{subscribers} feed subscribers (need >= "
                f"{STREAM_SMOKE_SUBSCRIBERS_MIN})",
            ),
            _gate(
                "fanout_overhead_p95",
                overhead is not None
                and (
                    overhead < STREAM_SMOKE_FANOUT_OVERHEAD_PCT
                    or overhead_abs
                    < STREAM_SMOKE_FANOUT_OVERHEAD_ABS_MS
                ),
                f"answer-p95 overhead {overhead}% / {overhead_abs}ms "
                f"at {subscribers} subscribers (smoke tolerance < "
                f"{STREAM_SMOKE_FANOUT_OVERHEAD_PCT}% or < "
                f"{STREAM_SMOKE_FANOUT_OVERHEAD_ABS_MS}ms absolute; "
                f"committed full-run gate < {full_gate}%)",
            ),
            _gate(
                "fanout_parity",
                fanout.get("parity_checked", False),
                "fanned-out sessions finished bit-for-bit identical "
                "to the in-process reference",
            ),
            _gate(
                "no_dropped_events",
                fanout.get("events_dropped") == 0,
                f"{fanout.get('events_dropped')} events dropped "
                f"across the service feed (must be 0)",
            ),
        ]
    )
    return gates


def check_core(report: dict, baseline: dict) -> list[Gate]:
    """Every smoke cell must stay above the absolute speedup floor."""
    cells = report.get("benchmarks", [])
    gates = [
        _gate(
            "has_cells",
            bool(cells),
            f"{len(cells)} benchmark cells in the smoke report",
        )
    ]
    for cell in cells:
        speedup = cell.get("speedup", 0.0)
        gates.append(
            _gate(
                f"speedup:{cell.get('name')}:{cell.get('workload')}",
                speedup >= CORE_SMOKE_SPEEDUP_FLOOR,
                f"{speedup}x vs seed (floor "
                f"{CORE_SMOKE_SPEEDUP_FLOOR}x)",
            )
        )
    return gates


def check_build(report: dict, baseline: dict) -> list[Gate]:
    """Streaming peak memory must stay bounded below the monolithic
    path; the target ratio comes from the committed baseline."""
    acceptance = report.get("acceptance", {})
    target = (
        baseline.get("acceptance", {})
        .get("targets", {})
        .get("streaming_peak_ratio_max", 0.75)
    )
    ratio = acceptance.get("streaming_peak_ratio")
    return [
        _gate(
            "streaming_peak_ratio",
            ratio is not None and ratio < target,
            f"streaming/monolithic peak {ratio} (target < {target})",
        )
    ]


def check_plan(report: dict, baseline: dict) -> list[Gate]:
    """Incremental full-session L2S must stay within tolerance of the
    from-scratch path on the largest Fig. 7 configuration (the numbers
    are re-derived here — the gate does not trust the report's own
    pass/fail bool)."""
    acceptance = report.get("acceptance", {})
    incremental = acceptance.get("l2s_incremental_ms")
    scratch = acceptance.get("l2s_from_scratch_ms")
    tolerance = acceptance.get(
        "l2s_gate_tolerance",
        baseline.get("acceptance", {}).get("l2s_gate_tolerance", 1.10),
    )
    ok = (
        incremental is not None
        and scratch is not None
        and incremental <= scratch * tolerance
    )
    gates = [
        _gate(
            "l2s_incremental_within_tolerance",
            ok,
            f"incremental {incremental}ms vs from-scratch {scratch}ms "
            f"(tolerance {tolerance}x)",
        )
    ]
    batched = acceptance.get("batched_kernel_seconds")
    per_session = acceptance.get("per_session_kernel_seconds")
    gates.append(
        _gate(
            "batched_kernel_segment",
            batched is not None
            and per_session is not None
            and per_session
            >= batched * PLAN_SMOKE_KERNEL_SPEEDUP_FLOOR,
            f"per-session kernels {per_session}s vs batched {batched}s "
            f"(smoke floor {PLAN_SMOKE_KERNEL_SPEEDUP_FLOOR}x; the "
            f"committed full run gates at "
            f"{acceptance.get('batched_kernel_gate_min', 2.0)}x)",
        )
    )
    cold = acceptance.get("plan_cache_cold_p95_ms")
    warm = acceptance.get("plan_cache_warm_p95_ms")
    plan_floor = max(
        float(
            acceptance.get(
                "plan_cache_gate_min", PLAN_CACHE_SPEEDUP_FLOOR_MIN
            )
        ),
        PLAN_CACHE_SPEEDUP_FLOOR_MIN,
    )
    gates.append(
        _gate(
            "plan_cache_warm_p95",
            cold is not None
            and warm is not None
            and cold >= warm * plan_floor,
            f"cold question p95 {cold}ms vs warm (memoised) {warm}ms "
            f"(floor {plan_floor}x)",
        )
    )
    counters = {
        name: acceptance.get(f"plan_cache_{name}")
        for name in ("misses", "local_hits", "shared_hits", "computes")
    }
    gates.append(
        _gate(
            "plan_cache_counter_identity",
            None not in counters.values()
            and counters["misses"]
            == counters["local_hits"]
            + counters["shared_hits"]
            + counters["computes"],
            f"misses {counters['misses']} == local "
            f"{counters['local_hits']} + shared "
            f"{counters['shared_hits']} + computes "
            f"{counters['computes']}",
        )
    )
    return gates


def check_service(report: dict, baseline: dict) -> list[Gate]:
    """Concurrent sessions on one workload must share one cached index."""
    acceptance = report.get("acceptance", {})
    target = acceptance.get(
        "index_cache_hit_ratio_target",
        baseline.get("acceptance", {}).get(
            "index_cache_hit_ratio_target", 0.9
        ),
    )
    ratio = acceptance.get("index_cache_hit_ratio")
    gates = [
        _gate(
            "index_cache_hit_ratio",
            ratio is not None and ratio > target,
            f"hit ratio {ratio} (target > {target})",
        )
    ]
    histogram = (
        report.get("batched_sessions", {})
        .get("batched", {})
        .get("kernel_batch", {})
        .get("batch_size_histogram", {})
    )
    largest = max((int(size) for size in histogram), default=0)
    gates.append(
        _gate(
            "kernel_batch_coalesced",
            largest >= 2,
            f"largest coalesced batch {largest} (need >= 2 — concurrent "
            f"HTTP proposals must actually share a kernel)",
        )
    )
    speculation = report.get("serving", {}).get("speculation", {})
    ratios = speculation.get("hit_ratio_by_depth", {})
    gates.append(
        _gate(
            "speculation_depth2_reported",
            speculation.get("depth", 0) >= 2 and "2" in ratios,
            f"speculation depth {speculation.get('depth')} with "
            f"per-depth hit ratios for {sorted(ratios)}",
        )
    )
    return gates


def check_store(report: dict, baseline: dict) -> list[Gate]:
    """Journaling must stay cheap, recovery must stay bit-for-bit, and
    rehydration must stay the same order of magnitude as the baseline."""
    acceptance = report.get("acceptance", {})
    overhead = acceptance.get("journal_overhead_p95_pct")
    gates = [
        _gate(
            "journal_overhead_p95",
            overhead is not None
            and overhead < STORE_SMOKE_OVERHEAD_PCT,
            f"answer-p95 overhead {overhead}% (smoke tolerance < "
            f"{STORE_SMOKE_OVERHEAD_PCT}%; committed full-run gate < "
            f"{acceptance.get('journal_overhead_max_pct', 15.0)}%)",
        ),
        _gate(
            "crash_recovery_identical",
            acceptance.get("crash_recovery_identical", False),
            "kill -9 recovery replayed the identical question sequence",
        ),
    ]
    rehydrate = acceptance.get("rehydrate_p95_ms")
    baseline_rehydrate = baseline.get("acceptance", {}).get(
        "rehydrate_p95_ms"
    )
    if baseline_rehydrate:
        ceiling = baseline_rehydrate * STORE_REHYDRATE_RELATIVE_MAX
        gates.append(
            _gate(
                "rehydrate_p95_vs_baseline",
                rehydrate is not None and rehydrate <= ceiling,
                f"rehydrate p95 {rehydrate}ms (baseline "
                f"{baseline_rehydrate}ms, ceiling {ceiling:.1f}ms)",
            )
        )
    return gates


def check_fleet(report: dict, baseline: dict) -> list[Gate]:
    """Multi-worker throughput must scale with the cores the *report's*
    machine actually has: the speedups are re-derived here from the raw
    per-worker-count sessions/sec, the scaling floor applies to the
    largest measured fleet that fits the runner's cpu_count (a 1-core
    CI runner degenerates to the single-worker identity, not the
    4-core 3× target), and fleets oversubscribing their cores must not
    collapse.  Recovery must stay parity-clean and the kill -9
    takeover the same order of magnitude as the committed baseline."""
    acceptance = report.get("acceptance", {})
    by_workers = report.get("scaling", {}).get("by_workers", {})
    rates = {
        int(workers): cell.get("sessions_per_sec")
        for workers, cell in by_workers.items()
        if cell.get("sessions_per_sec")
    }
    factor = baseline.get("acceptance", {}).get(
        "scaling_floor_factor", FLEET_SCALING_FLOOR_FACTOR
    )
    cpu_count = acceptance.get("cpu_count") or 1
    single = rates.get(1)
    gated = max(
        (w for w in rates if w <= cpu_count), default=1
    )
    workers_max = max(rates, default=1)
    floor = factor * gated
    speedup_gated = (
        round(rates[gated] / single, 3)
        if single and gated in rates
        else None
    )
    speedup_max = (
        round(rates[workers_max] / single, 3)
        if single and workers_max in rates
        else None
    )
    gates = [
        _gate(
            "scaling_vs_cores",
            speedup_gated is not None and speedup_gated >= floor,
            f"{speedup_gated}x at {gated} workers on {cpu_count} "
            f"core(s) (floor {floor:.2f}x = {factor} x workers; "
            f"largest measured fleet fitting the cores)",
        ),
        _gate(
            "oversubscription_bounded",
            speedup_max is not None
            and speedup_max >= FLEET_OVERSUBSCRIPTION_FLOOR,
            f"{speedup_max}x at {workers_max} workers on {cpu_count} "
            f"core(s) (floor {FLEET_OVERSUBSCRIPTION_FLOOR}x — "
            f"oversubscription may cost, not collapse)",
        ),
        _gate(
            "recovery_parity",
            acceptance.get("recovery_parity", False),
            "sessions finished identically after kill -9 takeover",
        ),
        _gate(
            "scaling_parity",
            acceptance.get("scaling_parity", False),
            "every timed session matched the in-process reference",
        ),
    ]
    takeover = acceptance.get("takeover_seconds")
    baseline_takeover = baseline.get("acceptance", {}).get(
        "takeover_seconds"
    )
    if baseline_takeover:
        ceiling = baseline_takeover * FLEET_TAKEOVER_RELATIVE_MAX
        gates.append(
            _gate(
                "takeover_vs_baseline",
                takeover is not None and takeover <= ceiling,
                f"takeover {takeover}s (baseline {baseline_takeover}s, "
                f"ceiling {ceiling:.1f}s)",
            )
        )
    gates.extend(_shared_index_gates(report))
    gates.extend(_plan_cache_fleet_gates(report))
    return gates


def _plan_cache_fleet_gates(report: dict) -> list[Gate]:
    """Cross-worker plan-table reuse, re-derived from the cell's own
    aggregated counters.  Like the index plane, a platform without
    POSIX shared memory degrades to per-process caches by design."""
    cell = report.get("plan_cache", {})
    if not cell.get("supported", False):
        return [
            _gate(
                "plan_cache_supported",
                True,
                "shared memory unavailable on this runner; plan tier "
                "degraded to per-process caches (by design)",
            )
        ]
    shared_hits = cell.get("counters", {}).get("shared_hits_total", 0)
    leaked = cell.get("leaked_segments", None)
    return [
        _gate(
            "plan_cross_worker_hits",
            bool(cell.get("parity_checked"))
            and shared_hits >= 1,
            f"{shared_hits} cross-worker shared-tier hits over "
            f"{cell.get('questions_per_session')} identical questions "
            f"per slot (need >= 1, parity-checked)",
        ),
        _gate(
            "plan_no_leaked_segments",
            leaked == [],
            f"plan segments left in /dev/shm after the fleet closed: "
            f"{leaked}",
        ),
    ]


def _shared_index_gates(report: dict) -> list[Gate]:
    """The zero-copy shared-index plane's cell, re-derived from raw
    bytes and latencies.  A platform without POSIX shared memory
    (``supported: false``) degrades to private builds by design and
    passes trivially — but a supported run must share memory, attach
    fast, and leak nothing."""
    cell = report.get("shared_index", {})
    if not cell.get("supported", False):
        return [
            _gate(
                "shared_index_supported",
                True,
                "shared memory unavailable on this runner; plane "
                "degraded to private builds (by design)",
            )
        ]
    single = cell.get("single_resident_bytes") or 0
    fleet_resident = cell.get("fleet_resident_bytes")
    ratio = (
        fleet_resident / single
        if single and fleet_resident is not None
        else None
    )
    build_p95 = cell.get("private_build_latency", {}).get("p95_ms")
    attach_p95 = cell.get("attach_latency", {}).get("p95_ms")
    speedup = (
        round(build_p95 / attach_p95, 3)
        if build_p95 and attach_p95
        else None
    )
    floor = max(
        float(
            report.get("acceptance", {}).get(
                "shared_attach_speedup_floor",
                FLEET_SHARED_ATTACH_FLOOR_MIN,
            )
        ),
        FLEET_SHARED_ATTACH_FLOOR_MIN,
    )
    ratio_max = min(
        float(
            report.get("acceptance", {}).get(
                "shared_memory_ratio_max",
                FLEET_SHARED_MEMORY_RATIO_MAX,
            )
        ),
        FLEET_SHARED_MEMORY_RATIO_HARD_MAX,
    )
    leaked = cell.get("leaked_segments", None)
    return [
        _gate(
            "shared_index_memory",
            ratio is not None and ratio <= ratio_max,
            f"{cell.get('workers')}-worker resident {fleet_resident}B "
            f"vs {single}B single-process = "
            f"{None if ratio is None else round(ratio, 3)}x "
            f"(max {ratio_max}x — one machine-wide copy, not N)",
        ),
        _gate(
            "shared_index_attach_speedup",
            speedup is not None and speedup >= floor,
            f"warm-fleet cold create p95 {attach_p95}ms via attach vs "
            f"{build_p95}ms private build = {speedup}x (floor {floor}x)",
        ),
        _gate(
            "shared_index_no_leaks",
            leaked == [],
            f"segments left in /dev/shm after both fleets closed: "
            f"{leaked}",
        ),
    ]


SUITES = {
    "core": check_core,
    "build": check_build,
    "plan": check_plan,
    "service": check_service,
    "store": check_store,
    "fleet": check_fleet,
    "stream": check_stream,
}


def run_suite(suite: str, report: dict, baseline: dict) -> list[Gate]:
    """All gates of one suite; unknown suite names raise ``KeyError``."""
    return SUITES[suite](report, baseline)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite", required=True, choices=sorted(SUITES)
    )
    parser.add_argument(
        "--report",
        required=True,
        type=Path,
        help="the --smoke JSON report to gate",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        type=Path,
        help="the committed full-run baseline (BENCH_<suite>.json)",
    )
    args = parser.parse_args(argv)
    report = json.loads(args.report.read_text())
    baseline = json.loads(args.baseline.read_text())
    gates = run_suite(args.suite, report, baseline)
    failed = [gate for gate in gates if not gate.ok]
    for gate in gates:
        print(
            f"[{'OK' if gate.ok else 'FAIL'}] {args.suite}/{gate.name}: "
            f"{gate.detail}"
        )
    if failed:
        print(
            f"{len(failed)}/{len(gates)} trajectory gates failed for "
            f"suite {args.suite!r}"
        )
        return 1
    print(f"all {len(gates)} trajectory gates hold for {args.suite!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
