"""Theorem 6.1: semijoin consistency is NP-complete.

No figure accompanies §6, but the theorem is the paper's third
contribution; these benchmarks quantify it by timing the three exact
deciders on reduction instances of growing size.  Expected shape: the
brute-force decider explodes with |Ω| (it is the 2^|Ω| enumeration),
while the SAT/backtracking deciders track the formula's difficulty.
"""

from __future__ import annotations

import random

import pytest

from repro.sat import random_3cnf
from repro.semijoin import (
    consistent_semijoin_backtracking,
    consistent_semijoin_brute,
    consistent_semijoin_sat,
    reduce_3sat,
)


def _reduction(n_variables: int, n_clauses: int, seed: int):
    rng = random.Random(seed)
    return reduce_3sat(random_3cnf(n_variables, n_clauses, rng))


@pytest.mark.parametrize("n_variables", [3, 4, 5, 6])
def test_sat_decider_scaling(benchmark, n_variables):
    reduction = _reduction(n_variables, 2 * n_variables, seed=1)
    benchmark.group = "thm61-sat"
    benchmark.extra_info["omega"] = len(reduction.instance.omega)
    theta = benchmark.pedantic(
        consistent_semijoin_sat,
        args=(reduction.instance, reduction.sample),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["consistent"] = theta is not None


@pytest.mark.parametrize("n_variables", [3, 4, 5, 6])
def test_backtracking_decider_scaling(benchmark, n_variables):
    reduction = _reduction(n_variables, 2 * n_variables, seed=1)
    benchmark.group = "thm61-backtracking"
    theta = benchmark.pedantic(
        consistent_semijoin_backtracking,
        args=(reduction.instance, reduction.sample),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["consistent"] = theta is not None


def test_brute_force_decider_small_only(benchmark):
    """The 2^|Ω| reference is only feasible for the tiniest instances —
    that is the point of the theorem."""
    from repro.relational import Instance, Relation
    from repro.semijoin import SemijoinSample

    instance = Instance(
        Relation.build("R", ["A1", "A2"], [(1, 2), (3, 4), (5, 6)]),
        Relation.build("P", ["B1", "B2"], [(1, 2), (3, 9)]),
    )
    sample = SemijoinSample.of(
        positives=[(1, 2)], negatives=[(5, 6)]
    )
    benchmark.group = "thm61-brute"
    theta = benchmark.pedantic(
        consistent_semijoin_brute,
        args=(instance, sample),
        rounds=1,
        iterations=1,
    )
    assert theta is not None
