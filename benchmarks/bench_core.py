"""Core-engine benchmark harness — emits ``BENCH_core.json``.

Measures the array-native inference engine against the frozen seed
implementations (:mod:`legacy_seed`) so the performance trajectory is
tracked from one PR to the next with a fixed baseline:

* ``index_build``      — ``SignatureIndex`` construction (chunked packed
                         words + factorised unique vs the seed's dense
                         ``(words, |R|, |P|)`` tensor), on synthetic and
                         TPC-H products of ≥ 10⁵ tuples;
* ``l1s_step``/``l2s_step`` — one full ``entropy^k`` sweep over every
                         informative class on a fresh state;
* ``l2s_full_session`` — a complete interactive inference run with the
                         L2S strategy against a perfect oracle (the
                         paper's most expensive configuration, §5.3).

Every cell checks bit-for-bit parity between baseline and new engine
before timing, so a speedup never hides a behaviour change.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py            # full run
    PYTHONPATH=src python benchmarks/bench_core.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_core.py --output my.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

import legacy_seed
from bench_util import bench_meta
from repro.core import (
    PerfectOracle,
    SignatureIndex,
    run_inference,
    sample_goal_of_size,
)
from repro.core.fast_lookahead import entropies_for_informative
from repro.core.session import InferenceSession
from repro.core.state import InferenceState
from repro.core.strategies.lookahead import LookaheadSkylineStrategy
from repro.data import generate_tpch, tpch_workloads
from repro.data.synthetic import SyntheticConfig, generate_synthetic

import random


def _best_of(repeats: int, fn) -> float:
    """Wall-clock of the fastest of ``repeats`` runs (reduces jitter)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _cell(name, workload, params, baseline_seconds, new_seconds):
    return {
        "name": name,
        "workload": workload,
        "params": params,
        "baseline_seconds": round(baseline_seconds, 6),
        "new_seconds": round(new_seconds, 6),
        "speedup": round(baseline_seconds / max(new_seconds, 1e-12), 2),
        "parity_checked": True,
    }


# --- index construction -------------------------------------------------------


def bench_index_build(instance, workload_name, repeats):
    new_index = SignatureIndex(instance, backend="numpy")
    legacy_classes, legacy_maximal = legacy_seed.legacy_build_index(instance)
    assert [(c.mask, c.count, c.representative) for c in new_index] == [
        (c.mask, c.count, c.representative) for c in legacy_classes
    ], f"index parity failed on {workload_name}"
    assert new_index.maximal_class_ids == legacy_maximal

    baseline = _best_of(
        repeats, lambda: legacy_seed.legacy_build_index(instance)
    )
    new = _best_of(
        repeats, lambda: SignatureIndex(instance, backend="numpy")
    )
    return _cell(
        "index_build",
        workload_name,
        {
            "product_size": instance.cartesian_size,
            "omega": len(instance.omega),
            "classes": len(new_index),
        },
        baseline,
        new,
    )


# --- lookahead steps ----------------------------------------------------------


def bench_lookahead_step(index, workload_name, depth, repeats):
    state = InferenceState(index)
    legacy_state = legacy_seed.LegacyInferenceState(index)
    new_result = entropies_for_informative(state, depth)
    legacy_result = legacy_seed.legacy_entropies_for_informative(
        legacy_state, depth
    )
    assert new_result == legacy_result, (
        f"L{depth}S parity failed on {workload_name}"
    )

    baseline = _best_of(
        repeats,
        lambda: legacy_seed.legacy_entropies_for_informative(
            legacy_seed.LegacyInferenceState(index), depth
        ),
    )
    new = _best_of(
        repeats,
        lambda: entropies_for_informative(InferenceState(index), depth),
    )
    return _cell(
        f"l{depth}s_step",
        workload_name,
        {"classes": len(index), "omega": len(index.instance.omega)},
        baseline,
        new,
    )


# --- full sessions ------------------------------------------------------------


def _run_legacy_session(instance, index, goal, depth):
    session = InferenceSession(
        instance,
        legacy_seed.LegacyLookaheadStrategy(depth),
        PerfectOracle(instance, goal),
        index=index,
        seed=0,
    )
    session.state = legacy_seed.LegacyInferenceState(index)
    return session.run()


def _run_new_session(instance, index, goal, depth):
    return run_inference(
        instance,
        LookaheadSkylineStrategy(depth=depth),
        PerfectOracle(instance, goal),
        index=index,
        seed=0,
    )


def bench_full_session(instance, index, goal, workload_name, depth, repeats):
    new_result = _run_new_session(instance, index, goal, depth)
    legacy_result = _run_legacy_session(instance, index, goal, depth)
    assert new_result.predicate == legacy_result.predicate, (
        f"session predicate parity failed on {workload_name}"
    )
    assert new_result.interactions == legacy_result.interactions

    baseline = _best_of(
        repeats, lambda: _run_legacy_session(instance, index, goal, depth)
    )
    new = _best_of(
        repeats, lambda: _run_new_session(instance, index, goal, depth)
    )
    return _cell(
        f"l{depth}s_full_session",
        workload_name,
        {
            "classes": len(index),
            "omega": len(index.instance.omega),
            "interactions": new_result.interactions,
            "goal_size": len(goal),
        },
        baseline,
        new,
    )


# --- harness ------------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    repeats = 1 if smoke else 3
    cells = []

    # Synthetic L2S workload: |N| ≥ 200 classes (acceptance floor).
    session_config = (
        SyntheticConfig(4, 4, 25, 8) if smoke else SyntheticConfig(4, 4, 60, 12)
    )
    instance = generate_synthetic(session_config, seed=1)
    index = SignatureIndex(instance)
    label = f"synthetic{session_config.label}"
    print(f"[bench] {label}: {len(index)} classes", flush=True)
    cells.append(bench_lookahead_step(index, label, 1, repeats))
    cells.append(bench_lookahead_step(index, label, 2, repeats))
    goal = sample_goal_of_size(index, 3, random.Random(7))
    if goal is None:
        goal = index.predicate_of(len(index) - 1)
    session_repeats = 1 if smoke else 2
    cells.append(
        bench_full_session(instance, index, goal, label, 2, session_repeats)
    )
    print(f"[bench] {label}: sessions done", flush=True)

    # Index construction at |R|×|P| ≥ 10⁵ (acceptance floor).
    build_config = (
        SyntheticConfig(4, 4, 40, 30) if smoke else SyntheticConfig(4, 4, 350, 30)
    )
    build_instance = generate_synthetic(build_config, seed=2)
    cells.append(
        bench_index_build(
            build_instance, f"synthetic{build_config.label}", repeats
        )
    )
    print("[bench] synthetic index build done", flush=True)

    # TPC-H: the paper's join5 (the largest index) for construction and a
    # session on join4.
    scale = 0.5 if smoke else 4.0
    tables = generate_tpch(scale=scale, seed=0)
    workloads = {w.name: w for w in tpch_workloads(tables)}
    join5 = workloads["join5"]
    cells.append(
        bench_index_build(join5.instance, f"tpch-join5@sf{scale}", repeats)
    )
    print("[bench] tpch index build done", flush=True)

    session_scale = 0.5 if smoke else 2.0
    session_tables = (
        tables
        if session_scale == scale
        else generate_tpch(scale=session_scale, seed=0)
    )
    session_workloads = {w.name: w for w in tpch_workloads(session_tables)}
    join5s = session_workloads["join5"]
    join5s_index = SignatureIndex(join5s.instance)
    cells.append(
        bench_lookahead_step(
            join5s_index, f"tpch-join5@sf{session_scale}", 2, repeats
        )
    )
    cells.append(
        bench_full_session(
            join5s.instance,
            join5s_index,
            join5s.goal,
            f"tpch-join5@sf{session_scale}",
            2,
            session_repeats,
        )
    )
    print("[bench] tpch sessions done", flush=True)

    by_name: dict[str, list] = {}
    for cell in cells:
        by_name.setdefault(cell["name"], []).append(cell)

    def _acceptance(name, predicate=lambda cell: True):
        eligible = [c for c in by_name.get(name, ()) if predicate(c)]
        return min((c["speedup"] for c in eligible), default=None)

    report = {
        "meta": bench_meta(
            numpy=np.__version__,
            smoke=smoke,
            baseline="seed implementations (benchmarks/legacy_seed.py)",
        ),
        "benchmarks": cells,
        "acceptance": {
            "l2s_full_session_speedup_min": _acceptance(
                "l2s_full_session",
                lambda cell: smoke or cell["params"]["classes"] >= 200,
            ),
            "index_build_speedup_min": _acceptance(
                "index_build",
                lambda cell: smoke
                or cell["params"]["product_size"] >= 100_000,
            ),
            "targets": {
                "l2s_full_session": 5.0,
                "index_build": 2.0,
            },
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances, single repeat — a CI regression canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    for cell in report["benchmarks"]:
        print(
            f"  {cell['name']:20s} {cell['workload']:28s} "
            f"baseline {cell['baseline_seconds']*1e3:9.1f}ms   "
            f"new {cell['new_seconds']*1e3:9.1f}ms   "
            f"speedup {cell['speedup']:6.2f}x"
        )
    acceptance = report["acceptance"]
    print(
        "acceptance: "
        f"L2S full-session ≥5x → {acceptance['l2s_full_session_speedup_min']}, "
        f"index build ≥2x → {acceptance['index_build_speedup_min']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
