"""Durable-session-store benchmark harness — emits ``BENCH_store.json``.

Measures what the persistence layer costs and what it buys:

* ``journal_overhead`` — the serving benchmark's concurrent-session
  cell (≥ 64 interactive TPC-H sessions, 16 client threads, one cached
  index) run twice: without a store and with a SQLite WAL store
  journaling every answer.  The gate: answer p95 with journaling stays
  within **15 %** of the store-less run — journal writes are batched
  off the event loop behind per-session single-flight, so the answer
  path never waits on a disk transaction.
* ``rehydrate`` — p50/p95 wall-clock of touching a demoted session:
  load checkpoint + journal tail from SQLite and replay it through
  propose/answer on the build pool.
* ``crash_recovery`` — a real ``kill -9``: a child process journals a
  session's answers and is killed without any shutdown; the parent
  reopens the store, recovers the session, **verifies the continuation
  is bit-for-bit identical** to an uninterrupted run, and reports the
  recover wall-clock.

Every timed session is parity-checked against the in-process
``run_inference`` result before timings are trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py            # full run
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_store.py --output my.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    run_inference,
    strategy_by_name,
)
from repro.data import generate_tpch, tpch_workloads
from repro.service import (
    IndexCache,
    ServiceServer,
    SessionManager,
    SqliteSessionStore,
)

from bench_util import bench_meta, drive_session, latency_summary

TPCH_SEED = 0
TPCH_SCALE = 1.0
CLIENT_THREADS = 16
OVERHEAD_GATE_PCT = 15.0


def _serving_run(sessions, oracle, store=None):
    """One concurrent-serving pass; returns (latencies, outcomes, stats)."""
    strategies = ["RND", "BU", "TD", "L1S", "L2S"]
    jobs = list(zip(range(sessions), itertools.cycle(strategies)))
    latencies: list[float] = []
    manager = SessionManager(
        index_cache=IndexCache(),
        max_sessions=sessions * 2,
        store=store,
        speculate=False,
    )
    with ServiceServer(manager=manager) as server:
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            outcomes = list(
                pool.map(
                    lambda job: (
                        job,
                        drive_session(
                            server,
                            "tpch/join4",
                            job[1],
                            job[0],
                            oracle,
                            latencies,
                            workload_seed=TPCH_SEED,
                            scale=TPCH_SCALE,
                        ),
                    ),
                    jobs,
                )
            )
        manager.flush_store()
        stats = manager.stats()
    return latencies, outcomes, stats


def _check_parity(outcomes, workload, reference_index, oracle):
    cache: dict[tuple[str, int], tuple[list, int]] = {}
    for (seed, strategy), final in outcomes:
        key = (strategy, seed)
        if key not in cache:
            result = run_inference(
                workload.instance,
                strategy_by_name(strategy),
                oracle,
                index=reference_index,
                seed=seed,
            )
            cache[key] = (
                [
                    [str(a), str(b)]
                    for a, b in result.predicate.sorted_pairs()
                ],
                result.interactions,
            )
        expected, interactions = cache[key]
        assert final["predicate"]["pairs"] == expected, (
            f"parity failed: {strategy} seed={seed}"
        )
        assert final["progress"]["interactions"] == interactions


# --- cells -------------------------------------------------------------------


def bench_journal_overhead(sessions: int, db_dir: str) -> dict:
    """Answer p95 with journaling vs without, same serving load."""
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    oracle = PerfectOracle(workload.instance, workload.goal)
    reference_index = SignatureIndex(workload.instance)

    plain_lat, plain_out, _ = _serving_run(sessions, oracle, store=None)
    _check_parity(plain_out, workload, reference_index, oracle)

    store = SqliteSessionStore(os.path.join(db_dir, "bench_overhead.db"))
    store_lat, store_out, stats = _serving_run(
        sessions, oracle, store=store
    )
    _check_parity(store_out, workload, reference_index, oracle)
    store_stats = stats["store"]
    # every answer of every session must actually have been journaled
    assert store_stats["journal_appends"] == len(store_lat), (
        f"journaled {store_stats['journal_appends']} answers, "
        f"recorded {len(store_lat)}"
    )
    store.close()

    plain = latency_summary(plain_lat)
    journaled = latency_summary(store_lat)
    overhead_pct = round(
        (journaled["p95_ms"] / plain["p95_ms"] - 1.0) * 100.0, 2
    )
    return {
        "workload": "tpch/join4",
        "sessions": sessions,
        "client_threads": CLIENT_THREADS,
        "answers": len(store_lat),
        "plain_answer_latency": plain,
        "store_answer_latency": journaled,
        "overhead_p95_pct": overhead_pct,
        "store_stats": store_stats,
        "parity_checked": True,
    }


def bench_rehydrate(sessions: int, answers_each: int, db_dir: str) -> dict:
    """Wall-clock of touching a demoted session (load + replay)."""
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    oracle = PerfectOracle(workload.instance, workload.goal)
    store = SqliteSessionStore(os.path.join(db_dir, "bench_rehydrate.db"))
    manager = SessionManager(
        index_cache=IndexCache(),
        max_sessions=sessions * 2,
        store=store,
        speculate=False,
    )
    from repro.service.protocol import parse_create_payload

    ids = []
    for seed in range(sessions):
        managed = manager.create(
            parse_create_payload(
                {"workload": "tpch/join4", "strategy": "L2S", "seed": seed}
            )
        )
        recorded = 0
        while recorded < answers_each:
            question = manager.propose_question(managed)
            if question is None:
                break
            manager.record_answer(
                managed,
                question.question_id,
                oracle.label(question.tuple_pair),
            )
            recorded += 1
        ids.append((managed.session_id, recorded))
    manager.demote_all()
    manager.flush_store()

    latencies = []
    for session_id, recorded in ids:
        started = time.perf_counter()
        rehydrated = manager.get(session_id)
        latencies.append(time.perf_counter() - started)
        assert rehydrated.session.state.interaction_count == recorded
        manager.demote(session_id)  # keep live-set size constant
    manager.close(wait=True)
    store.close()
    return {
        "workload": "tpch/join4",
        "sessions": sessions,
        "answers_each": answers_each,
        "rehydrate_latency": latency_summary(latencies),
    }


_CRASH_CHILD = """
import json, os, signal, sys

config = json.load(open(sys.argv[1]))

from repro.core import PerfectOracle
from repro.data import generate_tpch, tpch_workloads
from repro.service import SessionManager, SqliteSessionStore
from repro.service.protocol import parse_create_payload

workload = tpch_workloads(generate_tpch(scale=1.0, seed=0))[3]
oracle = PerfectOracle(workload.instance, workload.goal)
store = SqliteSessionStore(config["db"])
manager = SessionManager(store=store, speculate=False, checkpoint_every=4)
managed = manager.create(
    parse_create_payload(
        {
            "workload": "tpch/join4",
            "strategy": config["strategy"],
            "seed": config["seed"],
        }
    )
)
asked = []
for _ in range(config["cut"]):
    question = manager.propose_question(managed)
    if question is None:
        break
    asked.append(question.class_id)
    manager.record_answer(
        managed, question.question_id, oracle.label(question.tuple_pair)
    )
manager.flush_store()
print(
    json.dumps({"session_id": managed.session_id, "asked": asked}),
    flush=True,
)
os.kill(os.getpid(), signal.SIGKILL)
"""


def bench_crash_recovery(db_dir: str) -> dict:
    """kill -9 a journaling process; time reopen + recover, check parity."""
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    oracle = PerfectOracle(workload.instance, workload.goal)
    seed = 13
    strategy = "RND"  # the longest join4 sessions: >= 10 journaled answers
    reference = run_inference(
        workload.instance,
        strategy_by_name(strategy),
        oracle,
        index=SignatureIndex(workload.instance),
        seed=seed,
    )
    cut = min(max(1, reference.interactions - 2), 12)

    db = os.path.join(db_dir, "bench_crash.db")
    child = os.path.join(db_dir, "crash_child.py")
    config = os.path.join(db_dir, "crash_config.json")
    Path(child).write_text(_CRASH_CHILD)
    Path(config).write_text(
        json.dumps(
            {"db": db, "seed": seed, "cut": cut, "strategy": strategy}
        )
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, child, config],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert result.returncode == -signal.SIGKILL, result.stderr
    report = json.loads(result.stdout)

    started = time.perf_counter()
    store = SqliteSessionStore(db)
    manager = SessionManager(store=store, speculate=False)
    recovered = manager.get(report["session_id"])
    recover_seconds = time.perf_counter() - started
    assert recovered.session.state.interaction_count == cut

    remaining = []
    while True:
        question = manager.propose_question(recovered)
        if question is None:
            break
        remaining.append(question.class_id)
        manager.record_answer(
            recovered,
            question.question_id,
            oracle.label(question.tuple_pair),
        )
    final = recovered.session.current_predicate()
    manager.close(wait=True)
    store.close()

    # the recovered continuation must equal the uninterrupted run
    uninterrupted = []
    from repro.core import InferenceSession

    twin = InferenceSession(
        workload.instance,
        strategy_by_name(strategy),
        index=SignatureIndex(workload.instance),
        seed=seed,
    )
    while not twin.is_finished():
        question = twin.propose()
        uninterrupted.append(question.class_id)
        twin.answer(
            question.question_id, oracle.label(question.tuple_pair)
        )
    assert report["asked"] == uninterrupted[:cut]
    assert remaining == uninterrupted[cut:], (
        "recovered session diverged from the uninterrupted run"
    )
    assert final == reference.predicate
    return {
        "workload": "tpch/join4",
        "strategy": strategy,
        "journaled_answers": cut,
        "remaining_answers": len(remaining),
        "recover_wall_seconds": round(recover_seconds, 4),
        "identical_remaining_sequence": True,
    }


# --- harness -----------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    sessions = 16 if smoke else 64
    with tempfile.TemporaryDirectory(prefix="bench_store_") as db_dir:
        print(
            f"[bench] journal overhead at {sessions} concurrent sessions",
            flush=True,
        )
        overhead = bench_journal_overhead(sessions, db_dir)
        print(
            f"[bench] answer p95 {overhead['plain_answer_latency']['p95_ms']}ms"
            f" plain vs {overhead['store_answer_latency']['p95_ms']}ms"
            f" journaled ({overhead['overhead_p95_pct']:+.1f}%)",
            flush=True,
        )
        rehydrate = bench_rehydrate(
            8 if smoke else 32, 6, db_dir
        )
        print(
            f"[bench] rehydrate p95 "
            f"{rehydrate['rehydrate_latency']['p95_ms']}ms",
            flush=True,
        )
        crash = bench_crash_recovery(db_dir)
        print(
            f"[bench] kill -9 -> recover in "
            f"{crash['recover_wall_seconds']}s "
            f"({crash['journaled_answers']} answers journaled)",
            flush=True,
        )

    return {
        "meta": bench_meta(
            smoke=smoke, transport="HTTP/1.1 keep-alive over loopback"
        ),
        "journal_overhead": overhead,
        "rehydrate": rehydrate,
        "crash_recovery": crash,
        "acceptance": {
            "journal_overhead_p95_pct": overhead["overhead_p95_pct"],
            "journal_overhead_max_pct": OVERHEAD_GATE_PCT,
            "overhead_gate": (
                overhead["overhead_p95_pct"] < OVERHEAD_GATE_PCT
            ),
            "rehydrate_p95_ms": rehydrate["rehydrate_latency"]["p95_ms"],
            "recover_wall_seconds": crash["recover_wall_seconds"],
            "crash_recovery_identical": crash[
                "identical_remaining_sequence"
            ],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_store.json"
        ),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="16 sessions — a CI regression canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    acceptance = report["acceptance"]
    print(
        f"  journal overhead: answer p95 "
        f"{acceptance['journal_overhead_p95_pct']:+.1f}% "
        f"(gate < {acceptance['journal_overhead_max_pct']}%)"
    )
    print(
        f"  rehydrate p95 {acceptance['rehydrate_p95_ms']}ms, "
        f"kill -9 recover {acceptance['recover_wall_seconds']}s"
    )
    gates = [
        ("crash_recovery_identical", acceptance["crash_recovery_identical"]),
    ]
    if not report["meta"]["smoke"]:
        # The smoke run's 16-session overhead is gated (with tolerance)
        # by benchmarks/check_trajectory.py in CI; the committed
        # full-run report must satisfy the hard 15% gate itself.
        gates.append(("overhead_gate", acceptance["overhead_gate"]))
    for name, ok in gates:
        print(f"acceptance: {name} → {'OK' if ok else 'FAIL'}")
    return 0 if all(ok for _, ok in gates) else 1


if __name__ == "__main__":
    raise SystemExit(main())
