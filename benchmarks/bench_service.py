"""Serving-layer benchmark harness — emits ``BENCH_service.json``.

A load generator against the :mod:`repro.service` HTTP server, measuring
what the core benchmarks cannot: the cost of putting Algorithm 1 behind
a shared, cached, concurrent serving layer.

* ``serving``  — ≥ 64 interactive sessions driven concurrently (16
                 client threads) against ONE cached TPC-H index:
                 sessions/sec, answers/sec, p50/p95 per-answer HTTP
                 latency, and the index-cache hit ratio (every session
                 after the first must hit).
* ``l2s_fig7`` — p50/p95 answer latency with the paper's most expensive
                 strategy (L2S) on the Figure 7 synthetic configurations,
                 i.e. "what does a question cost end-to-end when the
                 server is doing two-step lookahead".
* ``batched_sessions`` — the cross-session kernel batcher under real
                 HTTP load: many L2S sessions on ONE shared index,
                 kernel batching on vs off, with the batch-size
                 histogram from ``GET /stats`` proving that concurrent
                 proposals actually coalesced.

Every session is parity-checked against the in-process
``run_inference`` result for the same strategy/seed before timings are
trusted — a fast server that infers the wrong predicate is not a win.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full run
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_service.py --output my.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PerfectOracle, SignatureIndex
from repro.data import (
    PAPER_CONFIGS,
    generate_synthetic,
    generate_tpch,
    tpch_workloads,
)
from repro.relational import JoinPredicate
from repro.service import (
    IndexCache,
    ServiceClient,
    ServiceServer,
    SessionManager,
)

TPCH_SEED = 0
TPCH_SCALE = 1.0
CLIENT_THREADS = 16

#: The coalescing window used by the batched-sessions sweep (the
#: serving default): wide enough that concurrently pending proposals
#: pile up, short enough not to tax the answer round-trip.
SWEEP_BATCH_WINDOW = 0.002

from bench_util import (
    bench_meta,
    drive_session,
    expected_pairs,
    latency_summary,
)


# --- cells -------------------------------------------------------------------


def bench_concurrent_serving(sessions: int) -> dict:
    """≥ 64 concurrent TPC-H sessions over one cached index."""
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    oracle = PerfectOracle(workload.instance, workload.goal)
    reference_index = SignatureIndex(workload.instance)
    strategies = ["RND", "BU", "TD", "L1S", "L2S"]
    jobs = list(zip(range(sessions), itertools.cycle(strategies)))
    latencies: list[float] = []

    manager = SessionManager(
        index_cache=IndexCache(), max_sessions=sessions * 2
    )
    with ServiceServer(manager=manager) as server:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            outcomes = list(
                pool.map(
                    lambda job: (
                        job,
                        drive_session(
                            server,
                            "tpch/join4",
                            job[1],
                            job[0],
                            oracle,
                            latencies,
                            scale=TPCH_SCALE,
                        ),
                    ),
                    jobs,
                )
            )
        wall = time.perf_counter() - started
        cache_stats = manager.index_cache.stats()
        with ServiceClient(server.host, server.port) as client:
            server_stats = client.stats()

    for (seed, strategy), final in outcomes:
        expected, interactions = expected_pairs(
            workload.instance, strategy, seed, oracle, reference_index
        )
        assert final["predicate"]["pairs"] == expected, (
            f"parity failed: {strategy} seed={seed}"
        )
        assert final["progress"]["interactions"] == interactions

    return {
        "workload": "tpch/join4",
        "sessions": sessions,
        "client_threads": CLIENT_THREADS,
        "wall_seconds": round(wall, 4),
        "sessions_per_second": round(sessions / wall, 2),
        "answers_total": len(latencies),
        "answers_per_second": round(len(latencies) / wall, 1),
        "answer_latency": latency_summary(latencies),
        "index_cache": cache_stats,
        "speculation": server_stats["speculation"],
        "kernel_batch": server_stats["kernel_batch"],
        "parity_checked": True,
    }


def bench_l2s_fig7(config_ids, sessions_per_config: int) -> list[dict]:
    """Per-answer latency for L2S on the Figure 7 synthetic sizes."""
    cells = []
    for config_id in config_ids:
        config = PAPER_CONFIGS[config_id]
        instance = generate_synthetic(config, seed=7)
        goal = JoinPredicate([instance.omega[0]])
        oracle = PerfectOracle(instance, goal)
        index = SignatureIndex(instance)
        latencies: list[float] = []
        interactions = 0
        with ServiceServer() as server:
            for seed in range(sessions_per_config):
                final = drive_session(
                    server,
                    f"synthetic/{config_id}",
                    "L2S",
                    seed,
                    oracle,
                    latencies,
                    workload_seed=7,
                    scale=TPCH_SCALE,
                )
                expected, _ = expected_pairs(
                    instance, "L2S", seed, oracle, index
                )
                assert final["predicate"]["pairs"] == expected, (
                    f"parity failed: L2S on {config.label} seed={seed}"
                )
                interactions += final["progress"]["interactions"]
        cells.append(
            {
                "config": config.label,
                "product_size": instance.cartesian_size,
                "omega": len(instance.omega),
                "classes": len(index),
                "sessions": sessions_per_config,
                "interactions_total": interactions,
                "answer_latency": latency_summary(latencies),
                "parity_checked": True,
            }
        )
        print(
            f"[bench] L2S {config.label}: "
            f"p95 {cells[-1]['answer_latency']['p95_ms']}ms",
            flush=True,
        )
    return cells


def bench_batched_sessions(sessions: int) -> dict:
    """Many L2S sessions on ONE shared TPC-H index, kernel batching on
    vs off — the coalescing path under genuine concurrent HTTP load.
    Speculation is off in both modes so every proposal reaches the
    kernel router instead of being served from a precomputed branch."""
    workload = tpch_workloads(
        generate_tpch(scale=TPCH_SCALE, seed=TPCH_SEED)
    )[3]
    oracle = PerfectOracle(workload.instance, workload.goal)
    reference_index = SignatureIndex(workload.instance)
    distinct_seeds = min(sessions, 8)
    expected = {
        seed: expected_pairs(
            workload.instance, "L2S", seed, oracle, reference_index
        )
        for seed in range(distinct_seeds)
    }

    modes = {}
    for batched in (True, False):
        manager = SessionManager(
            index_cache=IndexCache(),
            max_sessions=sessions * 2,
            speculate=False,
            kernel_batch=batched,
            batch_window_seconds=SWEEP_BATCH_WINDOW,
        )
        latencies: list[float] = []
        with ServiceServer(manager=manager) as server:
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                outcomes = list(
                    pool.map(
                        lambda seed: (
                            seed,
                            drive_session(
                                server,
                                "tpch/join4",
                                "L2S",
                                seed % distinct_seeds,
                                oracle,
                                latencies,
                                scale=TPCH_SCALE,
                            ),
                        ),
                        range(sessions),
                    )
                )
            wall = time.perf_counter() - started
            with ServiceClient(server.host, server.port) as client:
                stats = client.stats()
        for seed, final in outcomes:
            pairs, _ = expected[seed % distinct_seeds]
            assert final["predicate"]["pairs"] == pairs, (
                f"parity failed: batched={batched} seed={seed}"
            )
        modes[batched] = {
            "wall_seconds": round(wall, 4),
            "answers_total": len(latencies),
            "answers_per_second": round(len(latencies) / wall, 1),
            "answer_latency": latency_summary(latencies),
            "kernel_batch": stats["kernel_batch"],
        }
        mode = "batched" if batched else "per-session"
        print(
            f"[bench] {mode} sweep: "
            f"{modes[batched]['answers_per_second']} answers/s "
            f"(p95 {modes[batched]['answer_latency']['p95_ms']}ms)",
            flush=True,
        )

    return {
        "workload": "tpch/join4",
        "strategy": "L2S",
        "sessions": sessions,
        "client_threads": CLIENT_THREADS,
        "batch_window_seconds": SWEEP_BATCH_WINDOW,
        "speculation": "off (isolates the kernel path)",
        "batched": modes[True],
        "per_session": modes[False],
        "throughput_ratio": round(
            modes[True]["answers_per_second"]
            / max(modes[False]["answers_per_second"], 1e-9),
            3,
        ),
        "parity_checked": True,
    }


# --- harness -----------------------------------------------------------------


def run_benchmarks(smoke: bool = False) -> dict:
    sessions = 16 if smoke else 64
    print(f"[bench] serving {sessions} concurrent sessions", flush=True)
    serving = bench_concurrent_serving(sessions)
    print(
        f"[bench] {serving['sessions_per_second']} sessions/s, "
        f"answer p95 {serving['answer_latency']['p95_ms']}ms, "
        f"cache hit ratio {serving['index_cache']['hit_ratio']}",
        flush=True,
    )
    config_ids = range(2) if smoke else range(len(PAPER_CONFIGS))
    l2s_cells = bench_l2s_fig7(config_ids, 1 if smoke else 3)
    sweep_sessions = 32 if smoke else 256
    print(
        f"[bench] batched-kernel sweep, {sweep_sessions} sessions "
        f"on one shared index",
        flush=True,
    )
    batched_sessions = bench_batched_sessions(sweep_sessions)

    histogram = batched_sessions["batched"]["kernel_batch"][
        "batch_size_histogram"
    ]
    return {
        "meta": bench_meta(
            smoke=smoke, transport="HTTP/1.1 keep-alive over loopback"
        ),
        "serving": serving,
        "l2s_fig7": l2s_cells,
        "batched_sessions": batched_sessions,
        "acceptance": {
            "index_cache_hit_ratio": serving["index_cache"]["hit_ratio"],
            "index_cache_hit_ratio_target": 0.9,
            "l2s_p95_answer_ms_max": max(
                cell["answer_latency"]["p95_ms"] for cell in l2s_cells
            ),
            "batched_throughput_ratio": batched_sessions[
                "throughput_ratio"
            ],
            "batched_max_coalesced": max(
                (int(size) for size in histogram), default=0
            ),
            "speculation_depth": serving["speculation"]["depth"],
            "speculation_hit_ratio_by_depth": serving["speculation"][
                "hit_ratio_by_depth"
            ],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_service.json"
        ),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="16 sessions, 2 synthetic configs — a CI regression canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    serving = report["serving"]
    print(
        f"  serving: {serving['sessions']} sessions in "
        f"{serving['wall_seconds']}s "
        f"({serving['sessions_per_second']}/s), answer "
        f"p50 {serving['answer_latency']['p50_ms']}ms / "
        f"p95 {serving['answer_latency']['p95_ms']}ms, "
        f"cache hit ratio {serving['index_cache']['hit_ratio']}"
    )
    for cell in report["l2s_fig7"]:
        latency = cell["answer_latency"]
        print(
            f"  L2S {cell['config']:>15s}: "
            f"p50 {latency['p50_ms']:7.2f}ms   "
            f"p95 {latency['p95_ms']:7.2f}ms   "
            f"({cell['classes']} classes)"
        )
    sweep = report["batched_sessions"]
    print(
        f"  batched sweep ({sweep['sessions']} sessions): "
        f"{sweep['batched']['answers_per_second']} answers/s batched vs "
        f"{sweep['per_session']['answers_per_second']} per-session "
        f"({sweep['throughput_ratio']}x), histogram "
        f"{sweep['batched']['kernel_batch']['batch_size_histogram']}"
    )
    acceptance = report["acceptance"]
    ok = (
        acceptance["index_cache_hit_ratio"]
        > acceptance["index_cache_hit_ratio_target"]
    )
    print(
        f"acceptance: cache hit ratio "
        f"{acceptance['index_cache_hit_ratio']} > 0.9 → "
        f"{'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
