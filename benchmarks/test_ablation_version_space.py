"""Ablation: version-space information gain vs the paper's strategies.

§7 proposes probabilistic lookahead as future work;
:class:`~repro.core.strategies.version_space.VersionSpaceStrategy` is the
uniform-prior instance.  This ablation compares its question counts and
cost against TD and the lookahead strategies on the synthetic workloads.

Expected shape: IG is competitive with L1S on interactions (both try to
halve the hypothesis space) at a cost that grows with the number of
non-nullable lattice nodes rather than with the number of classes.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    run_inference,
    sample_goal_of_size,
    strategy_by_name,
)
from repro.data import SyntheticConfig, generate_synthetic

CONFIG = SyntheticConfig(3, 3, 40, 80)


def _draw(goal_size: int, seed: int):
    rng = random.Random(seed)
    while True:
        instance = generate_synthetic(CONFIG, seed=rng.randrange(2**31))
        index = SignatureIndex(instance)
        goal = sample_goal_of_size(index, goal_size, rng)
        if goal is not None:
            return instance, index, goal


@pytest.mark.parametrize("strategy_name", ["IG", "TD", "L1S", "L2S"])
@pytest.mark.parametrize("goal_size", [1, 2, 3])
def test_version_space_vs_paper_strategies(
    benchmark, strategy_name, goal_size
):
    instance, index, goal = _draw(goal_size, seed=21)
    strategy = strategy_by_name(strategy_name)
    benchmark.group = f"ablation-ig-size{goal_size}"

    def run():
        return run_inference(
            instance,
            strategy,
            PerfectOracle(instance, goal),
            index=index,
            seed=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.matches_goal(instance, goal)
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["classes"] = len(index)
