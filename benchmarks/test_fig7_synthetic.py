"""Figures 7a–7l: synthetic sweeps — interactions and time by goal size.

The benchmark grid covers every generator configuration of §5.2 at goal
sizes {0, 2, 4} for the three headline strategies (BU — best at size 0,
TD — best around size 2, L2S — best at sizes ≥ 3 per Table 1); the full
5-strategy × 5-size grid is produced by ``python -m repro.experiments``,
which backs EXPERIMENTS.md.

Expected shapes (paper §5.3):

* size-0 goals take exactly 1 interaction with BU;
* goals of size 2 sit mid-lattice and need the *most* interactions —
  more than sizes 3–4;
* L2S needs the fewest interactions for sizes ≥ 3 but pays in time.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    run_inference,
    sample_goal_of_size,
    strategy_by_name,
)
from repro.data import PAPER_CONFIGS, generate_synthetic

STRATEGIES = ("BU", "TD", "L2S")
GOAL_SIZES = (0, 2, 4)

CONFIG_BY_LABEL = {config.label: config for config in PAPER_CONFIGS}


def _draw(config, goal_size, seed):
    rng = random.Random(seed)
    for _ in range(60):
        instance = generate_synthetic(config, seed=rng.randrange(2**31))
        index = SignatureIndex(instance)
        goal = sample_goal_of_size(index, goal_size, rng)
        if goal is not None:
            return instance, index, goal
    pytest.skip(
        f"no non-nullable goal of size {goal_size} for {config.label}"
    )


def _run_cell(instance, index, goal, strategy_name):
    strategy = strategy_by_name(strategy_name)
    result = run_inference(
        instance,
        strategy,
        PerfectOracle(instance, goal),
        index=index,
        seed=0,
    )
    assert result.matches_goal(instance, goal)
    return result


@pytest.mark.parametrize("strategy_name", STRATEGIES)
@pytest.mark.parametrize("goal_size", GOAL_SIZES)
@pytest.mark.parametrize("label", sorted(CONFIG_BY_LABEL))
def test_fig7_cell(benchmark, label, goal_size, strategy_name):
    """One (configuration, goal size, strategy) cell of Figure 7."""
    config = CONFIG_BY_LABEL[label]
    instance, index, goal = _draw(config, goal_size, seed=hash(label) & 0xFFFF)
    benchmark.group = f"fig7-{label}-size{goal_size}"
    result = benchmark.pedantic(
        _run_cell,
        args=(instance, index, goal, strategy_name),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["interactions"] = result.interactions
    benchmark.extra_info["classes"] = len(index)


def test_fig7_size0_bottom_up_single_interaction(benchmark):
    """§5.3's crispest claim: BU infers the empty goal in one question."""
    config = CONFIG_BY_LABEL["(3,3,50,100)"]
    instance, index, goal = _draw(config, 0, seed=5)
    benchmark.group = "fig7-claims"
    result = benchmark.pedantic(
        _run_cell,
        args=(instance, index, goal, "BU"),
        rounds=1,
        iterations=1,
    )
    assert result.interactions == 1
