"""Shared helpers for the benchmark harnesses (latency summaries)."""

from __future__ import annotations

import math

__all__ = ["percentile", "latency_summary"]


def percentile(samples: list[float], p: float) -> float:
    """The p-th percentile (nearest-rank) of a non-empty sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def latency_summary(samples: list[float]) -> dict:
    """count / p50 / p95 / max of a latency sample, in milliseconds."""
    return {
        "count": len(samples),
        "p50_ms": round(percentile(samples, 50) * 1e3, 3),
        "p95_ms": round(percentile(samples, 95) * 1e3, 3),
        "max_ms": round(max(samples) * 1e3, 3),
    }
