"""Shared helpers for the benchmark harnesses.

Every harness emits a JSON report with the same ``meta`` header, and the
service-facing harnesses drive remote sessions the same way.  These are
the single implementations — they used to drift as near-identical
copies across ``bench_plan`` / ``bench_service`` / ``bench_store``.
"""

from __future__ import annotations

import math
import platform
import time
from datetime import datetime, timezone

__all__ = [
    "percentile",
    "latency_summary",
    "bench_meta",
    "remote_answerer",
    "drive_session",
    "expected_pairs",
]


def percentile(samples: list[float], p: float) -> float:
    """The p-th percentile (nearest-rank) of a non-empty sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def latency_summary(samples: list[float]) -> dict:
    """count / p50 / p95 / max of a latency sample, in milliseconds."""
    return {
        "count": len(samples),
        "p50_ms": round(percentile(samples, 50) * 1e3, 3),
        "p95_ms": round(percentile(samples, 95) * 1e3, 3),
        "max_ms": round(max(samples) * 1e3, 3),
    }


def bench_meta(**extra) -> dict:
    """The common report header — creation time plus host toolchain —
    with any harness-specific fields appended in keyword order."""
    meta = {
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    meta.update(extra)
    return meta


def remote_answerer(oracle):
    """Adapt an in-process oracle to the HTTP question payload."""

    def answer(question):
        pair = (
            tuple(question["left"]["row"]),
            tuple(question["right"]["row"]),
        )
        return str(oracle.label(pair))

    return answer


def drive_session(
    server,
    workload,
    strategy,
    seed,
    oracle,
    latencies,
    workload_seed=0,
    scale=1.0,
):
    """Create + drive one remote session to Γ; appends each answer-round
    latency to ``latencies`` and returns the final predicate payload."""
    # Imported here so the pure-math helpers above stay usable without
    # src/ on the path (check_trajectory's tests import this module).
    from repro.service import ServiceClient

    answer = remote_answerer(oracle)
    with ServiceClient(server.host, server.port) as client:
        info = client.create_session(
            workload=workload,
            strategy=strategy,
            seed=seed,
            workload_seed=workload_seed,
            scale=scale,
        )
        session_id = info["session_id"]
        while (question := client.next_question(session_id)) is not None:
            started = time.perf_counter()
            client.post_answer(
                session_id, question["question_id"], answer(question)
            )
            latencies.append(time.perf_counter() - started)
        return client.predicate(session_id)


def expected_pairs(instance, strategy, seed, oracle, index):
    """The in-process reference result a served session must match."""
    from repro.core import run_inference, strategy_by_name

    result = run_inference(
        instance, strategy_by_name(strategy), oracle, index=index, seed=seed
    )
    return (
        [[str(a), str(b)] for a, b in result.predicate.sorted_pairs()],
        result.interactions,
    )
