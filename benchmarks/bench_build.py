"""Index-build pipeline benchmark harness — emits ``BENCH_build.json``.

Measures what ``bench_core.py`` cannot: the sharded build pipeline of
``core/index_build.py`` against the monolithic single-shard construction
(the pre-pipeline behaviour, still available as the ``SignatureIndex``
constructor), on the **largest Figure 7 configuration** ``(3,3,l,100)``
scaled up so the product exceeds 10⁶ tuples:

* ``shard_scaling``  — wall-clock of the builder at shard/worker counts
                       {1, 2, 4, 8} vs the monolithic build.  Shards cut
                       the per-unique sort size (wins even on one core)
                       and fan out over GIL-releasing NumPy kernels on
                       multi-core machines;
* ``streaming_csv``  — tracemalloc peak (a portable RSS proxy) of a
                       streaming :class:`CsvSource` build vs reading the
                       CSV into memory and building monolithically —
                       the bounded-memory story for products ≫ 10⁷;
* ``sqlite_pushdown`` — the same product built entirely inside SQLite
                       (informational: how the SQL backend compares).

Every cell asserts bit-for-bit parity (masks, counts, representatives,
maximal set) before timings are trusted.

Usage::

    PYTHONPATH=src python benchmarks/bench_build.py            # full run
    PYTHONPATH=src python benchmarks/bench_build.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_build.py --output my.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import tracemalloc
from math import ceil
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import IndexBuilder, SignatureIndex
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.relational import CsvSource, Instance, SqliteSource, read_csv, write_csv
from repro.relational import sqlite_backend

from bench_util import bench_meta

#: The largest Figure 7 configuration, row-scaled for a ≥10⁶ product.
FULL_ROWS = 1200
SMOKE_ROWS = 250
SHARD_COUNTS = (1, 2, 4, 8)


def _fingerprint(index: SignatureIndex) -> list:
    return [
        (cls.class_id, cls.mask, cls.count, cls.representative)
        for cls in index
    ] + [sorted(index.maximal_class_ids)]


def _assert_parity(built: SignatureIndex, reference: SignatureIndex, what: str):
    assert _fingerprint(built) == _fingerprint(reference), (
        f"build parity failed: {what}"
    )


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _traced_peak(fn):
    tracemalloc.start()
    result = fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, peak


def bench_shard_scaling(instance: Instance, repeats: int) -> list[dict]:
    reference = SignatureIndex(instance, backend="numpy")
    n_rows = len(instance.left)
    cells = [
        {
            "name": "monolithic",
            "shards": 1,
            "workers": 1,
            "seconds": round(
                _best_of(
                    repeats,
                    lambda: SignatureIndex(instance, backend="numpy"),
                ),
                6,
            ),
        }
    ]
    for count in SHARD_COUNTS:
        shard_rows = None if count == 1 else ceil(n_rows / count)
        builder = IndexBuilder(shard_rows=shard_rows, workers=count)
        _assert_parity(
            builder.build(instance), reference, f"shards={count}"
        )
        cells.append(
            {
                "name": f"builder_shards_{count}",
                "shards": count,
                "workers": count,
                "seconds": round(
                    _best_of(repeats, lambda: builder.build(instance)), 6
                ),
            }
        )
    return cells


def bench_streaming_csv(
    instance: Instance, directory: Path, shard_rows: int
) -> dict:
    left_path = directory / "R.csv"
    right_path = directory / "P.csv"
    write_csv(instance.left, left_path)
    write_csv(instance.right, right_path)

    def monolithic():
        left = read_csv(left_path)
        right = read_csv(right_path)
        return SignatureIndex(Instance(left, right), backend="numpy")

    def streaming():
        return IndexBuilder(shard_rows=shard_rows).build(
            CsvSource(left_path, right_path)
        )

    mono_index, mono_peak = _traced_peak(monolithic)
    stream_index, stream_peak = _traced_peak(streaming)
    _assert_parity(stream_index, mono_index, "streaming CSV")
    return {
        "shard_rows": shard_rows,
        "monolithic_peak_bytes": mono_peak,
        "streaming_peak_bytes": stream_peak,
        "peak_ratio": round(stream_peak / max(mono_peak, 1), 4),
    }


def bench_sqlite_pushdown(
    instance: Instance, repeats: int, shard_rows: int
) -> dict:
    conn = sqlite_backend.connect_memory()
    sqlite_backend.store_instance(conn, instance)
    source = SqliteSource(conn, instance.left.name, instance.right.name)
    builder = IndexBuilder(shard_rows=shard_rows)
    _assert_parity(
        builder.build(source),
        SignatureIndex(source.instance(), backend="numpy"),
        "sqlite push-down",
    )
    return {
        "shard_rows": shard_rows,
        "seconds": round(
            _best_of(repeats, lambda: builder.build(source)), 6
        ),
    }


def run_benchmarks(smoke: bool = False) -> dict:
    repeats = 1 if smoke else 3
    rows = SMOKE_ROWS if smoke else FULL_ROWS
    config = SyntheticConfig(3, 3, rows, 100)
    instance = generate_synthetic(config, seed=0)
    print(
        f"[bench] fig7 {config.label}: product {instance.cartesian_size}",
        flush=True,
    )

    scaling = bench_shard_scaling(instance, repeats)
    print("[bench] shard scaling done", flush=True)
    with tempfile.TemporaryDirectory() as tmp:
        streaming = bench_streaming_csv(
            instance, Path(tmp), shard_rows=128
        )
    print("[bench] streaming CSV done", flush=True)
    sqlite_cell = bench_sqlite_pushdown(
        instance, repeats, shard_rows=max(1, rows // 4)
    )
    print("[bench] sqlite push-down done", flush=True)

    single_shard = next(
        cell for cell in scaling if cell["name"] == "monolithic"
    )["seconds"]
    multiworker = [cell for cell in scaling if cell["shards"] > 1]
    best = min(multiworker, key=lambda cell: cell["seconds"])
    return {
        "meta": bench_meta(
            numpy=np.__version__,
            smoke=smoke,
            workload=f"fig7-largest{config.label}",
            product_size=instance.cartesian_size,
            baseline="monolithic single-shard SignatureIndex build",
        ),
        "shard_scaling": scaling,
        "streaming_csv": streaming,
        "sqlite_pushdown": sqlite_cell,
        "acceptance": {
            "single_shard_seconds": single_shard,
            "best_multiworker": best,
            "multiworker_speedup": round(
                single_shard / max(best["seconds"], 1e-12), 3
            ),
            "multiworker_below_single_shard": (
                best["seconds"] < single_shard
            ),
            "streaming_peak_ratio": streaming["peak_ratio"],
            "targets": {
                "multiworker_below_single_shard": True,
                "streaming_peak_ratio_max": 0.75,
            },
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_build.json"
        ),
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instance, single repeat — a CI regression canary",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(smoke=args.smoke)
    output = Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")
    for cell in report["shard_scaling"]:
        print(
            f"  {cell['name']:20s} shards={cell['shards']:<2d} "
            f"workers={cell['workers']:<2d} {cell['seconds']*1e3:9.1f}ms"
        )
    streaming = report["streaming_csv"]
    print(
        f"  streaming CSV peak {streaming['streaming_peak_bytes']/1e6:.1f} MB"
        f" vs monolithic {streaming['monolithic_peak_bytes']/1e6:.1f} MB"
        f" (ratio {streaming['peak_ratio']})"
    )
    print(
        f"  sqlite push-down  {report['sqlite_pushdown']['seconds']*1e3:9.1f}ms"
    )
    acceptance = report["acceptance"]
    print(
        "acceptance: multi-worker "
        f"{acceptance['multiworker_speedup']}x vs single-shard "
        f"(below: {acceptance['multiworker_below_single_shard']}), "
        f"streaming peak ratio {acceptance['streaming_peak_ratio']}"
    )
    # The smoke run is a canary: on tiny instances and noisy shared
    # runners the parallel win can vanish, so only the memory bound and
    # parity gate there; the full run also gates on the speedup.
    if not report["meta"]["smoke"]:
        if not acceptance["multiworker_below_single_shard"]:
            print("FAIL: multi-worker build not below single-shard")
            return 1
    if acceptance["streaming_peak_ratio"] >= acceptance["targets"][
        "streaming_peak_ratio_max"
    ]:
        print("FAIL: streaming CSV build peak not bounded below monolithic")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
