"""A full remote inference over HTTP, driven through ServiceClient.

Starts an in-process server (the same code path as ``repro-join serve``),
opens a session on the builtin TPC-H ``orders × lineitem`` workload with
the two-step lookahead strategy, answers every membership question as a
simulated user who has the key/foreign-key join in mind, snapshots the
session halfway to show restart-survival, and prints the inferred
predicate alongside the in-process reference.

Run with::

    PYTHONPATH=src python examples/service_session.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PerfectOracle, run_inference, strategy_by_name
from repro.data import generate_tpch, tpch_workloads
from repro.service import ServiceClient, ServiceServer


def main() -> int:
    workload = tpch_workloads(generate_tpch(scale=1.0, seed=0))[3]
    oracle = PerfectOracle(workload.instance, workload.goal)

    def answer(question) -> str:
        pair = (
            tuple(question["left"]["row"]),
            tuple(question["right"]["row"]),
        )
        return str(oracle.label(pair))

    with ServiceServer() as server:
        print(f"server on {server.host}:{server.port}")
        client = ServiceClient(server.host, server.port)

        info = client.create_session(
            workload="tpch/join4", strategy="L2S", seed=0
        )
        session_id = info["session_id"]
        print(f"session {session_id} over tpch/join4 with L2S")

        questions_asked = 0
        while (question := client.next_question(session_id)) is not None:
            label = answer(question)
            client.post_answer(
                session_id, question["question_id"], label
            )
            questions_asked += 1
            left, right = question["left"], question["right"]
            print(
                f"  Q{question['question_id']}: "
                f"{left['relation']}{tuple(left['row'])} × "
                f"{right['relation']}{tuple(right['row'])} → {label}"
            )
            if questions_asked == 2:
                # Snapshots survive server restarts: the payload is all a
                # fresh server needs to rebuild and continue the session.
                snapshot = client.snapshot(session_id)
                resumed = client.resume(snapshot)
                print(
                    f"  (snapshotted after {questions_asked} answers → "
                    f"resumable twin {resumed['session_id']}, "
                    f"{len(str(snapshot))} bytes)"
                )

        final = client.predicate(session_id)
        print(f"\ninferred over HTTP : {final['pretty']}")

        reference = run_inference(
            workload.instance,
            strategy_by_name("L2S"),
            oracle,
            seed=0,
        )
        print(f"in-process reference: {reference.predicate}")
        print(f"goal               : {workload.goal}")
        print(f"stats: {client.stats()['index_cache']}")
        client.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
