"""Figure 7 in miniature: how goal size drives the interaction count.

Sweeps one synthetic configuration over goal sizes 0–4 and prints the
mean number of questions per strategy — reproducing §5.3's observations:
size-0 goals are trivial for BU, mid-lattice goals (size 2) are the
hardest, and the lookahead strategies shine on sizes ≥ 3.
"""

import random

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    default_strategies,
    run_inference,
    sample_goal_of_size,
)
from repro.data import SyntheticConfig, generate_synthetic

CONFIG = SyntheticConfig(3, 3, 50, 100)
RUNS_PER_SIZE = 5


def draw_instance_with_goal(goal_size: int, rng: random.Random):
    while True:
        instance = generate_synthetic(CONFIG, seed=rng.randrange(2**31))
        index = SignatureIndex(instance)
        goal = sample_goal_of_size(index, goal_size, rng)
        if goal is not None:
            return instance, index, goal


def main() -> None:
    rng = random.Random(42)
    strategies = default_strategies()
    print(f"Configuration {CONFIG.label}, {RUNS_PER_SIZE} runs per size\n")
    header = "|goal| " + "".join(f"{s.name:>8}" for s in strategies)
    print(header)
    print("-" * len(header))
    for goal_size in range(5):
        trials = [
            draw_instance_with_goal(goal_size, rng)
            for _ in range(RUNS_PER_SIZE)
        ]
        means = []
        for strategy in strategies:
            total = 0
            for instance, index, goal in trials:
                result = run_inference(
                    instance,
                    strategy,
                    PerfectOracle(instance, goal),
                    index=index,
                    seed=0,
                )
                assert result.matches_goal(instance, goal)
                total += result.interactions
            means.append(total / len(trials))
        print(
            f"{goal_size:>6} "
            + "".join(f"{mean:>8.1f}" for mean in means)
        )
    print(
        "\nExpected shape (paper §5.3): BU wins size 0; goals of size 2 "
        "cost the most;\nlookahead wins for sizes ≥ 3."
    )


if __name__ == "__main__":
    main()
