"""Join-path discovery: customer → orders → lineitem, hop by hop.

§7 of the paper names join paths as future work; this example shows the
natural lifting: run the two-relation interactive inference once per hop
of the chain and assemble the path.  The chain query below is the skeleton
of TPC-H's Q3/Q10 family — discovered here without touching the schema's
key/foreign-key metadata.
"""

from repro.data import generate_tpch
from repro.joinpath import evaluate_join_path, infer_join_path
from repro.relational import JoinPredicate
from repro.relational.algebra import project


def main() -> None:
    tables = generate_tpch(scale=0.8, seed=4)
    customer = project(
        tables.customer, ["custkey", "nationkey", "acctbal"]
    )
    orders = project(tables.orders, ["orderkey", "custkey", "totalprice"])
    lineitem = project(
        tables.lineitem, ["orderkey", "partkey", "quantity"]
    )
    relations = [customer, orders, lineitem]

    # The goals play the role of the (hidden) user intent per hop.
    goals = [
        JoinPredicate.parse("customer.custkey = orders.custkey"),
        JoinPredicate.parse("orders.orderkey = lineitem.orderkey"),
    ]
    print("Chain: customer → orders → lineitem")
    result = infer_join_path(relations, goals=goals, seed=0)
    for hop in result.hops:
        print(
            f"  {hop.left_name} ⋈ {hop.right_name}: "
            f"{hop.predicate}   ({hop.interactions} questions)"
        )
    print(f"Total questions: {result.total_interactions}")

    truth = evaluate_join_path(relations, goals)
    inferred = evaluate_join_path(relations, result.predicates)
    print(
        f"Chain result rows: {len(inferred)} "
        f"(matches hidden goal: {set(truth) == set(inferred)})"
    )


if __name__ == "__main__":
    main()
