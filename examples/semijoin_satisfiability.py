"""Theorem 6.1 live: semijoin consistency *is* SAT.

Walks the NP-completeness bridge in both directions:

1. take the appendix's formula φ0, build the reduction instance
   ``(Rφ, Pφ, Sφ)``, decide consistency with the DPLL-backed solver, and
   read a satisfying valuation back off the consistent predicate;
2. take an unsatisfiable formula and watch consistency fail;
3. run the SAT-oracle-backed *interactive* semijoin inference heuristic
   (the paper's §7 future work) on Example 2.1.
"""

from repro.relational import JoinPredicate
from repro.relational.relation import Instance, Relation
from repro.sat import CnfFormula, is_satisfiable
from repro.semijoin import (
    PerfectSemijoinOracle,
    SemijoinInferenceSession,
    consistent_semijoin_sat,
    extract_valuation,
    reduce_3sat,
)


def main() -> None:
    # --- direction 1: satisfiable formula → consistent sample ----------
    phi0 = CnfFormula.of([1, -2, 3], [-1, -3, 4])
    print(f"φ0 = {phi0}")
    reduction = reduce_3sat(phi0)
    print(
        f"Reduction instance: Rφ has {len(reduction.relation_r)} rows, "
        f"Pφ has {len(reduction.relation_p)} rows, "
        f"|Ω| = {len(reduction.instance.omega)}"
    )
    theta = consistent_semijoin_sat(reduction.instance, reduction.sample)
    print(f"Consistent semijoin predicate found:\n  {theta}")
    valuation = extract_valuation(reduction, theta)
    print(f"Extracted valuation: {valuation}")
    print(f"φ0 satisfied by it: {phi0.evaluate(valuation)}")
    assert is_satisfiable(phi0)

    # --- direction 2: unsatisfiable formula → inconsistent sample ------
    contradiction = CnfFormula.of([1], [-1])
    bad = reduce_3sat(contradiction)
    verdict = consistent_semijoin_sat(bad.instance, bad.sample)
    print(f"\n(x1) ∧ (¬x1) reduction consistent: {verdict is not None}")

    # --- §7 extension: interactive semijoin inference ------------------
    r0 = Relation.build(
        "R0", ["A1", "A2"], [(0, 1), (0, 2), (2, 2), (1, 0)]
    )
    p0 = Relation.build(
        "P0", ["B1", "B2", "B3"], [(1, 1, 0), (0, 1, 2), (2, 0, 0)]
    )
    instance = Instance(r0, p0)
    goal = JoinPredicate.parse("R0.A1 = P0.B2")
    session = SemijoinInferenceSession(
        instance, PerfectSemijoinOracle(instance, goal), seed=0
    )
    result = session.run()
    print(
        f"\nInteractive semijoin inference of {goal}: "
        f"{result.interactions} questions → {result.predicate} "
        f"(same kept rows: {result.matches_goal(instance, goal)})"
    )


if __name__ == "__main__":
    main()
