"""The paper's motivating scenario (§1): flight & hotel packages.

A travel-agency employee wants to pair flights with hotels but cannot
write the join.  Two candidate queries exist:

* Q1: ``Flight.To = Hotel.City`` — any flight with a hotel at the
  destination;
* Q2: Q1 plus ``Flight.Airline = Hotel.Discount`` — only packages
  eligible for an airline discount.

The script replays the introduction: labeling tuple (3) keeps both
queries alive, tuple (4) is *uninformative* afterwards, and tuple (8) is
exactly the question that separates Q1 from Q2.
"""

from repro import (
    Instance,
    JoinPredicate,
    PerfectOracle,
    Relation,
    run_inference,
)
from repro.core import (
    Example,
    Label,
    Sample,
    default_strategies,
    is_informative,
    is_predicate_consistent_with,
)


def build_instance() -> Instance:
    flights = Relation.build(
        "Flight",
        ["From_", "To", "Airline"],
        [
            ("Paris", "Lille", "AF"),
            ("Lille", "NYC", "AA"),
            ("NYC", "Paris", "AA"),
            ("Paris", "NYC", "AF"),
        ],
    )
    hotels = Relation.build(
        "Hotel",
        ["City", "Discount"],
        [("NYC", "AA"), ("Paris", "NoDiscount"), ("Lille", "AF")],
    )
    return Instance(flights, hotels)


def main() -> None:
    instance = build_instance()
    q1 = JoinPredicate.parse("Flight.To = Hotel.City")
    q2 = JoinPredicate.parse(
        "Flight.To = Hotel.City AND Flight.Airline = Hotel.Discount"
    )
    print("Flight:")
    print(instance.left.pretty())
    print("\nHotel:")
    print(instance.right.pretty())

    # --- the introduction's labeling narrative -------------------------
    tuple_3 = (("Paris", "Lille", "AF"), ("Lille", "AF"))
    tuple_4 = (("Lille", "NYC", "AA"), ("NYC", "AA"))
    tuple_8 = (("NYC", "Paris", "AA"), ("Paris", "NoDiscount"))

    sample = Sample([Example(tuple_3, Label.POSITIVE)])
    print("\nAfter labeling tuple (3) positive:")
    for name, query in (("Q1", q1), ("Q2", q2)):
        consistent = is_predicate_consistent_with(instance, query, sample)
        print(f"  {name} consistent: {consistent}")

    print(
        "  tuple (4) informative:"
        f" {is_informative(instance, sample, tuple_4)}"
        "   (labeling it adds nothing — both queries select it)"
    )
    print(
        "  tuple (8) informative:"
        f" {is_informative(instance, sample, tuple_8)}"
        "   (Q1 selects it, Q2 does not — this is the question to ask)"
    )

    # --- full inference for both goals ---------------------------------
    for name, goal in (("Q1", q1), ("Q2", q2)):
        print(f"\nInferring {name} = {goal}")
        for strategy in default_strategies():
            result = run_inference(
                instance,
                strategy,
                PerfectOracle(instance, goal),
                seed=0,
            )
            status = "ok" if result.matches_goal(instance, goal) else "FAIL"
            print(
                f"  {strategy.name:>3}: {result.interactions} questions "
                f"[{status}]"
            )


if __name__ == "__main__":
    main()
