"""Reverse-engineering TPC-H's key/foreign-key joins from labels alone.

The §5.1 experiment as a script: generate the mini TPC-H database, store
it in SQLite (the natural home for a downstream user's data), load table
pairs back, and let each strategy rediscover the five key/FK joins with
no knowledge of the constraints — only from simulated user labels.
"""

import time

from repro.core import (
    PerfectOracle,
    SignatureIndex,
    default_strategies,
    run_inference,
)
from repro.data import generate_tpch, tpch_workloads
from repro.experiments import compute_metrics
from repro.relational.sqlite_backend import (
    connect_memory,
    load_relation,
    store_relation,
)


def main() -> None:
    tables = generate_tpch(scale=1.0, seed=0)

    # Store everything in SQLite and read the join inputs back — the
    # inference machinery is storage-agnostic.
    conn = connect_memory()
    for relation in tables.all_tables():
        store_relation(conn, relation)
    print("Stored 8 TPC-H tables in SQLite:")
    for relation in tables.all_tables():
        count = conn.execute(
            f"SELECT COUNT(*) FROM {relation.name}"
        ).fetchone()[0]
        print(f"  {relation.name:<9} {count:>5} rows")
    round_trip = load_relation(conn, "part")
    assert round_trip == tables.part

    print("\nRediscovering the five §5.1 joins from labels alone:\n")
    for workload in tpch_workloads(tables):
        index = SignatureIndex(workload.instance)
        metrics = compute_metrics(workload.instance, index)
        print(
            f"{workload.name}: {workload.description}\n"
            f"  |D| = {metrics.cartesian_size:,}   "
            f"join ratio = {metrics.join_ratio:.3f}   "
            f"signatures = {metrics.distinct_signatures}"
        )
        for strategy in default_strategies():
            started = time.perf_counter()
            result = run_inference(
                workload.instance,
                strategy,
                PerfectOracle(workload.instance, workload.goal),
                index=index,
                seed=0,
            )
            elapsed = time.perf_counter() - started
            status = (
                "ok"
                if result.matches_goal(workload.instance, workload.goal)
                else "FAIL"
            )
            print(
                f"    {strategy.name:>3}: {result.interactions:>3} "
                f"questions, {elapsed:7.3f}s [{status}]"
            )
        print()


if __name__ == "__main__":
    main()
