"""Crowdsourced join inference: cost vs accuracy under noisy workers.

§7 of the paper points at crowdsourcing as the natural deployment of
interactive join inference — every label costs money, and workers err.
This script sweeps worker error rates and majority-panel sizes and
reports the three quantities that matter: questions asked (tuples),
total worker answers (cost), and how often the inferred join is still
instance-equivalent to the goal.
"""

from repro.core import SignatureIndex, TopDownStrategy
from repro.crowd import (
    majority_error_rate,
    panel_size_for_target,
    run_crowd_inference,
)
from repro.data import generate_tpch, tpch_workloads

REPEATS = 20


def main() -> None:
    tables = generate_tpch(scale=1.0, seed=0)
    workload = next(
        w for w in tpch_workloads(tables) if w.name == "join3"
    )
    index = SignatureIndex(workload.instance)
    print(f"Workload: {workload.description}")
    print(f"Goal: {workload.goal}\n")

    print("worker_err  panel  accuracy  questions  worker_answers")
    for worker_error in (0.0, 0.1, 0.2):
        for panel_size in (1, 3, 5):
            correct = 0
            questions = 0
            answers = 0
            for repeat in range(REPEATS):
                report = run_crowd_inference(
                    workload.instance,
                    TopDownStrategy(),
                    workload.goal,
                    worker_error=worker_error,
                    panel_size=panel_size,
                    seed=repeat,
                    index=index,
                )
                correct += report.correct
                questions += report.interactions
                answers += report.worker_answers
            print(
                f"{worker_error:>10.2f}  {panel_size:>5}  "
                f"{correct / REPEATS:>8.0%}  {questions / REPEATS:>9.1f}  "
                f"{answers / REPEATS:>14.1f}"
            )

    print("\nAnalytic panel sizing (majority error per panel):")
    for worker_error in (0.1, 0.2, 0.3):
        sizes = {
            k: majority_error_rate(k, worker_error) for k in (1, 3, 5, 7)
        }
        needed = panel_size_for_target(worker_error, target_error=0.01)
        rendered = "  ".join(
            f"k={k}: {err:.3f}" for k, err in sizes.items()
        )
        print(
            f"  worker error {worker_error:.1f}: {rendered}  "
            f"→ panel for ≤1% error: {needed}"
        )


if __name__ == "__main__":
    main()
