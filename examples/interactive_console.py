"""A real interactive session: YOU are the user.

Run with::

    python examples/interactive_console.py

The script shows two small product tables and asks you yes/no questions
about candidate pairs; answer according to whatever join you have in
mind (e.g. "products and their categories") and it will print the
predicate.  Press Ctrl-C to abort.

Non-interactive environments (CI) can pipe answers::

    printf 'n\\ny\\nn\\n...' | python examples/interactive_console.py
"""

import sys

from repro import Instance, Relation
from repro.core import CallbackOracle, InferenceSession, Label, TopDownStrategy


def build_instance() -> Instance:
    products = Relation.build(
        "Product",
        ["sku", "category_code", "price"],
        [
            (100, 1, 20),
            (101, 1, 35),
            (102, 2, 20),
            (103, 3, 100),
        ],
    )
    categories = Relation.build(
        "Category",
        ["code", "tax_class"],
        [(1, 20), (2, 5), (3, 20)],
    )
    return Instance(products, categories)


def ask_human(instance: Instance):
    def ask(tuple_pair) -> Label:
        r_row, p_row = tuple_pair
        left = ", ".join(
            f"{attr.name}={value}"
            for attr, value in zip(instance.left.schema, r_row)
        )
        right = ", ".join(
            f"{attr.name}={value}"
            for attr, value in zip(instance.right.schema, p_row)
        )
        print("\nShould these be joined?")
        print(f"  Product({left})")
        print(f"  Category({right})")
        while True:
            answer = input("  [y]es / [n]o > ").strip().lower()
            if answer in ("y", "yes", "+"):
                return Label.POSITIVE
            if answer in ("n", "no", "-"):
                return Label.NEGATIVE
            print("  please answer y or n")

    return CallbackOracle(ask)


def main() -> None:
    instance = build_instance()
    print("Product:")
    print(instance.left.pretty())
    print("\nCategory:")
    print(instance.right.pretty())
    print(
        "\nThink of a join between these tables "
        "(for instance: category_code = code), then answer honestly."
    )
    session = InferenceSession(
        instance, TopDownStrategy(), ask_human(instance), seed=0
    )
    try:
        result = session.run()
    except KeyboardInterrupt:
        print("\naborted")
        sys.exit(1)
    print(f"\nYou were thinking of:  {result.predicate}")
    print(f"({result.interactions} questions)")


if __name__ == "__main__":
    main()
