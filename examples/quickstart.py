"""Quickstart: infer a join predicate from yes/no answers.

Run with::

    python examples/quickstart.py

The library's core loop in four steps: build two relations, pick a
strategy, answer membership questions (here: simulated), read off the
inferred join predicate.
"""

from repro import (
    Instance,
    JoinPredicate,
    PerfectOracle,
    Relation,
    TopDownStrategy,
    run_inference,
)


def main() -> None:
    # 1. Two relations with no schema knowledge beyond column names.
    employees = Relation.build(
        "Employee",
        ["emp_id", "dept_id", "city"],
        [
            (1, 10, "Lille"),
            (2, 10, "Paris"),
            (3, 20, "Lille"),
            (4, 30, "NYC"),
        ],
    )
    departments = Relation.build(
        "Department",
        ["id", "location"],
        [(10, "Paris"), (20, "Lille"), (30, "NYC")],
    )
    instance = Instance(employees, departments)

    # 2. The "user" has a join in mind but cannot write it.  Here a
    #    PerfectOracle simulates her answers; in a real application you
    #    would plug in a CallbackOracle asking a human (see
    #    examples/interactive_console.py).
    goal = JoinPredicate.parse("Employee.dept_id = Department.id")
    oracle = PerfectOracle(instance, goal)

    # 3. Run the interactive inference (Algorithm 1 of the paper) with
    #    the top-down strategy.
    result = run_inference(instance, TopDownStrategy(), oracle, seed=0)

    # 4. The inferred predicate is instance-equivalent to the goal.
    print(f"questions asked : {result.interactions}")
    print(f"inferred        : {result.predicate}")
    print(f"matches goal    : {result.matches_goal(instance, goal)}")
    for example in result.history:
        marker = "+" if example.is_positive else "-"
        print(f"  [{marker}] {example.tuple_pair}")


if __name__ == "__main__":
    main()
