"""The multi-process serving fleet: leased-session workers + supervisor.

One interpreter — however well batched — is one GIL.  The fleet
multiplies the per-process wins (shared index cache, batched kernels,
speculation trees) by the core count: a front router (see
:mod:`~repro.service.router`) proxies the public HTTP/JSON protocol,
unchanged, to N **worker subprocesses**, each a full
:class:`~repro.service.manager.SessionManager` +
:class:`~repro.service.app.ServiceApp` stack listening on its own
localhost port.  Sessions are partitioned by session-id hash and pinned
to their owning worker, so a session's state never needs to be shared —
only its *durable* journal is, through one
:class:`~repro.service.store.SqliteSessionStore` file all workers open
(WAL mode, busy-retry).

Ownership is the store's lease protocol (PR 7): each worker claims its
sessions under a unique ``owner_id`` per incarnation, heartbeats the
leases, and stamps every journal flush with its fencing epoch.  Kill a
worker with ``kill -9`` and nothing is lost: its leases stop renewing,
the router fails the affected requests over to a survivor, the survivor
waits out the lease, takes it over (epoch bump — the dead worker's
late flushes, were any still buffered, are fenced out) and rehydrates
the session bit-for-bit from the checkpoint + journal tail.  Meanwhile
the supervisor respawns the dead slot and the router rebalances the
displaced sessions home.

This module is both sides of the process boundary:

* ``python -m repro.service.fleet_worker '<json-config>'`` is the
  **worker** entry point: build the manager over the shared store,
  serve with the
  control routes enabled, announce ``FLEET_WORKER_READY port=N`` on
  stdout, and on SIGTERM drain gracefully (demote every durable
  session, flush, release every lease) before exiting.
* :class:`Fleet` is the **supervisor** the router embeds: spawn the
  worker subprocesses, watch them, respawn dead slots.
* :class:`FleetServer` wraps router + fleet on a background thread for
  tests, benchmarks and embedders — the multi-process twin of
  :class:`~repro.service.app.ServiceServer`.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable

__all__ = [
    "FleetConfig",
    "Fleet",
    "FleetServer",
    "WorkerHandle",
    "manager_from_worker_config",
    "worker_main",
]

_READY_PATTERN = re.compile(rb"FLEET_WORKER_READY port=(\d+)")


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Everything needed to spawn and serve one worker fleet.

    ``store_path`` is the shared SQLite file — the fleet's only shared
    mutable state; every other field is per-worker configuration passed
    down verbatim.  ``lease_ttl_seconds`` bounds takeover latency after
    a worker is SIGKILLed: survivors can claim its sessions one TTL
    after its last heartbeat."""

    store_path: str
    workers: int = 2
    host: str = "127.0.0.1"
    lease_ttl_seconds: float = 10.0
    checkpoint_every: int = 16
    max_sessions: int = 256
    ttl_seconds: float | None = 3600.0
    build_workers: int = 1
    speculate: bool = True
    kernel_batch: bool = True
    #: Share built indexes machine-wide through ``/dev/shm`` segments
    #: (see :mod:`repro.service.shm_registry`).  Workers degrade to
    #: private builds when POSIX shared memory is unavailable.
    shared_index: bool = True
    #: Memoise planner entropy tables per worker and share them
    #: machine-wide through ``/dev/shm`` (see
    #: :mod:`repro.service.plan_registry`): each (index, state, depth)
    #: table is computed by one worker and attached by the rest.
    plan_cache: bool = True
    plan_cache_entries: int = 1024
    spawn_timeout: float = 60.0

    def worker_payload(self, slot: int, owner_id: str) -> dict[str, Any]:
        """The JSON argv one worker subprocess is launched with."""
        return {
            "slot": slot,
            "owner_id": owner_id,
            "host": self.host,
            "store_path": self.store_path,
            "lease_ttl_seconds": self.lease_ttl_seconds,
            "checkpoint_every": self.checkpoint_every,
            "max_sessions": self.max_sessions,
            "ttl_seconds": self.ttl_seconds,
            "build_workers": self.build_workers,
            "speculate": self.speculate,
            "kernel_batch": self.kernel_batch,
            "shared_index": self.shared_index,
            "plan_cache": self.plan_cache,
            "plan_cache_entries": self.plan_cache_entries,
        }


# --- worker side -------------------------------------------------------------


def manager_from_worker_config(config: dict[str, Any]):
    """Build one worker's manager over the shared store.

    Separate from :func:`worker_main` so tests can assemble the exact
    in-worker stack inside one process (same store semantics, no
    subprocess)."""
    from .manager import SessionManager
    from .plan_registry import SharedPlanTier
    from .shm_registry import SharedIndexPlane
    from .store import SqliteSessionStore

    store = SqliteSessionStore(config["store_path"])
    plane = None
    if config.get("shared_index", True):
        # None when POSIX shared memory is unusable: the worker keeps
        # its PR 7 behaviour (private per-process builds).
        plane = SharedIndexPlane.if_available(
            config["store_path"],
            config["owner_id"],
            ttl_seconds=config.get("lease_ttl_seconds", 10.0),
        )
        if plane is not None:
            # Claim anything a crashed predecessor left behind before
            # the first build races it.
            plane.reap()
    plan_cache = config.get("plan_cache", True)
    shared_plan = None
    if plan_cache:
        # Same degradation story as the index plane: no /dev/shm means
        # the plan cache runs per-process (local LRU only).
        shared_plan = SharedPlanTier.if_available(
            config["store_path"],
            config["owner_id"],
            ttl_seconds=config.get("lease_ttl_seconds", 10.0),
        )
        if shared_plan is not None:
            shared_plan.reap()
    return SessionManager(
        max_sessions=config.get("max_sessions", 256),
        ttl_seconds=config.get("ttl_seconds", 3600.0),
        build_workers=config.get("build_workers", 1),
        speculate=config.get("speculate", True),
        kernel_batch=config.get("kernel_batch", True),
        store=store,
        checkpoint_every=config.get("checkpoint_every", 16),
        owner_id=config["owner_id"],
        lease_ttl_seconds=config.get("lease_ttl_seconds", 10.0),
        shared_index=plane,
        plan_cache=plan_cache,
        plan_cache_entries=config.get("plan_cache_entries", 1024),
        shared_plan=shared_plan,
    )


async def _serve_worker(config: dict[str, Any]) -> None:
    from .app import ServiceApp, start_server

    manager = manager_from_worker_config(config)
    app = ServiceApp(manager, control=True)
    server = await start_server(app, config.get("host", "127.0.0.1"), 0)
    port = server.sockets[0].getsockname()[1]
    # The readiness handshake the supervisor blocks on; port 0 above
    # means the OS picked it, so this line is how the router learns it.
    print(f"FLEET_WORKER_READY port={port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()

    # Graceful drain: stop accepting, checkpoint+demote every durable
    # session (each demote queues a trailing lease release), then block
    # until the writer thread has committed it all.  A SIGKILL skips
    # all of this — which is exactly what the lease takeover path is
    # for.
    server.close()
    await server.wait_closed()
    manager.demote_all()
    await loop.run_in_executor(None, manager.flush_store)
    manager.close(wait=True)
    if manager.store is not None:
        manager.store.close()


def worker_main(argv: list[str]) -> int:
    """``python -m repro.service.fleet_worker <json-config>`` body."""
    if len(argv) != 1:
        print(
            "usage: python -m repro.service.fleet_worker '<json-config>'",
            file=sys.stderr,
        )
        return 2
    config = json.loads(argv[0])
    asyncio.run(_serve_worker(config))
    return 0


# --- supervisor side ---------------------------------------------------------


@dataclass(slots=True)
class WorkerHandle:
    """One live worker incarnation, as the supervisor tracks it."""

    slot: int
    generation: int
    owner_id: str
    port: int
    process: asyncio.subprocess.Process

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.returncode is None

    def describe(self) -> dict[str, Any]:
        return {
            "slot": self.slot,
            "generation": self.generation,
            "owner": self.owner_id,
            "pid": self.pid,
            "port": self.port,
            "alive": self.alive,
        }


def _worker_env() -> dict[str, str]:
    """The subprocess environment: inherit everything, make sure the
    package root is importable (the fleet may be driven from a checkout
    that was put on ``sys.path`` rather than installed)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


class Fleet:
    """Spawn, watch and respawn the worker subprocesses.

    Lives on the router's event loop.  ``on_respawn`` (set by the
    router) is awaited after a dead slot comes back, so the router can
    rebalance the sessions that failed over to survivors while the
    slot was down."""

    def __init__(self, config: FleetConfig):
        if config.workers < 1:
            raise ValueError("workers must be positive")
        self.config = config
        self.workers: list[WorkerHandle | None] = [None] * config.workers
        self.on_respawn: (
            Callable[[WorkerHandle], Awaitable[None]] | None
        ) = None
        self.respawns_total = 0
        self._generation = 0
        self._closing = False
        self._monitors: set[asyncio.Task] = set()

    @property
    def size(self) -> int:
        return self.config.workers

    def alive(self, slot: int) -> WorkerHandle | None:
        handle = self.workers[slot]
        return handle if handle is not None and handle.alive else None

    def live_handles(self) -> list[WorkerHandle]:
        return [h for h in self.workers if h is not None and h.alive]

    async def start(self) -> None:
        for slot in range(self.size):
            await self.spawn(slot)

    async def spawn(self, slot: int) -> WorkerHandle:
        """Launch one worker and block until its READY handshake."""
        self._generation += 1
        generation = self._generation
        # Unique per incarnation: a respawned slot must never be able
        # to renew (or be fenced as) its predecessor's leases.
        owner_id = f"w{slot}g{generation}"
        payload = self.config.worker_payload(slot, owner_id)
        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.service.fleet_worker",
            json.dumps(payload),
            stdout=asyncio.subprocess.PIPE,
            env=_worker_env(),
        )
        try:
            port = await asyncio.wait_for(
                self._await_ready(process), self.config.spawn_timeout
            )
        except BaseException:
            if process.returncode is None:
                process.kill()
            raise
        handle = WorkerHandle(
            slot=slot,
            generation=generation,
            owner_id=owner_id,
            port=port,
            process=process,
        )
        self.workers[slot] = handle
        monitor = asyncio.ensure_future(self._watch(handle))
        self._monitors.add(monitor)
        monitor.add_done_callback(self._monitors.discard)
        return handle

    @staticmethod
    async def _await_ready(
        process: asyncio.subprocess.Process,
    ) -> int:
        while True:
            line = await process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"fleet worker (pid {process.pid}) exited before "
                    f"announcing readiness"
                )
            match = _READY_PATTERN.search(line)
            if match:
                return int(match.group(1))

    async def _watch(self, handle: WorkerHandle) -> None:
        """Respawn the slot when this incarnation dies uncommanded."""
        await handle.process.wait()
        if self._closing or self.workers[handle.slot] is not handle:
            return
        self.workers[handle.slot] = None
        self.respawns_total += 1
        replacement = await self.spawn(handle.slot)
        if self.on_respawn is not None:
            await self.on_respawn(replacement)

    def kill(self, slot: int) -> int:
        """SIGKILL one worker (crash-testing hook); returns its pid."""
        handle = self.workers[slot]
        if handle is None or not handle.alive:
            raise RuntimeError(f"no live worker in slot {slot}")
        handle.process.kill()
        return handle.pid

    async def terminate(self, timeout: float = 15.0) -> None:
        """SIGTERM every worker (each drains) and reap them all."""
        self._closing = True
        handles = [h for h in self.workers if h is not None]
        for handle in handles:
            if handle.alive:
                handle.process.terminate()
        for handle in handles:
            try:
                await asyncio.wait_for(handle.process.wait(), timeout)
            except asyncio.TimeoutError:
                handle.process.kill()
                await handle.process.wait()
        for monitor in list(self._monitors):
            monitor.cancel()


# --- in-process harness ------------------------------------------------------


class FleetServer:
    """Router + worker fleet on a background thread.

    The multi-process twin of :class:`~repro.service.app.ServiceServer`;
    tests and benchmarks point an ordinary
    :class:`~repro.service.client.ServiceClient` at ``host:port`` and
    get the whole fleet behind it.

    Usage::

        config = FleetConfig(store_path=..., workers=2)
        with FleetServer(config) as server:
            client = ServiceClient(server.host, server.port)
            ...
            server.kill_worker(0)   # SIGKILL; sessions fail over
    """

    def __init__(self, config: FleetConfig):
        self.config = config
        self.host: str | None = None
        self.port: int | None = None
        self.fleet: Fleet | None = None
        self.router = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._drain_on_close = False
        self._startup_error: BaseException | None = None
        #: slot -> generation we SIGKILLed last; wait_for_slot waits
        #: for a *newer* incarnation (right after the kill the dead
        #: handle still reads alive until the supervisor reaps it).
        self._killed_generation: dict[int, int] = {}

    def start(self) -> "FleetServer":
        if self._thread is not None:
            raise RuntimeError("fleet server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet", daemon=True
        )
        self._thread.start()
        if not self._started.wait(
            timeout=self.config.spawn_timeout * self.config.workers + 30
        ):
            raise RuntimeError("fleet failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"fleet failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        from .router import FleetRouter

        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                self.fleet = Fleet(self.config)
                await self.fleet.start()
                self.router = FleetRouter(self.fleet)
                server = await self.router.start(self.config.host, 0)
                sockname = server.sockets[0].getsockname()
                self.host, self.port = sockname[0], sockname[1]
                self._stop = asyncio.Event()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self._started.set()
            await self._stop.wait()
            await self.router.shutdown(drain=self._drain_on_close)

        try:
            loop.run_until_complete(main())
        except Exception:
            pass
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # -- crash-testing hooks --------------------------------------------------

    def worker_pids(self) -> list[int | None]:
        return [
            handle.pid if handle is not None else None
            for handle in self.fleet.workers
        ]

    def kill_worker(self, slot: int) -> int:
        """SIGKILL one worker from the calling thread."""
        future = asyncio.run_coroutine_threadsafe(
            self._kill(slot), self._loop
        )
        pid, generation = future.result(timeout=30)
        self._killed_generation[slot] = generation
        return pid

    async def _kill(self, slot: int) -> tuple[int, int]:
        handle = self.fleet.workers[slot]
        generation = handle.generation if handle is not None else 0
        return self.fleet.kill(slot), generation

    def wait_for_slot(self, slot: int, timeout: float = 60.0) -> int:
        """Block until ``slot`` has a live worker of a *newer*
        incarnation than the last one killed; returns its pid."""
        threshold = self._killed_generation.get(slot, 0)
        deadline = time.time() + timeout
        while time.time() < deadline:
            handle = self.fleet.workers[slot]
            if (
                handle is not None
                and handle.alive
                and handle.generation > threshold
            ):
                return handle.pid
            time.sleep(0.05)
        raise TimeoutError(f"slot {slot} did not respawn in {timeout}s")

    def close(self, drain: bool = False) -> None:
        """Stop the router (optionally draining every worker first)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        self._drain_on_close = drain
        if self._stop is not None:
            loop.call_soon_threadsafe(self._stop.set)
        thread.join(timeout=60)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
