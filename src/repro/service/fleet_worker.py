"""Worker-subprocess entry point: ``python -m repro.service.fleet_worker``.

A separate module (rather than running :mod:`repro.service.fleet`
directly) because the package ``__init__`` imports ``fleet`` — running
an already-imported module with ``-m`` makes runpy warn about the
duplicate in ``sys.modules``.  Nothing imports this module; it exists
only to be executed.
"""

import sys

from .fleet import worker_main

if __name__ == "__main__":
    sys.exit(worker_main(sys.argv[1:]))
