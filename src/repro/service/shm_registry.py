"""Cross-process registry for shared-memory index segments.

PR 7 gave every fleet worker a private :class:`IndexCache`, so an
N-worker fleet holds N copies of each immutable ``SignatureIndex`` and
pays N cold builds.  This module makes the index a *machine* resource:
the first worker to need a fingerprint builds it, serializes it into one
``/dev/shm`` segment (:mod:`repro.core.index_shm`), and every other
worker attaches read-only views over the same mapping.

Coordination reuses the store's lease/epoch idiom (via
:mod:`.sqlite_util`), in a SQLite table beside the session store:

* **publisher single-flight** — a ``publishing`` row is a lease
  ``(owner, epoch, expires_at)``; concurrent workers see it and wait
  (bounded) for it to flip to ``ready`` instead of building again.
  Taking over an *expired* publish lease bumps both the epoch (fencing)
  and the segment **generation** — the new segment gets a new name, and
  ``finish_publish`` refuses a deposed publisher's stale generation.
* **refcounts** — every attacher (and the publisher itself) holds a row
  in ``shm_refs`` with a heartbeat-renewed expiry.  A ``ready`` segment
  with no live refs is garbage.
* **orphan reaping** — the reaper deletes expired ``publishing`` rows
  (``kill -9`` of a mid-build publisher) and ref-less ``ready`` rows,
  unlinking their segments; a belt-and-braces file scan also unlinks
  aged ``repro_idx_*`` files that have no registry row at all (crashes
  in the narrow window between segment creation and registration).

The registry itself is payload-agnostic: the table names and the
segment-name prefix are constructor parameters, so the PR 9 plan cache
(:mod:`.plan_registry`) runs the same protocol over ``plan_segments`` /
``plan_refs`` and ``repro_plan_*`` segments without duplicating any of
it.

Unlinking a segment that a live process still maps is safe: the mapping
(and every index view over it) survives until that process closes it.
The reaper only reclaims the *name* and the backing pages' future.
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..core import index_shm
from ..core.signatures import SignatureIndex
from ..relational.relation import Instance
from . import sqlite_util

__all__ = [
    "ShmRegistryError",
    "PublishTicket",
    "SegmentInfo",
    "ShmRegistry",
    "SharedIndexPlane",
]


class ShmRegistryError(RuntimeError):
    """The registry database could not be read or written."""


@dataclass(frozen=True, slots=True)
class PublishTicket:
    """Outcome of :meth:`ShmRegistry.begin_publish`.

    ``action`` is ``"publish"`` (caller holds the lease and must build),
    ``"wait"`` (someone else is publishing), or ``"ready"`` (a segment
    is already attachable).  ``stale_name`` is set on an expired-lease
    takeover: the previous generation's segment, to unlink best-effort.
    """

    action: str
    name: str
    generation: int
    epoch: int
    stale_name: str | None = None


@dataclass(frozen=True, slots=True)
class SegmentInfo:
    """A ready segment handed to an attacher (ref already recorded)."""

    name: str
    generation: int
    nbytes: int


def _segment_name(
    fingerprint: str,
    generation: int,
    prefix: str = index_shm.SEGMENT_PREFIX,
) -> str:
    # Fingerprints may be raw cache keys (e.g. ``builtin:{"name": ...}``)
    # whose characters shm_open cannot accept, so the segment name always
    # carries a hex slug of the fingerprint rather than the fingerprint
    # itself.
    slug = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()[:12]
    return f"{prefix}{slug}_g{generation}"


class ShmRegistry:
    """SQLite bookkeeping for shared ``/dev/shm`` segments.

    Lives in the same database file as the session store (its own
    connection, WAL mode) so one ``--store`` path configures the whole
    fleet's shared state.  All methods are thread-safe and every write
    runs inside one BEGIN IMMEDIATE transaction with the same bounded
    busy retry as the session store (:func:`sqlite_util.run_immediate`).

    ``segments_table`` / ``refs_table`` / ``segment_prefix`` select the
    namespace: the default is the shared-index plane; the plan cache
    passes its own so both protocols share one file without colliding.
    """

    BUSY_RETRIES = sqlite_util.BUSY_RETRIES

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        busy_timeout: float = 5.0,
        clock: Callable[[], float] = time.time,
        segments_table: str = "shm_segments",
        refs_table: str = "shm_refs",
        segment_prefix: str = index_shm.SEGMENT_PREFIX,
    ) -> None:
        if not (
            segments_table.isidentifier() and refs_table.isidentifier()
        ):
            raise ValueError(
                "registry table names must be plain identifiers, got "
                f"{segments_table!r} / {refs_table!r}"
            )
        self.path = os.fspath(path)
        self._clock = clock
        self._segments_table = segments_table
        self._refs_table = refs_table
        self._prefix = segment_prefix
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = (
            sqlite_util.connect_wal(self.path, busy_timeout=busy_timeout)
        )
        self._transact(self._create_tables)

    @property
    def segment_prefix(self) -> str:
        return self._prefix

    def segment_name(self, fingerprint: str, generation: int) -> str:
        return _segment_name(fingerprint, generation, self._prefix)

    def _create_tables(self, connection: sqlite3.Connection) -> None:
        connection.execute(
            f"""
            CREATE TABLE IF NOT EXISTS {self._segments_table} (
                fingerprint TEXT PRIMARY KEY,
                name        TEXT NOT NULL,
                generation  INTEGER NOT NULL,
                state       TEXT NOT NULL,
                nbytes      INTEGER NOT NULL DEFAULT 0,
                owner       TEXT NOT NULL,
                epoch       INTEGER NOT NULL,
                expires_at  REAL NOT NULL,
                created_at  REAL NOT NULL
            )
            """
        )
        connection.execute(
            f"""
            CREATE TABLE IF NOT EXISTS {self._refs_table} (
                name       TEXT NOT NULL,
                owner      TEXT NOT NULL,
                expires_at REAL NOT NULL,
                PRIMARY KEY (name, owner)
            )
            """
        )

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise ShmRegistryError(f"registry {self.path!r} is closed")
        return self._connection

    def _transact(self, work: Any) -> Any:
        """One BEGIN IMMEDIATE transaction with bounded busy retry
        (the idiom shared with the session store — see
        :mod:`.sqlite_util`)."""
        with self._lock:
            connection = self._require_connection()
            return sqlite_util.run_immediate(
                connection,
                work,
                error=ShmRegistryError,
                subject=f"registry {self.path!r}",
                retries=self.BUSY_RETRIES,
            )

    # --- publish lifecycle ------------------------------------------------

    def begin_publish(
        self, fingerprint: str, owner: str, ttl_seconds: float
    ) -> PublishTicket:
        """Claim (or observe) the publish lease for ``fingerprint``."""
        now = self._clock()

        def work(connection: sqlite3.Connection) -> PublishTicket:
            row = connection.execute(
                "SELECT name, generation, state, owner, epoch,"
                f" expires_at FROM {self._segments_table}"
                " WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:
                name = self.segment_name(fingerprint, 1)
                connection.execute(
                    f"INSERT INTO {self._segments_table} (fingerprint,"
                    " name, generation, state, nbytes, owner, epoch,"
                    " expires_at, created_at)"
                    " VALUES (?, ?, ?, 'publishing', 0, ?, 1, ?, ?)",
                    (fingerprint, name, 1, owner, now + ttl_seconds, now),
                )
                return PublishTicket("publish", name, 1, 1)
            name, generation, state, holder, epoch, expires_at = row
            if state == "ready":
                return PublishTicket("ready", name, generation, epoch)
            if holder == owner:
                # Re-entry by the current publisher: refresh the lease.
                connection.execute(
                    f"UPDATE {self._segments_table} SET expires_at = ?"
                    " WHERE fingerprint = ?",
                    (now + ttl_seconds, fingerprint),
                )
                return PublishTicket("publish", name, generation, epoch)
            if expires_at <= now:
                # Expired publisher: take over with a fenced epoch bump
                # and a fresh generation (new segment name).
                new_generation = generation + 1
                new_name = self.segment_name(fingerprint, new_generation)
                connection.execute(
                    f"UPDATE {self._segments_table} SET name = ?,"
                    " generation = ?, owner = ?, epoch = epoch + 1,"
                    " expires_at = ?, created_at = ?"
                    " WHERE fingerprint = ?",
                    (
                        new_name,
                        new_generation,
                        owner,
                        now + ttl_seconds,
                        now,
                        fingerprint,
                    ),
                )
                return PublishTicket(
                    "publish",
                    new_name,
                    new_generation,
                    epoch + 1,
                    stale_name=name,
                )
            return PublishTicket("wait", name, generation, epoch)

        return self._transact(work)

    def finish_publish(
        self,
        fingerprint: str,
        owner: str,
        generation: int,
        nbytes: int,
        ref_ttl_seconds: float,
    ) -> bool:
        """Flip a publishing row to ready; False if the lease was lost.

        The publisher's own ref is recorded in the same transaction so a
        freshly ready segment is never momentarily ref-less.
        """
        now = self._clock()

        def work(connection: sqlite3.Connection) -> bool:
            row = connection.execute(
                "SELECT name, generation, state, owner FROM"
                f" {self._segments_table} WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if (
                row is None
                or row[1] != generation
                or row[2] != "publishing"
                or row[3] != owner
            ):
                return False
            connection.execute(
                f"UPDATE {self._segments_table} SET state = 'ready',"
                " nbytes = ?, expires_at = ? WHERE fingerprint = ?",
                (nbytes, now, fingerprint),
            )
            connection.execute(
                f"INSERT OR REPLACE INTO {self._refs_table}"
                " (name, owner, expires_at) VALUES (?, ?, ?)",
                (row[0], owner, now + ref_ttl_seconds),
            )
            return True

        return self._transact(work)

    def abort_publish(
        self, fingerprint: str, owner: str, generation: int
    ) -> bool:
        """Drop a publishing row we own (build failed / segment failed)."""

        def work(connection: sqlite3.Connection) -> bool:
            cursor = connection.execute(
                f"DELETE FROM {self._segments_table} WHERE"
                " fingerprint = ? AND owner = ? AND generation = ?"
                " AND state = 'publishing'",
                (fingerprint, owner, generation),
            )
            return cursor.rowcount > 0

        return self._transact(work)

    # --- attach / release -------------------------------------------------

    def acquire_attach(
        self, fingerprint: str, owner: str, ref_ttl_seconds: float
    ) -> SegmentInfo | None:
        """Record a ref on the ready segment for ``fingerprint``."""
        now = self._clock()

        def work(connection: sqlite3.Connection) -> SegmentInfo | None:
            row = connection.execute(
                "SELECT name, generation, nbytes FROM"
                f" {self._segments_table}"
                " WHERE fingerprint = ? AND state = 'ready'",
                (fingerprint,),
            ).fetchone()
            if row is None:
                return None
            connection.execute(
                f"INSERT OR REPLACE INTO {self._refs_table}"
                " (name, owner, expires_at) VALUES (?, ?, ?)",
                (row[0], owner, now + ref_ttl_seconds),
            )
            return SegmentInfo(row[0], row[1], row[2])

        return self._transact(work)

    def forget_segment(self, fingerprint: str, name: str) -> None:
        """Drop a row whose segment turned out unusable (file gone or
        failed validation) so the next request republishes."""

        def work(connection: sqlite3.Connection) -> None:
            connection.execute(
                f"DELETE FROM {self._segments_table} WHERE"
                " fingerprint = ? AND name = ?",
                (fingerprint, name),
            )
            connection.execute(
                f"DELETE FROM {self._refs_table} WHERE name = ?",
                (name,),
            )

        self._transact(work)

    def heartbeat(self, owner: str, ttl_seconds: float) -> None:
        """Renew all of ``owner``'s refs and publish leases."""
        now = self._clock()

        def work(connection: sqlite3.Connection) -> None:
            connection.execute(
                f"UPDATE {self._refs_table} SET expires_at = ?"
                " WHERE owner = ?",
                (now + ttl_seconds, owner),
            )
            connection.execute(
                f"UPDATE {self._segments_table} SET expires_at = ?"
                " WHERE owner = ? AND state = 'publishing'",
                (now + ttl_seconds, owner),
            )

        self._transact(work)

    def release_ref(self, name: str, owner: str) -> None:
        """Drop one of ``owner``'s refs (e.g. a local cache eviction).

        The segment row stays; a ref-less ready segment is reclaimed by
        the next :meth:`reap`.
        """

        def work(connection: sqlite3.Connection) -> None:
            connection.execute(
                f"DELETE FROM {self._refs_table} WHERE name = ?"
                " AND owner = ?",
                (name, owner),
            )

        self._transact(work)

    def release_owner(self, owner: str) -> list[str]:
        """Drop every ref and publish lease held by ``owner``.

        Returns the names of segments left with no live refs (their rows
        are deleted) — the caller unlinks them.
        """
        now = self._clock()

        def work(connection: sqlite3.Connection) -> list[str]:
            doomed = [
                row[0]
                for row in connection.execute(
                    f"SELECT name FROM {self._segments_table}"
                    " WHERE owner = ? AND state = 'publishing'",
                    (owner,),
                )
            ]
            connection.execute(
                f"DELETE FROM {self._segments_table} WHERE owner = ?"
                " AND state = 'publishing'",
                (owner,),
            )
            connection.execute(
                f"DELETE FROM {self._refs_table} WHERE owner = ?",
                (owner,),
            )
            for name, in connection.execute(
                f"SELECT name FROM {self._segments_table}"
                " WHERE state = 'ready' AND NOT EXISTS"
                f" (SELECT 1 FROM {self._refs_table} WHERE"
                f" {self._refs_table}.name = {self._segments_table}.name"
                " AND expires_at > ?)",
                (now,),
            ).fetchall():
                doomed.append(name)
                connection.execute(
                    f"DELETE FROM {self._segments_table}"
                    " WHERE name = ?",
                    (name,),
                )
                connection.execute(
                    f"DELETE FROM {self._refs_table} WHERE name = ?",
                    (name,),
                )
            return doomed

        return self._transact(work)

    def reap(self) -> list[str]:
        """Collect garbage rows; returns segment names to unlink.

        Reaps expired ``publishing`` leases (crashed publishers), ready
        segments with no live refs, expired refs, and refs whose segment
        row is already gone.
        """
        now = self._clock()

        def work(connection: sqlite3.Connection) -> list[str]:
            connection.execute(
                f"DELETE FROM {self._refs_table} WHERE expires_at <= ?",
                (now,),
            )
            connection.execute(
                f"DELETE FROM {self._refs_table} WHERE name NOT IN"
                f" (SELECT name FROM {self._segments_table})"
            )
            doomed = [
                row[0]
                for row in connection.execute(
                    f"SELECT name FROM {self._segments_table} WHERE"
                    " (state = 'publishing' AND expires_at <= ?)"
                    " OR (state = 'ready' AND NOT EXISTS"
                    f" (SELECT 1 FROM {self._refs_table} WHERE"
                    f" {self._refs_table}.name ="
                    f" {self._segments_table}.name))",
                    (now,),
                ).fetchall()
            ]
            for name in doomed:
                connection.execute(
                    f"DELETE FROM {self._segments_table}"
                    " WHERE name = ?",
                    (name,),
                )
                connection.execute(
                    f"DELETE FROM {self._refs_table} WHERE name = ?",
                    (name,),
                )
            return doomed

        return self._transact(work)

    def known_names(self) -> list[str]:
        """Names of every registered segment (any state)."""

        def work(connection: sqlite3.Connection) -> list[str]:
            return [
                row[0]
                for row in connection.execute(
                    f"SELECT name FROM {self._segments_table}"
                ).fetchall()
            ]

        return self._transact(work)

    def stats(self) -> dict[str, int]:
        """Row counts for observability."""

        def work(connection: sqlite3.Connection) -> dict[str, int]:
            ready = connection.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM"
                f" {self._segments_table} WHERE state = 'ready'"
            ).fetchone()
            publishing = connection.execute(
                f"SELECT COUNT(*) FROM {self._segments_table} WHERE"
                " state = 'publishing'"
            ).fetchone()[0]
            refs = connection.execute(
                f"SELECT COUNT(*) FROM {self._refs_table}"
            ).fetchone()[0]
            return {
                "ready_segments": ready[0],
                "ready_bytes": int(ready[1]),
                "publishing": publishing,
                "refs": refs,
            }

        return self._transact(work)

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None


def reap_orphan_files(registry: ShmRegistry, ttl_seconds: float) -> list[str]:
    """Unlink aged files under the registry's prefix with no row.

    Belt-and-braces against crashes in the narrow window between
    segment creation and registration: a file old enough that any
    legitimate publish would long since have registered it, and unknown
    to the registry, is garbage.  Shared by the index plane and the
    plan tier (each scans its own prefix).
    """
    directory = "/dev/shm"
    if not os.path.isdir(directory):  # pragma: no cover - non-Linux
        return []
    try:
        entries = os.listdir(directory)
    except OSError:  # pragma: no cover - env dependent
        return []
    prefix = registry.segment_prefix
    candidates = [entry for entry in entries if entry.startswith(prefix)]
    if not candidates:
        return []
    known = set(registry.known_names())
    min_age = max(60.0, 4 * ttl_seconds)
    now = time.time()
    removed = []
    for entry in candidates:
        if entry in known:
            continue
        try:
            age = now - os.stat(os.path.join(directory, entry)).st_mtime
        except OSError:  # pragma: no cover - concurrent unlink
            continue
        if age >= min_age and index_shm.unlink_segment(entry):
            removed.append(entry)
    return removed


class SharedIndexPlane:
    """Build-once / attach-many index sharing for one machine.

    Wraps a :class:`ShmRegistry` with the process-local side: mapped
    segment handles (kept open while any attached index may be alive), a
    daemon heartbeat that renews refs/leases and reaps orphans, and the
    attach→wait→build resolution used by :class:`IndexCache`.
    """

    def __init__(
        self,
        registry_path: str | os.PathLike[str],
        owner: str,
        *,
        ttl_seconds: float = 10.0,
        wait_timeout: float = 60.0,
        poll_interval: float = 0.02,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._registry = ShmRegistry(registry_path, clock=clock)
        self._owner = owner
        self._ttl = ttl_seconds
        self._wait_timeout = wait_timeout
        self._poll_interval = poll_interval
        self._lock = threading.Lock()
        self._segments: dict[str, Any] = {}
        self._attaches = 0
        self._publishes = 0
        self._private_fallbacks = 0
        self._waits = 0
        self._reaped = 0
        self._closed = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @classmethod
    def if_available(
        cls, registry_path: str | os.PathLike[str], owner: str, **kwargs
    ) -> "SharedIndexPlane | None":
        """A plane, or ``None`` when POSIX shared memory is unusable
        (graceful degradation to private per-process builds)."""
        if not index_shm.shared_memory_available():
            return None
        return cls(registry_path, owner, **kwargs)

    @property
    def owner(self) -> str:
        return self._owner

    # --- the cache-facing entry point ------------------------------------

    def get_or_build(
        self,
        fingerprint: str,
        instance: Instance,
        build: Callable[[Instance], SignatureIndex],
    ) -> tuple[SignatureIndex, str]:
        """Resolve ``fingerprint`` to an index, sharing when possible.

        Returns ``(index, kind)`` with ``kind`` one of ``"attach"`` (a
        sibling's segment was mapped), ``"publish"`` (this process built
        and published — the returned index is already the shm-backed
        view, so the private build's arrays are immediately dead), or
        ``"build"`` (degraded to a private index: publish wait timed
        out, the segment could not be created, or the lease was lost).
        """
        self._ensure_heartbeat()
        deadline = time.monotonic() + self._wait_timeout
        waited = False
        while True:
            attached = self._try_attach(fingerprint, instance)
            if attached is not None:
                return attached, "attach"
            ticket = self._registry.begin_publish(
                fingerprint, self._owner, self._ttl
            )
            if ticket.action == "ready":
                continue  # loop re-attaches
            if ticket.action == "wait":
                if not waited:
                    waited = True
                    self._waits += 1
                if time.monotonic() >= deadline:
                    self._private_fallbacks += 1
                    return build(instance), "build"
                time.sleep(self._poll_interval)
                continue
            # We hold the publish lease.
            if ticket.stale_name is not None:
                index_shm.unlink_segment(ticket.stale_name)
            try:
                index = build(instance)
            except BaseException:
                self._registry.abort_publish(
                    fingerprint, self._owner, ticket.generation
                )
                raise
            return self._publish(fingerprint, ticket, index)

    def _try_attach(
        self, fingerprint: str, instance: Instance
    ) -> SignatureIndex | None:
        info = self._registry.acquire_attach(
            fingerprint, self._owner, self._ttl
        )
        if info is None:
            return None
        with self._lock:
            shm = self._segments.get(info.name)
        if shm is None:
            try:
                shm, index = index_shm.attach_index(info.name, instance)
            except (FileNotFoundError, index_shm.ShmIndexError):
                # Segment vanished (reaped under us) or failed
                # validation: drop the row so the next caller rebuilds.
                self._registry.forget_segment(fingerprint, info.name)
                return None
            with self._lock:
                self._segments[info.name] = shm
        else:
            # Already mapped (e.g. the cache evicted and re-requested):
            # rebuild the cheap view structures over the same pages.
            index = index_shm.read_index(shm.buf, instance)
        self._attaches += 1
        return index

    def _publish(
        self, fingerprint: str, ticket: PublishTicket, index: SignatureIndex
    ) -> tuple[SignatureIndex, str]:
        name = ticket.name
        try:
            try:
                shm = index_shm.publish_index(index, name)
            except FileExistsError:
                # A row-less file left by a crashed prior incarnation
                # (generations restart when the row is deleted).
                index_shm.unlink_segment(name)
                shm = index_shm.publish_index(index, name)
        except (OSError, ValueError, index_shm.ShmIndexError):
            # /dev/shm full or unusable: keep serving the private build.
            self._registry.abort_publish(
                fingerprint, self._owner, ticket.generation
            )
            self._private_fallbacks += 1
            return index, "build"
        nbytes = index_shm.required_bytes(len(index), index.n_words)
        if not self._registry.finish_publish(
            fingerprint, self._owner, ticket.generation, nbytes, self._ttl
        ):
            # Deposed mid-build (our lease expired and a survivor took
            # over): our segment was never visible, drop it.
            index_shm.close_segment(shm)
            index_shm.unlink_segment(name)
            self._private_fallbacks += 1
            return index, "build"
        # Swap to the shm-backed views: this process's resident copy is
        # now the shared mapping, not a private duplicate.
        attached = index_shm.read_index(shm.buf, index.instance)
        with self._lock:
            self._segments[name] = shm
        self._publishes += 1
        return attached, "publish"

    # --- maintenance ------------------------------------------------------

    def _ensure_heartbeat(self) -> None:
        with self._lock:
            if self._closed or (
                self._thread is not None and self._thread.is_alive()
            ):
                return
            self._thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"shm-plane-{self._owner}",
                daemon=True,
            )
            self._thread.start()

    def _heartbeat_loop(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self._registry.heartbeat(self._owner, self._ttl)
                self.reap()
            except Exception:
                # Registry closing underneath us, transient busy, etc. —
                # the next beat retries.
                if self._closed:
                    return

    def reap(self) -> list[str]:
        """Reclaim orphaned segments; returns the names unlinked."""
        removed = []
        for name in self._registry.reap():
            if index_shm.unlink_segment(name):
                removed.append(name)
        removed.extend(self._reap_orphan_files())
        self._reaped += len(removed)
        return removed

    def _reap_orphan_files(self) -> list[str]:
        """Unlink aged ``repro_idx_*`` files with no registry row."""
        return reap_orphan_files(self._registry, self._ttl)

    def shared_bytes(self) -> int:
        """Bytes of shared segments this process currently maps."""
        with self._lock:
            return sum(shm.size for shm in self._segments.values())

    def stats(self) -> dict[str, Any]:
        with self._lock:
            segments = len(self._segments)
            shared_bytes = sum(shm.size for shm in self._segments.values())
        try:
            registry = self._registry.stats()
        except ShmRegistryError:  # pragma: no cover - closing race
            registry = {}
        return {
            "owner": self._owner,
            "segments": segments,
            "shared_bytes": shared_bytes,
            "attaches": self._attaches,
            "publishes": self._publishes,
            "private_fallbacks": self._private_fallbacks,
            "waits": self._waits,
            "reaped": self._reaped,
            "registry": registry,
        }

    def close(self) -> None:
        """Release refs/leases, unlink ref-less segments, drop mappings.

        Idempotent.  Mapped segments whose views are still referenced by
        a live cache entry cannot be unmapped (``BufferError``); the OS
        reclaims them when the process exits, and the *names* are
        already released through the registry.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        self._stop.set()
        if thread is not None:
            thread.join(timeout=2.0)
        try:
            for name in self._registry.release_owner(self._owner):
                index_shm.unlink_segment(name)
        except ShmRegistryError:  # pragma: no cover - already closed
            pass
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        for shm in segments:
            index_shm.close_segment(shm)
        self._registry.close()
