"""The shared SQLite coordination idiom.

Three services coordinate cross-process state through one SQLite file
beside the ``--store`` path: the session store (:mod:`.store`), the
shared-index registry (:mod:`.shm_registry`), and the plan-cache
registry (:mod:`.plan_registry`).  All three use the same connection
discipline and the same retry/fencing idiom; this module is the single
definition so the three stay byte-for-byte in agreement:

* :func:`connect_wal` — one connection per component, WAL mode so
  readers never block the single writer, ``synchronous=NORMAL`` (the
  documented safe level for WAL), a ``busy_timeout`` so SQLite itself
  absorbs short lock waits, and ``isolation_level=None`` because every
  write runs an explicit ``BEGIN IMMEDIATE``.
* :func:`run_immediate` — one write transaction with a bounded
  whole-transaction retry when another *process* holds the database
  lock past ``busy_timeout``.  Callers serialise in-process writers
  with their own lock (and hold it across the call), so any contention
  seen here is cross-process and sleeping while holding that lock is
  fine.
* :func:`decide_lease_epoch` — the lease/epoch takeover rule shared by
  session leases and publish leases: epochs only ever grow, and every
  takeover bumps the epoch so fenced writes from a deposed owner lose.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Any, Callable

__all__ = [
    "BUSY_RETRIES",
    "connect_wal",
    "decide_lease_epoch",
    "is_busy_error",
    "run_immediate",
]

#: Attempts per transaction when another process holds the write lock
#: longer than ``busy_timeout`` (multi-process sharing must not surface
#: transient SQLITE_BUSY as a hard error).
BUSY_RETRIES = 6


def is_busy_error(exc: sqlite3.OperationalError) -> bool:
    """True for the SQLITE_BUSY / SQLITE_LOCKED family.

    The sqlite3 module predates fine-grained error codes on some
    supported Pythons, so this matches on the message like the rest of
    the ecosystem does.
    """
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def connect_wal(
    path: str,
    *,
    busy_timeout: float = 5.0,
    timeout: float | None = None,
) -> sqlite3.Connection:
    """Open ``path`` with the shared WAL connection discipline."""
    kwargs: dict[str, Any] = {
        "check_same_thread": False,
        "isolation_level": None,  # explicit BEGIN/COMMIT in run_immediate
    }
    if timeout is not None:
        kwargs["timeout"] = timeout
    connection = sqlite3.connect(path, **kwargs)
    connection.execute("PRAGMA journal_mode=WAL")
    connection.execute("PRAGMA synchronous=NORMAL")
    connection.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
    return connection


def run_immediate(
    connection: sqlite3.Connection,
    work: Callable[[sqlite3.Connection], Any],
    *,
    error: type[Exception],
    subject: str,
    retries: int = BUSY_RETRIES,
    on_busy_retry: Callable[[], None] | None = None,
) -> Any:
    """Run ``work(connection)`` inside one BEGIN IMMEDIATE transaction.

    The whole transaction retries with exponential backoff (5 ms
    doubling to a 250 ms cap) when either ``BEGIN`` or ``COMMIT`` hits
    a busy/locked error; after ``retries`` extra attempts it raises
    ``error`` naming ``subject``.  ``on_busy_retry`` fires once per
    retry so callers can keep an observability counter.  Any exception
    from ``work`` rolls back and propagates unchanged.
    """
    delay = 0.005
    last: sqlite3.OperationalError | None = None
    for attempt in range(retries + 1):
        if attempt:
            if on_busy_retry is not None:
                on_busy_retry()
            time.sleep(delay)
            delay = min(delay * 2, 0.25)
        try:
            connection.execute("BEGIN IMMEDIATE")
        except sqlite3.OperationalError as exc:
            if is_busy_error(exc):
                last = exc
                continue
            raise
        try:
            result = work(connection)
        except BaseException:
            connection.execute("ROLLBACK")
            raise
        try:
            connection.execute("COMMIT")
        except sqlite3.OperationalError as exc:
            connection.execute("ROLLBACK")
            if is_busy_error(exc):
                last = exc
                continue
            raise
        return result
    raise error(
        f"{subject}: database busy after {retries + 1} attempts"
    ) from last


def decide_lease_epoch(
    held: tuple[str, int, float] | None,
    owner: str,
    now: float,
) -> tuple[str, int]:
    """Decide an acquire attempt against the currently held lease.

    ``held`` is ``(owner, epoch, expires_at)`` or ``None`` when no row
    exists.  Returns ``(decision, epoch)`` where decision is one of:

    * ``"new"`` — no lease yet; grant at epoch 1.
    * ``"refresh"`` — the caller already holds it (expired or not);
      grant at the *same* epoch, so a brief lapse by the same owner
      does not invalidate its in-flight fenced writes.
    * ``"takeover"`` — held by someone else but expired; grant at
      ``epoch + 1`` so the deposed owner's stamped writes are fenced.
    * ``"deny"`` — held live by someone else (epoch is the holder's).

    Release keeps the row with ``expires_at = 0.0`` rather than
    deleting it, which is why epochs stay monotonic across the whole
    history of a key.
    """
    if held is None:
        return "new", 1
    held_owner, epoch, expires_at = held
    if held_owner == owner:
        return "refresh", epoch
    if expires_at <= now:
        return "takeover", epoch + 1
    return "deny", epoch
