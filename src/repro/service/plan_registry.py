"""The plan cache's machine-wide shared tier.

Runs the PR 8 publish/attach protocol (:class:`.shm_registry.ShmRegistry`
— single-flight publish leases, refcounts, fenced epoch takeover, orphan
reaping) over its own namespace: ``plan_segments`` / ``plan_refs`` tables
in the same SQLite file as the session store, and ``repro_plan_*``
segments in ``/dev/shm``.  Each segment holds one encoded entropy table
(:func:`repro.core.plan_cache.encode_table`), so an N-worker fleet
computes each (index, state, depth) table once and every other worker
copies it out of shared memory instead of running the kernel.

Two deliberate departures from the index plane, because plan tables are
small and latency-critical where indexes are huge and build-bound:

* :meth:`SharedPlanTier.get` is **attach-only and never waits** — if a
  sibling is mid-publish the caller just computes (the table costs
  milliseconds, not the seconds an index build does), and
  :meth:`SharedPlanTier.publish` skips rather than blocks when it loses
  the single-flight race.
* Segments are **copied out, not kept mapped**: the decoded table lives
  in the per-process :class:`~repro.core.plan_cache.PlanCache` LRU, the
  mapping is closed immediately, and the registry ref is held for as
  long as the entry stays in that LRU (released on eviction), which is
  what keeps machine-wide reaping honest about who still uses what.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable

from ..core import index_shm
from . import shm_registry
from .shm_registry import ShmRegistry, ShmRegistryError

__all__ = [
    "PLAN_SEGMENT_PREFIX",
    "SharedPlanTier",
]

#: Plan segments get their own prefix so the leak sweeps (conftest and
#: CI) and the orphan reaper can tell them from index segments.
PLAN_SEGMENT_PREFIX = "repro_plan_"


class SharedPlanTier:
    """Machine-wide publish/attach tier for encoded plan tables.

    Implements the duck-typed ``shared`` interface of
    :class:`repro.core.plan_cache.PlanCache`: ``get``, ``publish``,
    ``release``, ``stats``, ``close``.  All methods are thread-safe and
    never raise on registry trouble — a closing or busy registry makes
    the tier miss, not the request fail.
    """

    def __init__(
        self,
        registry_path: str | os.PathLike[str],
        owner: str,
        *,
        ttl_seconds: float = 10.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._registry = ShmRegistry(
            registry_path,
            clock=clock,
            segments_table="plan_segments",
            refs_table="plan_refs",
            segment_prefix=PLAN_SEGMENT_PREFIX,
        )
        self._owner = owner
        self._ttl = ttl_seconds
        self._lock = threading.Lock()
        #: key -> segment name for every ref this process holds (one per
        #: entry resident in the local PlanCache LRU).
        self._names: dict[str, str] = {}
        self._attaches = 0
        self._publishes = 0
        self._publish_skips = 0
        self._releases = 0
        self._reaped = 0
        self._errors = 0
        self._closed = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @classmethod
    def if_available(
        cls, registry_path: str | os.PathLike[str], owner: str, **kwargs
    ) -> "SharedPlanTier | None":
        """A tier, or ``None`` when POSIX shared memory is unusable
        (the plan cache degrades to its per-process LRU)."""
        if not index_shm.shared_memory_available():
            return None
        return cls(registry_path, owner, **kwargs)

    @property
    def owner(self) -> str:
        return self._owner

    # --- PlanCache-facing interface --------------------------------------

    def get(self, key: str) -> bytes | None:
        """Copy the published payload for ``key``, or None.

        Attach-only: a key mid-publish by a sibling reads as a miss.
        The recorded ref is kept until :meth:`release` (LRU eviction) or
        :meth:`close`.
        """
        self._ensure_heartbeat()
        try:
            info = self._registry.acquire_attach(
                key, self._owner, self._ttl
            )
        except ShmRegistryError:
            self._count_error()
            return None
        if info is None:
            return None
        try:
            shm = index_shm.attach_segment(info.name)
        except (FileNotFoundError, index_shm.ShmIndexError, OSError):
            # Segment vanished (reaped under us): drop the row so the
            # next compute republishes.
            self._forget(key, info.name)
            return None
        try:
            if shm.size < info.nbytes:
                self._forget(key, info.name)
                return None
            payload = bytes(shm.buf[: info.nbytes])
        finally:
            index_shm.close_segment(shm)
        with self._lock:
            self._names[key] = info.name
            self._attaches += 1
        return payload

    def publish(self, key: str, payload: bytes) -> bool:
        """Offer a freshly computed payload to the machine.

        Never blocks on a sibling's publish: losing the single-flight
        race (or finding the key already ready) just returns False.
        """
        self._ensure_heartbeat()
        try:
            ticket = self._registry.begin_publish(
                key, self._owner, self._ttl
            )
        except ShmRegistryError:
            self._count_error()
            return False
        if ticket.action != "publish":
            with self._lock:
                self._publish_skips += 1
            return False
        if ticket.stale_name is not None:
            index_shm.unlink_segment(ticket.stale_name)
        try:
            try:
                shm = index_shm.create_segment(ticket.name, len(payload))
            except FileExistsError:
                # Row-less leftover from a crashed prior incarnation.
                index_shm.unlink_segment(ticket.name)
                shm = index_shm.create_segment(ticket.name, len(payload))
            shm.buf[: len(payload)] = payload
        except (OSError, ValueError, index_shm.ShmIndexError):
            # /dev/shm full or unusable: serve from the local tier only.
            self._abort(key, ticket.generation)
            return False
        index_shm.close_segment(shm)
        try:
            finished = self._registry.finish_publish(
                key, self._owner, ticket.generation, len(payload), self._ttl
            )
        except ShmRegistryError:
            self._count_error()
            index_shm.unlink_segment(ticket.name)
            return False
        if not finished:
            # Deposed mid-publish: our segment was never visible.
            index_shm.unlink_segment(ticket.name)
            return False
        with self._lock:
            self._names[key] = ticket.name
            self._publishes += 1
        return True

    def release(self, key: str) -> None:
        """Drop this process's ref on ``key`` (local LRU eviction)."""
        with self._lock:
            name = self._names.pop(key, None)
            if name is not None:
                self._releases += 1
        if name is None:
            return
        try:
            self._registry.release_ref(name, self._owner)
        except ShmRegistryError:
            self._count_error()

    # --- maintenance ------------------------------------------------------

    def _forget(self, key: str, name: str) -> None:
        try:
            self._registry.forget_segment(key, name)
        except ShmRegistryError:
            self._count_error()

    def _abort(self, key: str, generation: int) -> None:
        try:
            self._registry.abort_publish(key, self._owner, generation)
        except ShmRegistryError:
            self._count_error()

    def _count_error(self) -> None:
        with self._lock:
            self._errors += 1

    def _ensure_heartbeat(self) -> None:
        with self._lock:
            if self._closed or (
                self._thread is not None and self._thread.is_alive()
            ):
                return
            self._thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"plan-tier-{self._owner}",
                daemon=True,
            )
            self._thread.start()

    def _heartbeat_loop(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self._registry.heartbeat(self._owner, self._ttl)
                self.reap()
            except Exception:
                # Registry closing underneath us, transient busy, etc. —
                # the next beat retries.
                if self._closed:
                    return

    def reap(self) -> list[str]:
        """Reclaim orphaned plan segments; returns the names unlinked."""
        removed = []
        for name in self._registry.reap():
            if index_shm.unlink_segment(name):
                removed.append(name)
        removed.extend(
            shm_registry.reap_orphan_files(self._registry, self._ttl)
        )
        with self._lock:
            self._reaped += len(removed)
        return removed

    def stats(self) -> dict[str, Any]:
        with self._lock:
            payload = {
                "owner": self._owner,
                "refs_held": len(self._names),
                "attaches": self._attaches,
                "publishes": self._publishes,
                "publish_skips": self._publish_skips,
                "releases": self._releases,
                "reaped": self._reaped,
                "errors": self._errors,
            }
        try:
            payload["registry"] = self._registry.stats()
        except ShmRegistryError:  # pragma: no cover - closing race
            payload["registry"] = {}
        return payload

    def close(self) -> None:
        """Release every ref/lease, unlink ref-less segments.

        Idempotent; nothing stays mapped, so close is always complete.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._names.clear()
        self._stop.set()
        if thread is not None:
            thread.join(timeout=2.0)
        try:
            for name in self._registry.release_owner(self._owner):
                index_shm.unlink_segment(name)
        except ShmRegistryError:  # pragma: no cover - already closed
            pass
        self._registry.close()
