"""Wire protocol of the inference service — payload shapes and errors.

Everything the HTTP layer exchanges is JSON; this module owns the
validation of incoming payloads (create/answer/resume requests) and the
construction of outgoing ones (questions, progress, predicates).  Both
the server and :class:`~repro.service.client.ServiceClient` speak these
shapes, and the answer endpoint's label validation is the same strict
:meth:`Label.parse <repro.core.sample.Label.parse>` the JSON
deserialisers use — an unknown label string is a 400, never a silent
negative.

Instance specs
--------------

A session is created over either a *builtin* workload (named TPC-H goal
join or Figure 7 synthetic configuration, regenerated deterministically
from ``(seed, scale)``) or *inline* data (uploaded CSV text, parsed once
and carried verbatim in snapshots).  The canonical spec is what session
snapshots embed as their instance reference, so a snapshot of a builtin
session is a few hundred bytes while an uploaded one stays
self-contained::

    {"builtin": {"name": "tpch/join4", "seed": 0, "scale": 1.0}}
    {"inline": {"left": {...}, "right": {...}}}
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any

from ..core.sample import Label
from ..core.serialize import instance_from_dict, instance_to_dict
from ..core.session import InferenceSession, Question
from ..core.strategies import strategy_by_name
from ..data.workloads import BUILTIN_WORKLOAD_NAMES, builtin_instance
from ..relational.csv_io import read_csv_text
from ..relational.relation import Instance
from ..relational.schema import SchemaError

__all__ = [
    "ServiceError",
    "BadRequest",
    "NotFound",
    "Conflict",
    "CapacityExceeded",
    "CreateSpec",
    "parse_create_payload",
    "parse_answer_payload",
    "parse_label",
    "instance_from_spec",
    "question_payload",
    "progress_payload",
    "predicate_payload",
    "builds_payload",
    "sessions_payload",
]


class ServiceError(Exception):
    """Base of all protocol-level failures; carries the HTTP status."""

    status = 500
    code = "internal_error"


class BadRequest(ServiceError):
    """Malformed or invalid request payload."""

    status = 400
    code = "bad_request"


class NotFound(ServiceError):
    """Unknown session id or route."""

    status = 404
    code = "not_found"


class Conflict(ServiceError):
    """A well-formed request the session state rejects — stale question
    id, or an answer that contradicts the sample."""

    status = 409
    code = "conflict"


class CapacityExceeded(ServiceError):
    """The server is at its concurrent-session limit."""

    status = 429
    code = "capacity_exceeded"


@dataclass(frozen=True, slots=True)
class CreateSpec:
    """A validated session-creation request.

    ``instance_spec`` is canonical (builtin ref or inline data);
    ``instance`` is pre-parsed for uploads and ``None`` for builtins,
    whose generation is deferred to :func:`instance_from_spec`.
    """

    instance_spec: dict[str, Any]
    instance: Instance | None
    strategy: str
    seed: int | None
    max_questions: int | None
    #: Caller-assigned id (the fleet router partitions sessions by id
    #: hash, so it must pick the id before choosing the worker); None
    #: lets the manager mint one.
    session_id: str | None = None


def _require_dict(payload: Any, what: str) -> dict[str, Any]:
    if not isinstance(payload, dict):
        raise BadRequest(f"{what} must be a JSON object")
    return payload


def _optional_int(payload: dict[str, Any], key: str, default=None):
    value = payload.get(key, default)
    if value is not None and (
        not isinstance(value, int) or isinstance(value, bool)
    ):
        raise BadRequest(f"{key!r} must be an integer or null")
    return value


def _csv_relation(payload: Any, side: str, infer_types: bool):
    payload = _require_dict(payload, f"csv.{side}")
    name = payload.get("name", side)
    text = payload.get("text")
    if not isinstance(name, str) or not isinstance(text, str):
        raise BadRequest(
            f"csv.{side} needs string fields 'name' and 'text'"
        )
    try:
        return read_csv_text(text, name, infer_types=infer_types)
    except ValueError as exc:
        raise BadRequest(f"csv.{side}: {exc}") from exc


def parse_create_payload(payload: Any) -> CreateSpec:
    """Validate a ``POST /sessions`` body."""
    payload = _require_dict(payload, "request body")
    strategy = payload.get("strategy", "TD")
    if not isinstance(strategy, str):
        raise BadRequest("'strategy' must be a string")
    try:
        strategy = strategy_by_name(strategy).name
    except ValueError as exc:
        raise BadRequest(str(exc)) from exc
    seed = _optional_int(payload, "seed", 0)
    if seed is None:
        # Hosted sessions must stay snapshot-able, which requires a
        # concrete seed; "give me randomness" gets a fresh one drawn here.
        seed = secrets.randbelow(2**31)
    max_questions = _optional_int(payload, "max_questions")
    if max_questions is not None and max_questions < 0:
        raise BadRequest("'max_questions' must be non-negative")

    workload = payload.get("workload")
    csv_payload = payload.get("csv")
    if (workload is None) == (csv_payload is None):
        raise BadRequest(
            "provide exactly one of 'workload' (builtin name) or "
            "'csv' (uploaded relations)"
        )
    if workload is not None:
        if not isinstance(workload, str):
            raise BadRequest("'workload' must be a string")
        workload_seed = _optional_int(payload, "workload_seed", 0)
        scale = payload.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise BadRequest("'scale' must be a number")
        if workload not in BUILTIN_WORKLOAD_NAMES:
            raise BadRequest(
                f"unknown builtin workload {workload!r}; choose one of "
                f"{', '.join(BUILTIN_WORKLOAD_NAMES)}"
            )
        spec = {
            "builtin": {
                "name": workload,
                "seed": workload_seed,
                "scale": float(scale),
            }
        }
        return CreateSpec(spec, None, strategy, seed, max_questions)

    csv_payload = _require_dict(csv_payload, "'csv'")
    infer_types = bool(payload.get("infer_types", False))
    left = _csv_relation(csv_payload.get("left"), "left", infer_types)
    right = _csv_relation(csv_payload.get("right"), "right", infer_types)
    try:
        instance = Instance(left, right)
    except SchemaError as exc:
        raise BadRequest(str(exc)) from exc
    spec = {"inline": instance_to_dict(instance)}
    return CreateSpec(spec, instance, strategy, seed, max_questions)


def instance_from_spec(spec: dict[str, Any]) -> Instance:
    """Materialise the instance a canonical spec describes."""
    if "builtin" in spec:
        ref = spec["builtin"]
        try:
            return builtin_instance(
                ref["name"], seed=ref["seed"], scale=ref["scale"]
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise BadRequest(f"bad builtin workload spec: {exc}") from exc
    if "inline" in spec:
        try:
            return instance_from_dict(spec["inline"])
        except (KeyError, TypeError, SchemaError) as exc:
            raise BadRequest(f"bad inline instance spec: {exc}") from exc
    raise BadRequest(
        f"instance spec must carry 'builtin' or 'inline'; got "
        f"{sorted(spec)}"
    )


def parse_label(text: Any) -> Label:
    """Strict label validation shared with the JSON deserialisers."""
    if not isinstance(text, str):
        raise BadRequest("'label' must be the string '+' or '-'")
    try:
        return Label.parse(text)
    except ValueError as exc:
        raise BadRequest(str(exc)) from exc


def parse_answer_payload(payload: Any) -> tuple[int, Label]:
    """Validate a ``POST .../answer`` body into (question_id, label)."""
    payload = _require_dict(payload, "request body")
    question_id = payload.get("question_id")
    if not isinstance(question_id, int) or isinstance(question_id, bool):
        raise BadRequest("'question_id' must be an integer")
    return question_id, parse_label(payload.get("label"))


# --- response payloads -------------------------------------------------------


def question_payload(
    session: InferenceSession, question: Question
) -> dict[str, Any]:
    """One membership question, with enough context to render it."""
    left_row, right_row = question.tuple_pair
    instance = session.instance
    return {
        "question_id": question.question_id,
        "left": {
            "relation": instance.left.name,
            "attributes": [a.name for a in instance.left.schema],
            "row": list(left_row),
        },
        "right": {
            "relation": instance.right.name,
            "attributes": [a.name for a in instance.right.schema],
            "row": list(right_row),
        },
    }


def progress_payload(session: InferenceSession) -> dict[str, Any]:
    """Where the session stands: labels so far, classes still open."""
    informative = int(session.state.informative_ids_array().size)
    return {
        "interactions": session.state.interaction_count,
        "informative_remaining": informative,
        "total_classes": len(session.index),
        "done": session.is_finished(),
    }


def builds_payload(statuses: list[dict[str, Any]]) -> dict[str, Any]:
    """The ``GET /builds`` response: in-flight index builds, oldest
    first, each with shard progress and waiter count (the shape the
    :class:`~repro.service.index_cache.BuildStatus` payloads already
    carry — wrapped here so the wire shape is owned by the protocol)."""
    return {"builds": statuses, "in_flight": len(statuses)}


def sessions_payload(
    sessions: list[dict[str, Any]], counts: dict[str, int]
) -> dict[str, Any]:
    """The ``GET /sessions`` response: live sessions plus the durable
    store's tallies — ``live`` (in memory), ``demoted`` (evicted to the
    store by this process, rehydrated on touch) and ``recoverable``
    (every stored session not currently live, including those left by
    a previous — possibly crashed — process)."""
    return {"sessions": sessions, **counts}


def predicate_payload(session: InferenceSession) -> dict[str, Any]:
    """The current ``T(S+)`` plus progress."""
    predicate = session.current_predicate()
    return {
        "predicate": {
            "pairs": [
                [str(a), str(b)] for a, b in predicate.sorted_pairs()
            ]
        },
        "pretty": str(predicate),
        "progress": progress_payload(session),
    }
