"""A thin synchronous client for the inference service.

Wraps :mod:`http.client` (stdlib, keep-alive) around the JSON protocol so
driving a remote inference reads like driving a local session::

    client = ServiceClient(host, port)
    info = client.create_session(workload="tpch/join4", strategy="L2S")
    while (q := client.next_question(info["session_id"])) is not None:
        client.post_answer(
            info["session_id"], q["question_id"], my_label_for(q)
        )
    print(client.predicate(info["session_id"])["pretty"])

One client holds one connection — use one client per thread when load
testing (see ``benchmarks/bench_service.py``).

Against a fleet front (``repro-join serve --workers N``) a worker
being respawned shows up as a reset connection; idempotent GETs are
retried (``retries`` attempts, short backoff) so a client riding out a
worker kill sees latency, not an error.  POSTs stay single-shot:
re-sending an answer whose response was lost could replay it.

Streaming (PR 10): :meth:`ServiceClient.stream_session` /
:meth:`ServiceClient.stream_service` subscribe to the SSE feeds on a
*dedicated* connection and yield decoded event dicts.  Stream
subscriptions are deliberately excluded from the JSON GET retry path:
retries apply only until the response head arrives — once any of the
body has been consumed, a broken stream surfaces to the caller (who
resubscribes and reconciles by ``question_id``), because silently
re-issuing the GET would replay the stream from its snapshot and hand
the caller duplicate events.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Iterator

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A non-2xx service response, with the server's error payload."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """Synchronous HTTP client speaking the service's JSON protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        *,
        retries: int = 3,
        retry_backoff: float = 0.05,
    ):
        if retries < 1:
            raise ValueError("retries must be at least 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Attempts for idempotent GETs on a broken socket (a fleet
        #: worker respawning mid-request); non-GETs never retry.
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._connection: http.client.HTTPConnection | None = None

    # --- plumbing ------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> dict[str, Any]:
        if path.endswith("/stream"):
            # A stream subscription is not an idempotent JSON GET: its
            # body never ends, and the retry loop below would replay a
            # partially consumed stream from its snapshot — duplicate
            # events the caller cannot distinguish from real ones.
            raise ValueError(
                "stream subscriptions must use stream_session() / "
                "stream_service(), not JSON requests"
            )
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        # Only idempotent GETs are retried: re-sending a POST whose
        # response was lost could replay an already-recorded answer.
        # GET retries back off briefly between attempts — long enough
        # to ride out a stale keep-alive connection or a fleet worker
        # being respawned, short enough to stay interactive.  (Safe
        # precisely because a JSON body is all-or-nothing: read() either
        # returns it whole or raises, so a retried GET can never hand
        # the caller bytes from two different responses — the property
        # a stream body does *not* have, hence the guard above.)
        attempts = self.retries if method == "GET" else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
                OSError,
                TimeoutError,
            ):
                self.close()
                if attempt + 1 >= attempts:
                    raise
                time.sleep(self.retry_backoff * (attempt + 1))
        decoded = json.loads(data) if data else {}
        if response.status >= 400:
            raise ServiceClientError(
                response.status,
                decoded.get("error", "unknown"),
                decoded.get("message", data.decode("utf-8", "replace")),
            )
        return decoded

    def close(self) -> None:
        """Drop the underlying connection (reopened lazily)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    # --- streaming -----------------------------------------------------------

    def stream_session(
        self, session_id: str
    ) -> Iterator[dict[str, Any]]:
        """Subscribe to one session's SSE feed; yields event dicts.

        The first event is the ``hello`` snapshot; a pending question
        (``"source": "snapshot"``) follows immediately when one exists.
        The stream ends after a terminal event (``done``, deletion,
        demotion) or a router ``reconnect`` event — resubscribe on the
        latter and reconcile by ``question_id``.
        """
        return self._stream(f"/sessions/{session_id}/stream")

    def stream_service(self) -> Iterator[dict[str, Any]]:
        """Subscribe to the service-wide SSE feed (all sessions)."""
        return self._stream("/events/stream")

    def _stream(self, path: str) -> Iterator[dict[str, Any]]:
        """Open ``path`` on a dedicated connection and yield SSE events.

        Retries stop at the response head: once body consumption has
        begun, a broken connection raises to the caller instead of
        silently replaying the subscription (which would duplicate
        every event since the snapshot).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        for attempt in range(self.retries):
            try:
                connection.request("GET", path)
                response = connection.getresponse()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
                OSError,
                TimeoutError,
            ):
                connection.close()
                if attempt + 1 >= self.retries:
                    raise
                time.sleep(self.retry_backoff * (attempt + 1))
        if response.status >= 400:
            data = response.read()
            connection.close()
            decoded = json.loads(data) if data else {}
            raise ServiceClientError(
                response.status,
                decoded.get("error", "unknown"),
                decoded.get("message", data.decode("utf-8", "replace")),
            )
        return self._iter_sse(connection, response)

    @staticmethod
    def _iter_sse(
        connection: http.client.HTTPConnection, response: Any
    ) -> Iterator[dict[str, Any]]:
        """Decode SSE frames (``http.client`` de-chunks transparently);
        closes the connection when the stream ends or the caller stops
        consuming (generator close)."""
        try:
            data_lines: list[str] = []
            while True:
                raw = response.readline()
                if not raw:
                    return  # end of stream
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                        data_lines = []
                    continue
                if line.startswith(":"):
                    continue  # keep-alive comment
                name, _, value = line.partition(":")
                if name == "data":
                    data_lines.append(value.lstrip())
        finally:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- endpoints -----------------------------------------------------------

    def create_session(
        self,
        *,
        workload: str | None = None,
        csv: dict[str, Any] | None = None,
        strategy: str = "TD",
        seed: int | None = 0,
        max_questions: int | None = None,
        workload_seed: int = 0,
        scale: float = 1.0,
        infer_types: bool = False,
    ) -> dict[str, Any]:
        """Open a session over a builtin workload or uploaded CSV text."""
        payload: dict[str, Any] = {
            "strategy": strategy,
            "seed": seed,
            "max_questions": max_questions,
        }
        if workload is not None:
            payload.update(
                workload=workload,
                workload_seed=workload_seed,
                scale=scale,
            )
        if csv is not None:
            payload.update(csv=csv, infer_types=infer_types)
        return self._request("POST", "/sessions", payload)

    def list_sessions(self) -> list[dict[str, Any]]:
        """All live sessions on the server."""
        return self._request("GET", "/sessions")["sessions"]

    def sessions_overview(self) -> dict[str, Any]:
        """The full ``GET /sessions`` payload: the live-session list
        plus the durable store's live/demoted/recoverable counts."""
        return self._request("GET", "/sessions")

    def session_info(self, session_id: str) -> dict[str, Any]:
        """Metadata + progress for one session."""
        return self._request("GET", f"/sessions/{session_id}")

    def next_question(self, session_id: str) -> dict[str, Any] | None:
        """The pending question payload, or ``None`` once Γ holds."""
        response = self._request(
            "GET", f"/sessions/{session_id}/question"
        )
        return None if response["done"] else response

    def post_answer(
        self, session_id: str, question_id: int, label: str
    ) -> dict[str, Any]:
        """Record ``"+"`` / ``"-"`` for a previously fetched question."""
        return self._request(
            "POST",
            f"/sessions/{session_id}/answer",
            {"question_id": question_id, "label": label},
        )

    def predicate(self, session_id: str) -> dict[str, Any]:
        """The current ``T(S+)`` and progress."""
        return self._request(
            "GET", f"/sessions/{session_id}/predicate"
        )

    def snapshot(self, session_id: str) -> dict[str, Any]:
        """The session's resumable state."""
        return self._request(
            "GET", f"/sessions/{session_id}/snapshot"
        )

    def resume(self, snapshot: dict[str, Any]) -> dict[str, Any]:
        """Recreate a session from a snapshot payload."""
        return self._request("POST", "/sessions/resume", snapshot)

    def delete_session(self, session_id: str) -> dict[str, Any]:
        """Drop a session."""
        return self._request("DELETE", f"/sessions/{session_id}")

    def builds(self) -> list[dict[str, Any]]:
        """Progress of in-flight index builds on the server."""
        return self._request("GET", "/builds")["builds"]

    def stats(self) -> dict[str, Any]:
        """Server counters, including the index-cache hit ratio."""
        return self._request("GET", "/stats")

    def dashboard(self) -> dict[str, Any]:
        """Incrementally maintained service-wide aggregates (no
        per-request rescan server-side); against a fleet front, the
        key-wise sum over every live worker."""
        return self._request("GET", "/dashboard")

    def fleet(self) -> dict[str, Any]:
        """Fleet topology plus aggregated per-worker memory,
        shared-index and plan-cache counters (only a fleet front router
        serves this)."""
        return self._request("GET", "/fleet")

    def plan_cache_stats(self) -> dict[str, Any]:
        """The plan-cache block of :meth:`stats` (``{"enabled": False}``
        when the server runs without one)."""
        return self.stats().get("plan_cache", {"enabled": False})

    # --- convenience ---------------------------------------------------------

    def drive(
        self,
        session_id: str,
        answerer: Callable[[dict[str, Any]], str],
    ) -> dict[str, Any]:
        """Answer questions via ``answerer`` until Γ holds; returns the
        final predicate payload.

        ``answerer`` receives each question payload and returns ``"+"``
        or ``"-"`` — the remote twin of a local
        :class:`~repro.core.oracle.CallbackOracle`.
        """
        while (question := self.next_question(session_id)) is not None:
            self.post_answer(
                session_id,
                question["question_id"],
                answerer(question),
            )
        return self.predicate(session_id)
