"""A thin synchronous client for the inference service.

Wraps :mod:`http.client` (stdlib, keep-alive) around the JSON protocol so
driving a remote inference reads like driving a local session::

    client = ServiceClient(host, port)
    info = client.create_session(workload="tpch/join4", strategy="L2S")
    while (q := client.next_question(info["session_id"])) is not None:
        client.post_answer(
            info["session_id"], q["question_id"], my_label_for(q)
        )
    print(client.predicate(info["session_id"])["pretty"])

One client holds one connection — use one client per thread when load
testing (see ``benchmarks/bench_service.py``).

Against a fleet front (``repro-join serve --workers N``) a worker
being respawned shows up as a reset connection; idempotent GETs are
retried (``retries`` attempts, short backoff) so a client riding out a
worker kill sees latency, not an error.  POSTs stay single-shot:
re-sending an answer whose response was lost could replay it.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A non-2xx service response, with the server's error payload."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


class ServiceClient:
    """Synchronous HTTP client speaking the service's JSON protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        *,
        retries: int = 3,
        retry_backoff: float = 0.05,
    ):
        if retries < 1:
            raise ValueError("retries must be at least 1")
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Attempts for idempotent GETs on a broken socket (a fleet
        #: worker respawning mid-request); non-GETs never retry.
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._connection: http.client.HTTPConnection | None = None

    # --- plumbing ------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> dict[str, Any]:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        # Only idempotent GETs are retried: re-sending a POST whose
        # response was lost could replay an already-recorded answer.
        # GET retries back off briefly between attempts — long enough
        # to ride out a stale keep-alive connection or a fleet worker
        # being respawned, short enough to stay interactive.
        attempts = self.retries if method == "GET" else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
                OSError,
                TimeoutError,
            ):
                self.close()
                if attempt + 1 >= attempts:
                    raise
                time.sleep(self.retry_backoff * (attempt + 1))
        decoded = json.loads(data) if data else {}
        if response.status >= 400:
            raise ServiceClientError(
                response.status,
                decoded.get("error", "unknown"),
                decoded.get("message", data.decode("utf-8", "replace")),
            )
        return decoded

    def close(self) -> None:
        """Drop the underlying connection (reopened lazily)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- endpoints -----------------------------------------------------------

    def create_session(
        self,
        *,
        workload: str | None = None,
        csv: dict[str, Any] | None = None,
        strategy: str = "TD",
        seed: int | None = 0,
        max_questions: int | None = None,
        workload_seed: int = 0,
        scale: float = 1.0,
        infer_types: bool = False,
    ) -> dict[str, Any]:
        """Open a session over a builtin workload or uploaded CSV text."""
        payload: dict[str, Any] = {
            "strategy": strategy,
            "seed": seed,
            "max_questions": max_questions,
        }
        if workload is not None:
            payload.update(
                workload=workload,
                workload_seed=workload_seed,
                scale=scale,
            )
        if csv is not None:
            payload.update(csv=csv, infer_types=infer_types)
        return self._request("POST", "/sessions", payload)

    def list_sessions(self) -> list[dict[str, Any]]:
        """All live sessions on the server."""
        return self._request("GET", "/sessions")["sessions"]

    def sessions_overview(self) -> dict[str, Any]:
        """The full ``GET /sessions`` payload: the live-session list
        plus the durable store's live/demoted/recoverable counts."""
        return self._request("GET", "/sessions")

    def session_info(self, session_id: str) -> dict[str, Any]:
        """Metadata + progress for one session."""
        return self._request("GET", f"/sessions/{session_id}")

    def next_question(self, session_id: str) -> dict[str, Any] | None:
        """The pending question payload, or ``None`` once Γ holds."""
        response = self._request(
            "GET", f"/sessions/{session_id}/question"
        )
        return None if response["done"] else response

    def post_answer(
        self, session_id: str, question_id: int, label: str
    ) -> dict[str, Any]:
        """Record ``"+"`` / ``"-"`` for a previously fetched question."""
        return self._request(
            "POST",
            f"/sessions/{session_id}/answer",
            {"question_id": question_id, "label": label},
        )

    def predicate(self, session_id: str) -> dict[str, Any]:
        """The current ``T(S+)`` and progress."""
        return self._request(
            "GET", f"/sessions/{session_id}/predicate"
        )

    def snapshot(self, session_id: str) -> dict[str, Any]:
        """The session's resumable state."""
        return self._request(
            "GET", f"/sessions/{session_id}/snapshot"
        )

    def resume(self, snapshot: dict[str, Any]) -> dict[str, Any]:
        """Recreate a session from a snapshot payload."""
        return self._request("POST", "/sessions/resume", snapshot)

    def delete_session(self, session_id: str) -> dict[str, Any]:
        """Drop a session."""
        return self._request("DELETE", f"/sessions/{session_id}")

    def builds(self) -> list[dict[str, Any]]:
        """Progress of in-flight index builds on the server."""
        return self._request("GET", "/builds")["builds"]

    def stats(self) -> dict[str, Any]:
        """Server counters, including the index-cache hit ratio."""
        return self._request("GET", "/stats")

    def fleet(self) -> dict[str, Any]:
        """Fleet topology plus aggregated per-worker memory,
        shared-index and plan-cache counters (only a fleet front router
        serves this)."""
        return self._request("GET", "/fleet")

    def plan_cache_stats(self) -> dict[str, Any]:
        """The plan-cache block of :meth:`stats` (``{"enabled": False}``
        when the server runs without one)."""
        return self.stats().get("plan_cache", {"enabled": False})

    # --- convenience ---------------------------------------------------------

    def drive(
        self,
        session_id: str,
        answerer: Callable[[dict[str, Any]], str],
    ) -> dict[str, Any]:
        """Answer questions via ``answerer`` until Γ holds; returns the
        final predicate payload.

        ``answerer`` receives each question payload and returns ``"+"``
        or ``"-"`` — the remote twin of a local
        :class:`~repro.core.oracle.CallbackOracle`.
        """
        while (question := self.next_question(session_id)) is not None:
            self.post_answer(
                session_id,
                question["question_id"],
                answerer(question),
            )
        return self.predicate(session_id)
