"""Durable session storage — the write-ahead journal behind the manager.

A hosted session's *mutable* state relative to its shared index is tiny:
the ordered ``(class_id, label)`` pairs the user has answered (see
:meth:`~repro.core.state.InferenceState.labeled_classes`).  That is what
snapshots serialise, and it is all a store has to keep durable — the
expensive :class:`~repro.core.signatures.SignatureIndex` stays a cache
and is rebuilt (or fetched warm) on recovery.

Two tables per backend:

* a **checkpoint** per session: the full ``session_snapshot`` JSON
  payload (PR 2 wire format, unchanged) covering the first
  ``checkpoint_seq`` answers, refreshed every N answers;
* an append-only **journal** of the answers recorded *after* the
  checkpoint, keyed ``(session_id, seq)`` with ``seq`` the 1-based
  answer ordinal.

:meth:`SessionStore.load` merges the two back into one snapshot payload
(checkpoint ``labeled`` + journal tail, in order), which the manager
replays through the ordinary propose/answer resume path — so a recovered
session continues bit-for-bit, strategy and rng included, exactly like a
snapshot resume.

:class:`SqliteSessionStore` is the durable backend (stdlib ``sqlite3``,
WAL journal mode): every append/checkpoint is one committed transaction,
so a process killed mid-flight loses at most the answers whose
transactions had not yet committed — never a prefix, never a corrupt
payload.  :class:`MemorySessionStore` implements the same contract in a
dict for tests and for demote-to-memory setups that only need eviction
to be survivable within one process.

Both backends are thread-safe behind an internal lock: the manager
journals from a dedicated writer thread while reads (recovery, counts)
may come from worker threads or the event loop.

**Leases (the fleet's ownership protocol).**  When several worker
processes share one store, each durable session is owned by at most one
of them at a time.  A lease is ``(owner, epoch, expires_at)``:
:meth:`SessionStore.acquire_lease` grants it when the session is
unleased, the lease has expired (wall clock), or the caller already
holds it; a takeover bumps the **epoch**, which is the fencing token —
journal writes that carry ``fence=(owner, epoch)`` are rejected with
:class:`LeaseFenced` unless they match the current lease, so a deposed
owner's late flush can never corrupt the new owner's journal.  Owners
keep leases alive with :meth:`~SessionStore.renew_lease` (heartbeat)
and hand them back with :meth:`~SessionStore.release_lease` on demote
or graceful drain.  Lease timestamps use the shared wall clock
(``time.time()``), the only clock every process sees.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from . import sqlite_util

__all__ = [
    "JournalEntry",
    "Lease",
    "LeaseFenced",
    "MemorySessionStore",
    "SessionStore",
    "SqliteSessionStore",
    "StoreError",
    "StoredSession",
]


class StoreError(RuntimeError):
    """A store operation failed or found inconsistent on-disk state."""


class LeaseFenced(StoreError):
    """A fenced write (or acquire) lost to another owner's lease."""


@dataclass(frozen=True, slots=True)
class Lease:
    """One session's ownership record.

    ``epoch`` is the fencing token: it increases on every ownership
    change, so a write stamped with a stale epoch identifies a deposed
    owner no matter how the wall clock drifted.
    """

    session_id: str
    owner: str
    epoch: int
    expires_at: float

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) >= self.expires_at


#: One journaled answer: ``(seq, class_id, label)`` with ``seq`` the
#: 1-based position of the answer in the session's history and ``label``
#: the wire string ``"+"`` / ``"-"``.
JournalEntry = tuple[int, int, str]


@dataclass(frozen=True, slots=True)
class StoredSession:
    """One recoverable session as the store hands it back.

    ``payload`` is a complete ``session_snapshot`` JSON payload — the
    latest checkpoint with the journal tail already merged into its
    ``labeled`` list — ready for
    :func:`~repro.core.serialize.resume_session`.
    """

    session_id: str
    payload: dict[str, Any]
    checkpoint_seq: int
    journal_seq: int
    created_at: float
    updated_at: float


def _merge_payload(
    session_id: str,
    checkpoint: dict[str, Any],
    checkpoint_seq: int,
    tail: list[JournalEntry],
) -> dict[str, Any]:
    """The checkpoint payload with the journal tail appended to
    ``labeled``; validates that the tail is the contiguous continuation
    of the checkpoint (a gap means lost-then-resumed writes, which the
    append-only protocol cannot produce — treat it as corruption)."""
    labeled = list(checkpoint.get("labeled", []))
    if len(labeled) != checkpoint_seq:
        raise StoreError(
            f"session {session_id!r}: checkpoint claims "
            f"{checkpoint_seq} answers but carries {len(labeled)}"
        )
    expected = checkpoint_seq + 1
    for seq, class_id, label in tail:
        if seq != expected:
            raise StoreError(
                f"session {session_id!r}: journal gap — expected seq "
                f"{expected}, found {seq}"
            )
        labeled.append([class_id, label])
        expected += 1
    merged = dict(checkpoint)
    merged["labeled"] = labeled
    return merged


class SessionStore(ABC):
    """Contract every session-store backend implements.

    ``seq`` arguments count answers from the start of the session
    (1-based); ``put_checkpoint(payload, seq)`` asserts the payload's
    ``labeled`` list has exactly ``seq`` entries and supersedes all
    journal rows up to ``seq``.
    """

    @abstractmethod
    def put_checkpoint(
        self,
        session_id: str,
        payload: dict[str, Any],
        seq: int,
        *,
        fence: tuple[str, int] | None = None,
    ) -> None:
        """Write (or replace) the session's checkpoint; prunes journal
        rows the checkpoint now covers.  Also the create record: a new
        session checkpoints at its admission state (``seq`` answers,
        usually 0).  With ``fence=(owner, epoch)`` the write commits
        only while that exact lease is current (:class:`LeaseFenced`
        otherwise)."""

    @abstractmethod
    def append_answers(
        self,
        session_id: str,
        entries: list[JournalEntry],
        *,
        fence: tuple[str, int] | None = None,
    ) -> None:
        """Append journal rows (one transaction).  Raises
        :class:`StoreError` for a session without a checkpoint — the
        create record must land first.  ``fence`` as on
        :meth:`put_checkpoint`."""

    @abstractmethod
    def acquire_lease(
        self, session_id: str, owner: str, ttl_seconds: float
    ) -> Lease | None:
        """Claim ownership of a session for ``ttl_seconds``.

        Granted when the session has no lease, its lease has expired,
        or ``owner`` already holds it (a refresh — same epoch).  A
        takeover of an expired foreign lease bumps the epoch.  Returns
        the granted :class:`Lease`, or ``None`` while another owner's
        unexpired lease stands."""

    @abstractmethod
    def renew_lease(
        self, session_id: str, owner: str, epoch: int, ttl_seconds: float
    ) -> bool:
        """Extend a held lease (heartbeat).  ``False`` when the lease
        is no longer ``(owner, epoch)`` — the caller has been deposed
        and must stop treating the session as its own."""

    @abstractmethod
    def release_lease(
        self, session_id: str, owner: str, epoch: int
    ) -> bool:
        """Drop a held lease so any worker may claim the session
        immediately.  ``False`` (and no effect) unless the lease is
        still exactly ``(owner, epoch)``."""

    @abstractmethod
    def lease_of(self, session_id: str) -> Lease | None:
        """The session's current lease record, expired or not."""

    @abstractmethod
    def load(self, session_id: str) -> StoredSession | None:
        """The merged recoverable state, or ``None`` for unknown ids."""

    @abstractmethod
    def delete(self, session_id: str) -> None:
        """Forget a session entirely (idempotent)."""

    @abstractmethod
    def session_ids(self) -> list[str]:
        """All recoverable session ids, oldest creation first."""

    @abstractmethod
    def stats(self) -> dict[str, Any]:
        """Backend counters for ``GET /stats``."""

    def close(self) -> None:  # noqa: B027 - optional hook, default no-op
        """Release any underlying resources (idempotent)."""

    def __contains__(self, session_id: str) -> bool:
        return self.load(session_id) is not None


class MemorySessionStore(SessionStore):
    """Dict-backed store: survives eviction, not the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: session_id -> (checkpoint payload, checkpoint_seq,
        #:                {seq: (class_id, label)}, created, updated)
        self._sessions: dict[str, list[Any]] = {}
        self._leases: dict[str, Lease] = {}
        self._journal_appends = 0
        self._checkpoints = 0
        self._loads = 0
        self._fenced_writes = 0
        self._lease_takeovers = 0
        self._lease_denied = 0

    def _check_fence(
        self, session_id: str, fence: tuple[str, int] | None
    ) -> None:
        # Caller holds self._lock.  A matching (owner, epoch) means no
        # takeover has happened, so the write is safe even if the lease
        # has meanwhile expired on the wall clock.
        if fence is None:
            return
        owner, epoch = fence
        lease = self._leases.get(session_id)
        if lease is None or lease.owner != owner or lease.epoch != epoch:
            self._fenced_writes += 1
            held = (
                None if lease is None else (lease.owner, lease.epoch)
            )
            raise LeaseFenced(
                f"session {session_id!r}: write stamped "
                f"({owner!r}, {epoch}) but lease is {held!r}"
            )

    def put_checkpoint(
        self,
        session_id: str,
        payload: dict[str, Any],
        seq: int,
        *,
        fence: tuple[str, int] | None = None,
    ) -> None:
        with self._lock:
            self._check_fence(session_id, fence)
            now = time.time()
            entry = self._sessions.get(session_id)
            if entry is None:
                self._sessions[session_id] = [
                    payload, seq, {}, now, now
                ]
            else:
                entry[0], entry[1] = payload, seq
                entry[2] = {
                    s: v for s, v in entry[2].items() if s > seq
                }
                entry[4] = now
            self._checkpoints += 1

    def append_answers(
        self,
        session_id: str,
        entries: list[JournalEntry],
        *,
        fence: tuple[str, int] | None = None,
    ) -> None:
        with self._lock:
            self._check_fence(session_id, fence)
            entry = self._sessions.get(session_id)
            if entry is None:
                raise StoreError(
                    f"no checkpoint for session {session_id!r}; "
                    f"cannot journal answers"
                )
            for seq, class_id, label in entries:
                entry[2][seq] = (class_id, label)
            entry[4] = time.time()
            self._journal_appends += len(entries)

    def acquire_lease(
        self, session_id: str, owner: str, ttl_seconds: float
    ) -> Lease | None:
        now = time.time()
        with self._lock:
            current = self._leases.get(session_id)
            held = (
                None
                if current is None
                else (current.owner, current.epoch, current.expires_at)
            )
            decision, epoch = sqlite_util.decide_lease_epoch(
                held, owner, now
            )
            if decision == "deny":
                self._lease_denied += 1
                return None
            if decision == "takeover":
                self._lease_takeovers += 1
            lease = Lease(session_id, owner, epoch, now + ttl_seconds)
            self._leases[session_id] = lease
            return lease

    def renew_lease(
        self, session_id: str, owner: str, epoch: int, ttl_seconds: float
    ) -> bool:
        now = time.time()
        with self._lock:
            current = self._leases.get(session_id)
            if (
                current is None
                or current.owner != owner
                or current.epoch != epoch
            ):
                return False
            self._leases[session_id] = Lease(
                session_id, owner, epoch, now + ttl_seconds
            )
            return True

    def release_lease(
        self, session_id: str, owner: str, epoch: int
    ) -> bool:
        with self._lock:
            current = self._leases.get(session_id)
            if (
                current is None
                or current.owner != owner
                or current.epoch != epoch
            ):
                return False
            # Keep the row (expired) so the epoch stays monotonic: the
            # next acquire is a takeover and bumps it past any write a
            # deposed owner might still be carrying.
            self._leases[session_id] = Lease(
                session_id, owner, epoch, 0.0
            )
            return True

    def lease_of(self, session_id: str) -> Lease | None:
        with self._lock:
            return self._leases.get(session_id)

    def load(self, session_id: str) -> StoredSession | None:
        with self._lock:
            entry = self._sessions.get(session_id)
            if entry is None:
                return None
            checkpoint, seq, journal, created, updated = entry
            tail = [
                (s, class_id, label)
                for s, (class_id, label) in sorted(journal.items())
                if s > seq
            ]
            self._loads += 1
        payload = _merge_payload(
            session_id, checkpoint, seq, tail
        )
        return StoredSession(
            session_id=session_id,
            payload=payload,
            checkpoint_seq=seq,
            journal_seq=seq + len(tail),
            created_at=created,
            updated_at=updated,
        )

    def delete(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)
            self._leases.pop(session_id, None)

    def session_ids(self) -> list[str]:
        with self._lock:
            return [
                sid
                for sid, _ in sorted(
                    self._sessions.items(), key=lambda kv: kv[1][3]
                )
            ]

    def stats(self) -> dict[str, Any]:
        now = time.time()
        with self._lock:
            return {
                "backend": "memory",
                "sessions": len(self._sessions),
                "journal_appends": self._journal_appends,
                "checkpoints": self._checkpoints,
                "loads": self._loads,
                "leases": sum(
                    1
                    for lease in self._leases.values()
                    if not lease.expired(now)
                ),
                "fenced_writes": self._fenced_writes,
                "lease_takeovers": self._lease_takeovers,
                "lease_denied": self._lease_denied,
            }


class SqliteSessionStore(SessionStore):
    """The durable backend: one SQLite file in WAL mode.

    WAL keeps readers and the single writer from blocking each other
    and — the property recovery leans on — makes every committed
    transaction survive ``kill -9``: on the next open, SQLite replays
    the write-ahead log up to the last commit.  ``synchronous=NORMAL``
    is the documented safe level for WAL (a crash may lose the tail of
    *uncommitted* work only).
    """

    #: Attempts per transaction when another process holds the write
    #: lock longer than ``busy_timeout`` (satellite: multi-process
    #: sharing must not surface transient SQLITE_BUSY as StoreError).
    BUSY_RETRIES = sqlite_util.BUSY_RETRIES

    def __init__(
        self,
        path: str,
        *,
        timeout: float = 30.0,
        busy_timeout: float = 5.0,
    ):
        self.path = str(path)
        self._lock = threading.RLock()
        self._connection: sqlite3.Connection | None = (
            sqlite_util.connect_wal(
                self.path, busy_timeout=busy_timeout, timeout=timeout
            )
        )
        self._journal_appends = 0
        self._checkpoints = 0
        self._loads = 0
        self._fenced_writes = 0
        self._lease_takeovers = 0
        self._lease_denied = 0
        self._busy_retries = 0
        with self._lock:
            connection = self._connection
            connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS sessions (
                    session_id     TEXT PRIMARY KEY,
                    created_at     REAL NOT NULL,
                    updated_at     REAL NOT NULL,
                    checkpoint_seq INTEGER NOT NULL,
                    checkpoint     TEXT NOT NULL
                );
                CREATE TABLE IF NOT EXISTS journal (
                    session_id TEXT NOT NULL,
                    seq        INTEGER NOT NULL,
                    class_id   INTEGER NOT NULL,
                    label      TEXT NOT NULL,
                    PRIMARY KEY (session_id, seq)
                ) WITHOUT ROWID;
                CREATE TABLE IF NOT EXISTS leases (
                    session_id TEXT PRIMARY KEY,
                    owner      TEXT NOT NULL,
                    epoch      INTEGER NOT NULL,
                    expires_at REAL NOT NULL
                ) WITHOUT ROWID;
                """
            )

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise StoreError(f"store {self.path!r} is closed")
        return self._connection

    def _count_busy_retry(self) -> None:
        # Called with self._lock held (run_immediate runs under it).
        self._busy_retries += 1

    def _transact(self, work: Any) -> Any:
        """Run ``work(connection)`` inside one BEGIN IMMEDIATE
        transaction via :func:`sqlite_util.run_immediate`.  Sleeping
        between retries while holding ``self._lock`` is fine —
        in-process writers are serialised by that lock already, so
        contention here is always cross-process."""
        with self._lock:
            connection = self._require_connection()
            return sqlite_util.run_immediate(
                connection,
                work,
                error=StoreError,
                subject=f"store {self.path!r}",
                retries=self.BUSY_RETRIES,
                on_busy_retry=self._count_busy_retry,
            )

    def _check_fence(
        self,
        connection: sqlite3.Connection,
        session_id: str,
        fence: tuple[str, int] | None,
    ) -> None:
        # Runs inside the write transaction, so the check and the write
        # it guards are atomic against a concurrent takeover.
        if fence is None:
            return
        owner, epoch = fence
        row = connection.execute(
            "SELECT owner, epoch FROM leases WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        if row is None or row[0] != owner or row[1] != epoch:
            self._fenced_writes += 1
            held = None if row is None else (row[0], row[1])
            raise LeaseFenced(
                f"session {session_id!r}: write stamped "
                f"({owner!r}, {epoch}) but lease is {held!r}"
            )

    def put_checkpoint(
        self,
        session_id: str,
        payload: dict[str, Any],
        seq: int,
        *,
        fence: tuple[str, int] | None = None,
    ) -> None:
        text = json.dumps(payload, separators=(",", ":"))
        now = time.time()

        def work(connection: sqlite3.Connection) -> None:
            self._check_fence(connection, session_id, fence)
            connection.execute(
                """
                INSERT INTO sessions (
                    session_id, created_at, updated_at,
                    checkpoint_seq, checkpoint
                ) VALUES (?, ?, ?, ?, ?)
                ON CONFLICT (session_id) DO UPDATE SET
                    updated_at = excluded.updated_at,
                    checkpoint_seq = excluded.checkpoint_seq,
                    checkpoint = excluded.checkpoint
                """,
                (session_id, now, now, seq, text),
            )
            connection.execute(
                "DELETE FROM journal "
                "WHERE session_id = ? AND seq <= ?",
                (session_id, seq),
            )

        self._transact(work)
        with self._lock:
            self._checkpoints += 1

    def append_answers(
        self,
        session_id: str,
        entries: list[JournalEntry],
        *,
        fence: tuple[str, int] | None = None,
    ) -> None:
        if not entries:
            return
        now = time.time()

        def work(connection: sqlite3.Connection) -> None:
            self._check_fence(connection, session_id, fence)
            row = connection.execute(
                "SELECT 1 FROM sessions WHERE session_id = ?",
                (session_id,),
            ).fetchone()
            if row is None:
                raise StoreError(
                    f"no checkpoint for session {session_id!r}; "
                    f"cannot journal answers"
                )
            connection.executemany(
                "INSERT OR REPLACE INTO journal "
                "(session_id, seq, class_id, label) "
                "VALUES (?, ?, ?, ?)",
                [
                    (session_id, seq, class_id, label)
                    for seq, class_id, label in entries
                ],
            )
            connection.execute(
                "UPDATE sessions SET updated_at = ? "
                "WHERE session_id = ?",
                (now, session_id),
            )

        self._transact(work)
        with self._lock:
            self._journal_appends += len(entries)

    def acquire_lease(
        self, session_id: str, owner: str, ttl_seconds: float
    ) -> Lease | None:
        now = time.time()

        def work(connection: sqlite3.Connection) -> Lease | None:
            row = connection.execute(
                "SELECT owner, epoch, expires_at FROM leases "
                "WHERE session_id = ?",
                (session_id,),
            ).fetchone()
            decision, epoch = sqlite_util.decide_lease_epoch(
                None if row is None else (row[0], row[1], row[2]),
                owner,
                now,
            )
            if decision == "deny":
                self._lease_denied += 1
                return None
            if decision == "takeover":
                self._lease_takeovers += 1
            connection.execute(
                """
                INSERT INTO leases (session_id, owner, epoch, expires_at)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (session_id) DO UPDATE SET
                    owner = excluded.owner,
                    epoch = excluded.epoch,
                    expires_at = excluded.expires_at
                """,
                (session_id, owner, epoch, now + ttl_seconds),
            )
            return Lease(session_id, owner, epoch, now + ttl_seconds)

        return self._transact(work)

    def renew_lease(
        self, session_id: str, owner: str, epoch: int, ttl_seconds: float
    ) -> bool:
        now = time.time()

        def work(connection: sqlite3.Connection) -> bool:
            cursor = connection.execute(
                "UPDATE leases SET expires_at = ? "
                "WHERE session_id = ? AND owner = ? AND epoch = ?",
                (now + ttl_seconds, session_id, owner, epoch),
            )
            return cursor.rowcount == 1

        return bool(self._transact(work))

    def release_lease(
        self, session_id: str, owner: str, epoch: int
    ) -> bool:
        def work(connection: sqlite3.Connection) -> bool:
            # Expire in place rather than deleting the row: the epoch
            # stays monotonic, so the next acquire is a takeover and
            # outruns any write a deposed owner might still carry.
            cursor = connection.execute(
                "UPDATE leases SET expires_at = 0.0 "
                "WHERE session_id = ? AND owner = ? AND epoch = ?",
                (session_id, owner, epoch),
            )
            return cursor.rowcount == 1

        return bool(self._transact(work))

    def lease_of(self, session_id: str) -> Lease | None:
        with self._lock:
            connection = self._require_connection()
            row = connection.execute(
                "SELECT owner, epoch, expires_at FROM leases "
                "WHERE session_id = ?",
                (session_id,),
            ).fetchone()
        if row is None:
            return None
        return Lease(session_id, row[0], row[1], row[2])

    def load(self, session_id: str) -> StoredSession | None:
        with self._lock:
            connection = self._require_connection()
            row = connection.execute(
                "SELECT checkpoint, checkpoint_seq, created_at, "
                "updated_at FROM sessions WHERE session_id = ?",
                (session_id,),
            ).fetchone()
            if row is None:
                return None
            text, checkpoint_seq, created, updated = row
            tail = [
                (seq, class_id, label)
                for seq, class_id, label in connection.execute(
                    "SELECT seq, class_id, label FROM journal "
                    "WHERE session_id = ? AND seq > ? ORDER BY seq",
                    (session_id, checkpoint_seq),
                )
            ]
            self._loads += 1
        try:
            checkpoint = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"session {session_id!r}: corrupt checkpoint payload: "
                f"{exc}"
            ) from exc
        payload = _merge_payload(
            session_id, checkpoint, checkpoint_seq, tail
        )
        return StoredSession(
            session_id=session_id,
            payload=payload,
            checkpoint_seq=checkpoint_seq,
            journal_seq=checkpoint_seq + len(tail),
            created_at=created,
            updated_at=updated,
        )

    def delete(self, session_id: str) -> None:
        def work(connection: sqlite3.Connection) -> None:
            connection.execute(
                "DELETE FROM journal WHERE session_id = ?",
                (session_id,),
            )
            connection.execute(
                "DELETE FROM sessions WHERE session_id = ?",
                (session_id,),
            )
            connection.execute(
                "DELETE FROM leases WHERE session_id = ?",
                (session_id,),
            )

        self._transact(work)

    def session_ids(self) -> list[str]:
        with self._lock:
            connection = self._require_connection()
            return [
                sid
                for (sid,) in connection.execute(
                    "SELECT session_id FROM sessions "
                    "ORDER BY created_at, session_id"
                )
            ]

    def __contains__(self, session_id: str) -> bool:
        # Cheaper than the default load()-based probe: no payload parse.
        with self._lock:
            connection = self._require_connection()
            return (
                connection.execute(
                    "SELECT 1 FROM sessions WHERE session_id = ?",
                    (session_id,),
                ).fetchone()
                is not None
            )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            connection = self._require_connection()
            (sessions,) = connection.execute(
                "SELECT COUNT(*) FROM sessions"
            ).fetchone()
            (journal_rows,) = connection.execute(
                "SELECT COUNT(*) FROM journal"
            ).fetchone()
            (leases,) = connection.execute(
                "SELECT COUNT(*) FROM leases WHERE expires_at > ?",
                (time.time(),),
            ).fetchone()
            return {
                "backend": "sqlite",
                "path": self.path,
                "sessions": sessions,
                "journal_rows": journal_rows,
                "journal_appends": self._journal_appends,
                "checkpoints": self._checkpoints,
                "loads": self._loads,
                "leases": leases,
                "fenced_writes": self._fenced_writes,
                "lease_takeovers": self._lease_takeovers,
                "lease_denied": self._lease_denied,
                "busy_retries": self._busy_retries,
            }

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
