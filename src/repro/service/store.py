"""Durable session storage — the write-ahead journal behind the manager.

A hosted session's *mutable* state relative to its shared index is tiny:
the ordered ``(class_id, label)`` pairs the user has answered (see
:meth:`~repro.core.state.InferenceState.labeled_classes`).  That is what
snapshots serialise, and it is all a store has to keep durable — the
expensive :class:`~repro.core.signatures.SignatureIndex` stays a cache
and is rebuilt (or fetched warm) on recovery.

Two tables per backend:

* a **checkpoint** per session: the full ``session_snapshot`` JSON
  payload (PR 2 wire format, unchanged) covering the first
  ``checkpoint_seq`` answers, refreshed every N answers;
* an append-only **journal** of the answers recorded *after* the
  checkpoint, keyed ``(session_id, seq)`` with ``seq`` the 1-based
  answer ordinal.

:meth:`SessionStore.load` merges the two back into one snapshot payload
(checkpoint ``labeled`` + journal tail, in order), which the manager
replays through the ordinary propose/answer resume path — so a recovered
session continues bit-for-bit, strategy and rng included, exactly like a
snapshot resume.

:class:`SqliteSessionStore` is the durable backend (stdlib ``sqlite3``,
WAL journal mode): every append/checkpoint is one committed transaction,
so a process killed mid-flight loses at most the answers whose
transactions had not yet committed — never a prefix, never a corrupt
payload.  :class:`MemorySessionStore` implements the same contract in a
dict for tests and for demote-to-memory setups that only need eviction
to be survivable within one process.

Both backends are thread-safe behind an internal lock: the manager
journals from a dedicated writer thread while reads (recovery, counts)
may come from worker threads or the event loop.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

__all__ = [
    "JournalEntry",
    "MemorySessionStore",
    "SessionStore",
    "SqliteSessionStore",
    "StoreError",
    "StoredSession",
]


class StoreError(RuntimeError):
    """A store operation failed or found inconsistent on-disk state."""


#: One journaled answer: ``(seq, class_id, label)`` with ``seq`` the
#: 1-based position of the answer in the session's history and ``label``
#: the wire string ``"+"`` / ``"-"``.
JournalEntry = tuple[int, int, str]


@dataclass(frozen=True, slots=True)
class StoredSession:
    """One recoverable session as the store hands it back.

    ``payload`` is a complete ``session_snapshot`` JSON payload — the
    latest checkpoint with the journal tail already merged into its
    ``labeled`` list — ready for
    :func:`~repro.core.serialize.resume_session`.
    """

    session_id: str
    payload: dict[str, Any]
    checkpoint_seq: int
    journal_seq: int
    created_at: float
    updated_at: float


def _merge_payload(
    session_id: str,
    checkpoint: dict[str, Any],
    checkpoint_seq: int,
    tail: list[JournalEntry],
) -> dict[str, Any]:
    """The checkpoint payload with the journal tail appended to
    ``labeled``; validates that the tail is the contiguous continuation
    of the checkpoint (a gap means lost-then-resumed writes, which the
    append-only protocol cannot produce — treat it as corruption)."""
    labeled = list(checkpoint.get("labeled", []))
    if len(labeled) != checkpoint_seq:
        raise StoreError(
            f"session {session_id!r}: checkpoint claims "
            f"{checkpoint_seq} answers but carries {len(labeled)}"
        )
    expected = checkpoint_seq + 1
    for seq, class_id, label in tail:
        if seq != expected:
            raise StoreError(
                f"session {session_id!r}: journal gap — expected seq "
                f"{expected}, found {seq}"
            )
        labeled.append([class_id, label])
        expected += 1
    merged = dict(checkpoint)
    merged["labeled"] = labeled
    return merged


class SessionStore(ABC):
    """Contract every session-store backend implements.

    ``seq`` arguments count answers from the start of the session
    (1-based); ``put_checkpoint(payload, seq)`` asserts the payload's
    ``labeled`` list has exactly ``seq`` entries and supersedes all
    journal rows up to ``seq``.
    """

    @abstractmethod
    def put_checkpoint(
        self, session_id: str, payload: dict[str, Any], seq: int
    ) -> None:
        """Write (or replace) the session's checkpoint; prunes journal
        rows the checkpoint now covers.  Also the create record: a new
        session checkpoints at its admission state (``seq`` answers,
        usually 0)."""

    @abstractmethod
    def append_answers(
        self, session_id: str, entries: list[JournalEntry]
    ) -> None:
        """Append journal rows (one transaction).  Raises
        :class:`StoreError` for a session without a checkpoint — the
        create record must land first."""

    @abstractmethod
    def load(self, session_id: str) -> StoredSession | None:
        """The merged recoverable state, or ``None`` for unknown ids."""

    @abstractmethod
    def delete(self, session_id: str) -> None:
        """Forget a session entirely (idempotent)."""

    @abstractmethod
    def session_ids(self) -> list[str]:
        """All recoverable session ids, oldest creation first."""

    @abstractmethod
    def stats(self) -> dict[str, Any]:
        """Backend counters for ``GET /stats``."""

    def close(self) -> None:  # noqa: B027 - optional hook, default no-op
        """Release any underlying resources (idempotent)."""

    def __contains__(self, session_id: str) -> bool:
        return self.load(session_id) is not None


class MemorySessionStore(SessionStore):
    """Dict-backed store: survives eviction, not the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: session_id -> (checkpoint payload, checkpoint_seq,
        #:                {seq: (class_id, label)}, created, updated)
        self._sessions: dict[str, list[Any]] = {}
        self._journal_appends = 0
        self._checkpoints = 0
        self._loads = 0

    def put_checkpoint(
        self, session_id: str, payload: dict[str, Any], seq: int
    ) -> None:
        with self._lock:
            now = time.time()
            entry = self._sessions.get(session_id)
            if entry is None:
                self._sessions[session_id] = [
                    payload, seq, {}, now, now
                ]
            else:
                entry[0], entry[1] = payload, seq
                entry[2] = {
                    s: v for s, v in entry[2].items() if s > seq
                }
                entry[4] = now
            self._checkpoints += 1

    def append_answers(
        self, session_id: str, entries: list[JournalEntry]
    ) -> None:
        with self._lock:
            entry = self._sessions.get(session_id)
            if entry is None:
                raise StoreError(
                    f"no checkpoint for session {session_id!r}; "
                    f"cannot journal answers"
                )
            for seq, class_id, label in entries:
                entry[2][seq] = (class_id, label)
            entry[4] = time.time()
            self._journal_appends += len(entries)

    def load(self, session_id: str) -> StoredSession | None:
        with self._lock:
            entry = self._sessions.get(session_id)
            if entry is None:
                return None
            checkpoint, seq, journal, created, updated = entry
            tail = [
                (s, class_id, label)
                for s, (class_id, label) in sorted(journal.items())
                if s > seq
            ]
            self._loads += 1
        payload = _merge_payload(
            session_id, checkpoint, seq, tail
        )
        return StoredSession(
            session_id=session_id,
            payload=payload,
            checkpoint_seq=seq,
            journal_seq=seq + len(tail),
            created_at=created,
            updated_at=updated,
        )

    def delete(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def session_ids(self) -> list[str]:
        with self._lock:
            return [
                sid
                for sid, _ in sorted(
                    self._sessions.items(), key=lambda kv: kv[1][3]
                )
            ]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "backend": "memory",
                "sessions": len(self._sessions),
                "journal_appends": self._journal_appends,
                "checkpoints": self._checkpoints,
                "loads": self._loads,
            }


class SqliteSessionStore(SessionStore):
    """The durable backend: one SQLite file in WAL mode.

    WAL keeps readers and the single writer from blocking each other
    and — the property recovery leans on — makes every committed
    transaction survive ``kill -9``: on the next open, SQLite replays
    the write-ahead log up to the last commit.  ``synchronous=NORMAL``
    is the documented safe level for WAL (a crash may lose the tail of
    *uncommitted* work only).
    """

    def __init__(self, path: str, *, timeout: float = 30.0):
        self.path = str(path)
        self._lock = threading.RLock()
        self._connection: sqlite3.Connection | None = sqlite3.connect(
            self.path,
            timeout=timeout,
            check_same_thread=False,
            isolation_level=None,  # explicit BEGIN/COMMIT below
        )
        self._journal_appends = 0
        self._checkpoints = 0
        self._loads = 0
        with self._lock:
            connection = self._connection
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.executescript(
                """
                CREATE TABLE IF NOT EXISTS sessions (
                    session_id     TEXT PRIMARY KEY,
                    created_at     REAL NOT NULL,
                    updated_at     REAL NOT NULL,
                    checkpoint_seq INTEGER NOT NULL,
                    checkpoint     TEXT NOT NULL
                );
                CREATE TABLE IF NOT EXISTS journal (
                    session_id TEXT NOT NULL,
                    seq        INTEGER NOT NULL,
                    class_id   INTEGER NOT NULL,
                    label      TEXT NOT NULL,
                    PRIMARY KEY (session_id, seq)
                ) WITHOUT ROWID;
                """
            )

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise StoreError(f"store {self.path!r} is closed")
        return self._connection

    def put_checkpoint(
        self, session_id: str, payload: dict[str, Any], seq: int
    ) -> None:
        text = json.dumps(payload, separators=(",", ":"))
        now = time.time()
        with self._lock:
            connection = self._require_connection()
            connection.execute("BEGIN IMMEDIATE")
            try:
                connection.execute(
                    """
                    INSERT INTO sessions (
                        session_id, created_at, updated_at,
                        checkpoint_seq, checkpoint
                    ) VALUES (?, ?, ?, ?, ?)
                    ON CONFLICT (session_id) DO UPDATE SET
                        updated_at = excluded.updated_at,
                        checkpoint_seq = excluded.checkpoint_seq,
                        checkpoint = excluded.checkpoint
                    """,
                    (session_id, now, now, seq, text),
                )
                connection.execute(
                    "DELETE FROM journal "
                    "WHERE session_id = ? AND seq <= ?",
                    (session_id, seq),
                )
            except BaseException:
                connection.execute("ROLLBACK")
                raise
            connection.execute("COMMIT")
            self._checkpoints += 1

    def append_answers(
        self, session_id: str, entries: list[JournalEntry]
    ) -> None:
        if not entries:
            return
        now = time.time()
        with self._lock:
            connection = self._require_connection()
            row = connection.execute(
                "SELECT 1 FROM sessions WHERE session_id = ?",
                (session_id,),
            ).fetchone()
            if row is None:
                raise StoreError(
                    f"no checkpoint for session {session_id!r}; "
                    f"cannot journal answers"
                )
            connection.execute("BEGIN IMMEDIATE")
            try:
                connection.executemany(
                    "INSERT OR REPLACE INTO journal "
                    "(session_id, seq, class_id, label) "
                    "VALUES (?, ?, ?, ?)",
                    [
                        (session_id, seq, class_id, label)
                        for seq, class_id, label in entries
                    ],
                )
                connection.execute(
                    "UPDATE sessions SET updated_at = ? "
                    "WHERE session_id = ?",
                    (now, session_id),
                )
            except BaseException:
                connection.execute("ROLLBACK")
                raise
            connection.execute("COMMIT")
            self._journal_appends += len(entries)

    def load(self, session_id: str) -> StoredSession | None:
        with self._lock:
            connection = self._require_connection()
            row = connection.execute(
                "SELECT checkpoint, checkpoint_seq, created_at, "
                "updated_at FROM sessions WHERE session_id = ?",
                (session_id,),
            ).fetchone()
            if row is None:
                return None
            text, checkpoint_seq, created, updated = row
            tail = [
                (seq, class_id, label)
                for seq, class_id, label in connection.execute(
                    "SELECT seq, class_id, label FROM journal "
                    "WHERE session_id = ? AND seq > ? ORDER BY seq",
                    (session_id, checkpoint_seq),
                )
            ]
            self._loads += 1
        try:
            checkpoint = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"session {session_id!r}: corrupt checkpoint payload: "
                f"{exc}"
            ) from exc
        payload = _merge_payload(
            session_id, checkpoint, checkpoint_seq, tail
        )
        return StoredSession(
            session_id=session_id,
            payload=payload,
            checkpoint_seq=checkpoint_seq,
            journal_seq=checkpoint_seq + len(tail),
            created_at=created,
            updated_at=updated,
        )

    def delete(self, session_id: str) -> None:
        with self._lock:
            connection = self._require_connection()
            connection.execute("BEGIN IMMEDIATE")
            try:
                connection.execute(
                    "DELETE FROM journal WHERE session_id = ?",
                    (session_id,),
                )
                connection.execute(
                    "DELETE FROM sessions WHERE session_id = ?",
                    (session_id,),
                )
            except BaseException:
                connection.execute("ROLLBACK")
                raise
            connection.execute("COMMIT")

    def session_ids(self) -> list[str]:
        with self._lock:
            connection = self._require_connection()
            return [
                sid
                for (sid,) in connection.execute(
                    "SELECT session_id FROM sessions "
                    "ORDER BY created_at, session_id"
                )
            ]

    def __contains__(self, session_id: str) -> bool:
        # Cheaper than the default load()-based probe: no payload parse.
        with self._lock:
            connection = self._require_connection()
            return (
                connection.execute(
                    "SELECT 1 FROM sessions WHERE session_id = ?",
                    (session_id,),
                ).fetchone()
                is not None
            )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            connection = self._require_connection()
            (sessions,) = connection.execute(
                "SELECT COUNT(*) FROM sessions"
            ).fetchone()
            (journal_rows,) = connection.execute(
                "SELECT COUNT(*) FROM journal"
            ).fetchone()
            return {
                "backend": "sqlite",
                "path": self.path,
                "sessions": sessions,
                "journal_rows": journal_rows,
                "journal_appends": self._journal_appends,
                "checkpoints": self._checkpoints,
                "loads": self._loads,
            }

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
