"""Multi-session inference service (the serving layer over Algorithm 1).

The paper's protocol is interactive — one membership question at a time —
and this package turns it into something a fleet of remote users can
drive concurrently: an asyncio HTTP/JSON server
(:mod:`~repro.service.app`) hosting many
:class:`~repro.core.session.InferenceSession` objects behind a
:class:`~repro.service.manager.SessionManager` (per-session locks, TTL
eviction, capacity limits), with a content-addressed
:class:`~repro.service.index_cache.IndexCache` sharing the expensive
immutable :class:`~repro.core.signatures.SignatureIndex` across all
sessions on the same data, and snapshot/resume so sessions survive
restarts.  :class:`~repro.service.client.ServiceClient` is the matching
stdlib client; ``repro-join serve`` starts a server from the CLI.

Sessions become *durable* when the manager is given a
:class:`~repro.service.store.SessionStore` (``repro-join serve --store
sessions.db``): answers journal to SQLite in WAL mode, eviction demotes
to disk instead of deleting, and any session — including one orphaned
by a crash — rehydrates transparently on its next touch.

One process is one GIL; ``repro-join serve --workers N`` multiplies the
stack across cores as a **fleet** (:mod:`~repro.service.fleet`): a front
router (:mod:`~repro.service.router`) speaking the same public protocol
proxies to N worker subprocesses sharing one store, with per-session
leases (owner + fencing epoch + heartbeat expiry) so a SIGKILLed
worker's sessions are taken over by survivors bit-for-bit while the
supervisor respawns the slot and the router rebalances.

Beyond ask/answer polling, the service streams: ``GET
/sessions/{id}/stream`` pushes each next question over SSE the moment
speculation or a kernel batch resolves it, ``GET /events/stream`` is
the service-wide observability feed, and ``GET /dashboard`` serves
incrementally maintained aggregates (:mod:`~repro.service.events`).
The router proxies streams frame-atomically and turns a mid-stream
worker death into a clean retryable ``reconnect`` event.
"""

from .app import (
    EventStream,
    ServiceApp,
    ServiceFeedBroadcaster,
    ServiceServer,
    run_server,
    start_server,
)
from .client import ServiceClient, ServiceClientError
from .events import (
    SERVICE_FEED,
    DashboardAggregator,
    EventBus,
    EventSubscription,
    sse_frame,
)
from .fleet import Fleet, FleetConfig, FleetServer, WorkerHandle
from .index_cache import BuildStatus, IndexCache, instance_fingerprint
from .manager import ManagedSession, SessionManager, Speculation
from .plan_registry import PLAN_SEGMENT_PREFIX, SharedPlanTier
from .protocol import (
    BadRequest,
    CapacityExceeded,
    Conflict,
    CreateSpec,
    NotFound,
    ServiceError,
    instance_from_spec,
    parse_answer_payload,
    parse_create_payload,
    parse_label,
    predicate_payload,
    progress_payload,
    question_payload,
    sessions_payload,
)
from .router import FleetRouter, WorkerUnavailable
from .shm_registry import (
    PublishTicket,
    SegmentInfo,
    SharedIndexPlane,
    ShmRegistry,
    ShmRegistryError,
)
from .store import (
    Lease,
    LeaseFenced,
    MemorySessionStore,
    SessionStore,
    SqliteSessionStore,
    StoredSession,
    StoreError,
)

__all__ = [
    "BadRequest",
    "BuildStatus",
    "CapacityExceeded",
    "Conflict",
    "CreateSpec",
    "DashboardAggregator",
    "EventBus",
    "EventStream",
    "EventSubscription",
    "Fleet",
    "FleetConfig",
    "FleetRouter",
    "FleetServer",
    "IndexCache",
    "SERVICE_FEED",
    "Lease",
    "LeaseFenced",
    "ManagedSession",
    "MemorySessionStore",
    "NotFound",
    "PLAN_SEGMENT_PREFIX",
    "PublishTicket",
    "SegmentInfo",
    "ServiceApp",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceFeedBroadcaster",
    "ServiceServer",
    "SessionManager",
    "SessionStore",
    "SharedIndexPlane",
    "SharedPlanTier",
    "ShmRegistry",
    "ShmRegistryError",
    "Speculation",
    "SqliteSessionStore",
    "StoreError",
    "StoredSession",
    "WorkerHandle",
    "WorkerUnavailable",
    "instance_fingerprint",
    "instance_from_spec",
    "parse_answer_payload",
    "parse_create_payload",
    "parse_label",
    "predicate_payload",
    "progress_payload",
    "question_payload",
    "run_server",
    "sessions_payload",
    "sse_frame",
    "start_server",
]
