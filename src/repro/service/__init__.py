"""Multi-session inference service (the serving layer over Algorithm 1).

The paper's protocol is interactive — one membership question at a time —
and this package turns it into something a fleet of remote users can
drive concurrently: an asyncio HTTP/JSON server
(:mod:`~repro.service.app`) hosting many
:class:`~repro.core.session.InferenceSession` objects behind a
:class:`~repro.service.manager.SessionManager` (per-session locks, TTL
eviction, capacity limits), with a content-addressed
:class:`~repro.service.index_cache.IndexCache` sharing the expensive
immutable :class:`~repro.core.signatures.SignatureIndex` across all
sessions on the same data, and snapshot/resume so sessions survive
restarts.  :class:`~repro.service.client.ServiceClient` is the matching
stdlib client; ``repro-join serve`` starts a server from the CLI.
"""

from .app import ServiceApp, ServiceServer, run_server, start_server
from .client import ServiceClient, ServiceClientError
from .index_cache import BuildStatus, IndexCache, instance_fingerprint
from .manager import ManagedSession, SessionManager, Speculation
from .protocol import (
    BadRequest,
    CapacityExceeded,
    Conflict,
    CreateSpec,
    NotFound,
    ServiceError,
    instance_from_spec,
    parse_answer_payload,
    parse_create_payload,
    parse_label,
    predicate_payload,
    progress_payload,
    question_payload,
)

__all__ = [
    "BadRequest",
    "BuildStatus",
    "CapacityExceeded",
    "Conflict",
    "CreateSpec",
    "IndexCache",
    "ManagedSession",
    "NotFound",
    "ServiceApp",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceServer",
    "SessionManager",
    "Speculation",
    "instance_fingerprint",
    "instance_from_spec",
    "parse_answer_payload",
    "parse_create_payload",
    "parse_label",
    "predicate_payload",
    "progress_payload",
    "question_payload",
    "run_server",
    "start_server",
]
