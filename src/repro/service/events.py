"""The service's event plane: per-session feeds, a service-wide feed,
and incrementally maintained dashboard aggregates.

The :class:`EventBus` is the push half of the PR 10 streaming protocol.
Every state change the manager wants observable — a question proposed,
an answer recorded, a session created/demoted/deleted — is *published*
once, as a JSON-serialisable event dict, and fans out to

* the session's own topic (``GET /sessions/{id}/stream`` subscribers),
* the service-wide feed (``GET /events/stream`` subscribers), and
* the :class:`DashboardAggregator`, which folds the event into O(1)
  running aggregates so ``GET /dashboard`` never rescans sessions or
  stores.

Subscribers are bounded ``asyncio.Queue``s with a **drop-oldest**
overflow policy: a slow or stalled consumer loses its oldest queued
events (visible as a gap in the per-topic ``seq``) instead of wedging
the event loop or growing memory without bound — the publish path never
blocks and never fails.  Each event's SSE frame is encoded exactly once
at publish time and the same ``bytes`` object is handed to every
subscriber, so fanning out to hundreds of subscribers costs queue puts
and socket writes, not repeated JSON encoding.

Publishing is thread-safe: on the bus's bound event loop events are
delivered inline; from worker threads (synchronous embedder calls,
store callbacks) delivery hops onto the loop via
``call_soon_threadsafe``.  With no loop bound there can be no
subscribers, so publish just updates the dashboard aggregates.

Sequencing: ``seq`` is a per-topic counter assigned at publish (gap
detection within one subscription), ``global_seq`` orders the service
feed.  Both are per-process bookkeeping — after a fleet failover the
survivor starts fresh counters.  *Cross-failover* continuity is carried
by the payloads instead: ``question_id``/``interactions`` are derived
from durable session state the takeover rehydrates bit-for-bit, so a
resubscribed client checks those for gap-freeness (see
``tests/service/test_stream_failover.py``).
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from typing import Any, Callable

__all__ = [
    "SERVICE_FEED",
    "EventBus",
    "EventSubscription",
    "DashboardAggregator",
    "sse_frame",
]

#: Topic name of the service-wide feed (session ids are 16-hex strings,
#: so the underscore can never collide with one).
SERVICE_FEED = "_service"

#: Default per-subscriber queue bound.  At ~3 events per answer round a
#: consumer may fall hundreds of rounds behind before losing anything.
_DEFAULT_QUEUE_LIMIT = 1024


def _json_safe(value: Any) -> Any:
    """Round-trippable floats: JSON has no Infinity/NaN literals."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def sse_frame(event: dict[str, Any]) -> bytes:
    """One Server-Sent-Events frame: ``id``/``event`` fields for
    spec-compliant consumers, the full event as the ``data`` JSON."""
    data = json.dumps(event, default=_json_safe)
    return (
        f"id: {event.get('seq', 0)}\n"
        f"event: {event.get('event', 'message')}\n"
        f"data: {data}\n\n"
    ).encode("utf-8")


class EventSubscription:
    """One subscriber's bounded queue on one topic."""

    def __init__(self, bus: "EventBus", topic: str, limit: int):
        self.bus = bus
        self.topic = topic
        self.queue: asyncio.Queue[tuple[str, bytes]] = asyncio.Queue(
            maxsize=limit
        )
        #: Events this subscriber lost to the drop-oldest policy.
        self.dropped = 0
        self.closed = False

    def deliver(self, kind: str, frame: bytes) -> None:
        """Enqueue one event, shedding the oldest on overflow (never
        blocks — called from the publish path on the event loop)."""
        if self.closed:
            return
        try:
            self.queue.put_nowait((kind, frame))
        except asyncio.QueueFull:
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:  # pragma: no cover - race-free on loop
                pass
            self.dropped += 1
            self.bus.dropped_total += 1
            self.queue.put_nowait((kind, frame))

    async def get(self) -> tuple[str, bytes]:
        """The next ``(kind, frame)`` pair (awaits until one arrives)."""
        return await self.queue.get()

    def close(self) -> None:
        self.bus.unsubscribe(self)


class DashboardAggregator:
    """O(1)-per-event running aggregates behind ``GET /dashboard``.

    Every counter is folded in at publish time, so rendering the
    dashboard is a dict copy — no per-request rescan of sessions,
    stores, or event history.  All leaves under ``totals`` /
    ``by_kind`` / ``by_source`` / ``by_strategy`` are summable
    integers, so a fleet router can aggregate worker dashboards by
    plain key-wise addition (see ``FleetRouter._aggregate_dashboard``).
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock
        self.started_at = clock()
        self._lock = threading.Lock()
        self.events_total = 0
        self.by_kind: dict[str, int] = {}
        self.by_source: dict[str, int] = {}
        self.by_strategy: dict[str, dict[str, int]] = {}
        self.questions_total = 0
        self.answers_total = 0
        self.answers_positive = 0
        self.answers_negative = 0
        self.speculation_hits = 0
        self.classes_resolved = 0
        self.sessions_completed = 0
        self.interactions_to_done_total = 0

    def update(self, event: dict[str, Any]) -> None:
        kind = event.get("event", "message")
        strategy = event.get("strategy")
        with self._lock:
            self.events_total += 1
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
            row = None
            if strategy is not None:
                row = self.by_strategy.setdefault(
                    strategy,
                    {"questions": 0, "answers": 0, "completed": 0},
                )
            if kind == "question":
                self.questions_total += 1
                source = event.get("source") or "inline"
                self.by_source[source] = self.by_source.get(source, 0) + 1
                if row is not None:
                    row["questions"] += 1
            elif kind == "answer":
                self.answers_total += 1
                if event.get("label") == "+":
                    self.answers_positive += 1
                else:
                    self.answers_negative += 1
                if event.get("speculation_hit"):
                    self.speculation_hits += 1
                removed = event.get("removed_classes")
                if removed:
                    self.classes_resolved += int(removed)
                if row is not None:
                    row["answers"] += 1
            elif kind == "done":
                self.sessions_completed += 1
                progress = event.get("progress") or {}
                self.interactions_to_done_total += int(
                    progress.get("interactions", 0)
                )
                if row is not None:
                    row["completed"] += 1

    def payload(self, bus: "EventBus") -> dict[str, Any]:
        """The dashboard JSON (``totals`` all summable integers)."""
        with self._lock:
            subscribers = bus.subscriber_counts()
            return {
                "totals": {
                    "events_total": self.events_total,
                    "events_dropped": bus.dropped_total,
                    "questions_total": self.questions_total,
                    "answers_total": self.answers_total,
                    "answers_positive": self.answers_positive,
                    "answers_negative": self.answers_negative,
                    "speculation_hits": self.speculation_hits,
                    "classes_resolved": self.classes_resolved,
                    "sessions_completed": self.sessions_completed,
                    "interactions_to_done_total": (
                        self.interactions_to_done_total
                    ),
                    "subscribers_sessions": subscribers["sessions"],
                    "subscribers_service": subscribers["service"],
                    "subscribers_peak": subscribers["peak"],
                    "subscribers_served": subscribers["served"],
                },
                "by_kind": dict(self.by_kind),
                "by_source": dict(self.by_source),
                "by_strategy": {
                    name: dict(row)
                    for name, row in self.by_strategy.items()
                },
                "meta": {"uptime_seconds": self._clock() - self.started_at},
            }


class EventBus:
    """Per-topic fan-out with bounded subscribers and a service feed."""

    def __init__(
        self,
        *,
        queue_limit: int = _DEFAULT_QUEUE_LIMIT,
        clock: Callable[[], float] = time.time,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        self.queue_limit = queue_limit
        self._clock = clock
        self._lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._subs: dict[str, list[EventSubscription]] = {}
        self._seq: dict[str, int] = {}
        self._global_seq = 0
        self.dropped_total = 0
        self._peak_subscribers = 0
        self._subscribers_served = 0
        self.dashboard = DashboardAggregator(clock=clock)
        #: Optional fast path for the service feed: a callable handed
        #: every event's frame (on the bus loop).  The HTTP layer
        #: installs its coalescing broadcaster here, so hundreds of
        #: ``/events/stream`` sockets cost one enqueue per event
        #: instead of one queue wake-up per subscriber (see
        #: ``app.ServiceFeedBroadcaster``).
        self.service_sink: Callable[[bytes], None] | None = None
        self._sink_subscribers = 0

    # --- subscriptions -------------------------------------------------------

    def subscribe(
        self, topic: str, *, queue_limit: int | None = None
    ) -> EventSubscription:
        """Attach a subscriber to ``topic`` (event-loop thread only —
        the queue belongs to the running loop, which also becomes the
        bus's delivery loop)."""
        loop = asyncio.get_running_loop()
        sub = EventSubscription(
            self, topic, queue_limit or self.queue_limit
        )
        with self._lock:
            self._loop = loop
            self._subs.setdefault(topic, []).append(sub)
            self._subscribers_served += 1
            live = sum(len(subs) for subs in self._subs.values())
            self._peak_subscribers = max(self._peak_subscribers, live)
        return sub

    def unsubscribe(self, sub: EventSubscription) -> None:
        sub.closed = True
        with self._lock:
            subs = self._subs.get(sub.topic)
            if subs is not None:
                try:
                    subs.remove(sub)
                except ValueError:
                    pass
                if not subs:
                    del self._subs[sub.topic]

    def has_subscribers(self, topic: str) -> bool:
        """True when ``topic`` itself has live subscribers (the service
        feed does not count: it observes, it does not drive)."""
        with self._lock:
            return bool(self._subs.get(topic))

    def sink_attached(self, loop: asyncio.AbstractEventLoop) -> None:
        """One more service-feed socket behind :attr:`service_sink`
        (the HTTP broadcaster registers each ``/events/stream``
        connection so counts — and the delivery loop — stay honest)."""
        with self._lock:
            self._loop = loop
            self._sink_subscribers += 1
            self._subscribers_served += 1
            live = self._sink_subscribers + sum(
                len(subs) for subs in self._subs.values()
            )
            self._peak_subscribers = max(self._peak_subscribers, live)

    def sink_detached(self) -> None:
        with self._lock:
            self._sink_subscribers = max(0, self._sink_subscribers - 1)

    def subscriber_counts(self) -> dict[str, int]:
        with self._lock:
            service = (
                len(self._subs.get(SERVICE_FEED, ()))
                + self._sink_subscribers
            )
            total = sum(len(subs) for subs in self._subs.values())
            return {
                "sessions": total - len(self._subs.get(SERVICE_FEED, ())),
                "service": service,
                "peak": self._peak_subscribers,
                "served": self._subscribers_served,
            }

    def topic_seq(self, topic: str) -> int:
        """Events published to ``topic`` so far."""
        with self._lock:
            return self._seq.get(topic, 0)

    # --- publishing ----------------------------------------------------------

    def publish(
        self, topic: str, kind: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """Stamp, aggregate and fan out one event; returns the stamped
        event dict.  Never blocks and never raises on slow consumers."""
        with self._lock:
            seq = self._seq.get(topic, 0) + 1
            self._seq[topic] = seq
            self._global_seq += 1
            event = {
                "event": kind,
                "topic": topic,
                "seq": seq,
                "global_seq": self._global_seq,
                "time": self._clock(),
                **payload,
            }
            loop = self._loop
            fan_out = bool(self._subs) or self._sink_subscribers > 0
        self.dashboard.update(event)
        if not fan_out or loop is None or loop.is_closed():
            return event
        frame = sse_frame(event)
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            self._deliver(topic, kind, frame)
        else:
            try:
                loop.call_soon_threadsafe(
                    self._deliver, topic, kind, frame
                )
            except RuntimeError:
                pass  # loop closed mid-publish: subscribers are gone too
        return event

    def _deliver(self, topic: str, kind: str, frame: bytes) -> None:
        with self._lock:
            targets = list(self._subs.get(topic, ()))
            if topic != SERVICE_FEED:
                targets.extend(self._subs.get(SERVICE_FEED, ()))
            sink = (
                self.service_sink if self._sink_subscribers else None
            )
        for sub in targets:
            sub.deliver(kind, frame)
        if sink is not None:
            try:
                sink(frame)
            except Exception:  # noqa: BLE001 - observability never raises
                pass
